//! Fixture-driven tests for the determinism audit: every rule has a
//! trigger fixture (must produce findings with the right rule id and
//! line) and a no-trigger fixture (must stay silent), plus the
//! allow-annotation escape hatch and the allowlist file format.

#![forbid(unsafe_code)]
#![deny(rust_2018_idioms)]

use xtask::{lint_source, run_lint, work_items, Allowlist, FileClass, Rule};

fn det() -> FileClass {
    FileClass {
        deterministic: true,
        ..Default::default()
    }
}

fn nondet() -> FileClass {
    FileClass::default()
}

fn rules_of(findings: &[xtask::Finding]) -> Vec<Rule> {
    findings.iter().map(|f| f.rule).collect()
}

#[test]
fn unordered_iter_triggers() {
    let src = include_str!("fixtures/unordered_iter_trigger.rs");
    let findings = lint_source("fixtures/unordered_iter_trigger.rs", src, &det());
    let unordered: Vec<_> = findings
        .iter()
        .filter(|f| f.rule == Rule::UnorderedIter)
        .collect();
    // for-loop over a HashSet, .iter() on a HashMap, .keys() on an
    // alias-typed HashMap, and .retain() — all four sites.
    assert_eq!(unordered.len(), 4, "{findings:?}");
    assert!(unordered.iter().all(|f| f.line > 0));
    // Reported lines land on the iterating construct, in source order.
    let lines: Vec<u32> = unordered.iter().map(|f| f.line).collect();
    let mut sorted = lines.clone();
    sorted.sort_unstable();
    assert_eq!(lines, sorted);
}

#[test]
fn unordered_iter_spares_btrees_sinks_and_annotated_sites() {
    let src = include_str!("fixtures/unordered_iter_ok.rs");
    let findings = lint_source("fixtures/unordered_iter_ok.rs", src, &det());
    assert!(findings.is_empty(), "{findings:?}");
}

#[test]
fn unordered_iter_is_off_outside_deterministic_crates() {
    let src = include_str!("fixtures/unordered_iter_trigger.rs");
    let findings = lint_source("fixtures/unordered_iter_trigger.rs", src, &nondet());
    assert!(findings.is_empty(), "{findings:?}");
}

#[test]
fn wall_clock_triggers() {
    let src = include_str!("fixtures/wall_clock_trigger.rs");
    let findings = lint_source("fixtures/wall_clock_trigger.rs", src, &det());
    assert!(
        findings.iter().any(|f| f.rule == Rule::WallClock),
        "{findings:?}"
    );
    assert!(findings
        .iter()
        .all(|f| f.rule == Rule::WallClock && f.line > 0));
}

#[test]
fn wall_clock_ignores_comments_strings_and_virtual_time() {
    let src = include_str!("fixtures/wall_clock_ok.rs");
    let findings = lint_source("fixtures/wall_clock_ok.rs", src, &det());
    assert!(findings.is_empty(), "{findings:?}");
}

#[test]
fn float_ord_triggers_on_partial_and_total_cmp() {
    let src = include_str!("fixtures/float_ord_trigger.rs");
    let findings = lint_source("fixtures/float_ord_trigger.rs", src, &det());
    assert_eq!(rules_of(&findings), vec![Rule::FloatOrd, Rule::FloatOrd]);
}

#[test]
fn float_ord_spares_order_key_definitions_and_annotations() {
    let src = include_str!("fixtures/float_ord_ok.rs");
    let findings = lint_source("fixtures/float_ord_ok.rs", src, &det());
    assert!(findings.is_empty(), "{findings:?}");
}

#[test]
fn float_ord_is_off_in_the_blessed_file() {
    let src = include_str!("fixtures/float_ord_trigger.rs");
    let class = FileClass {
        deterministic: true,
        blessed_float_file: true,
        ..Default::default()
    };
    let findings = lint_source("fixtures/float_ord_trigger.rs", src, &class);
    assert!(findings.is_empty(), "{findings:?}");
}

#[test]
fn unsafe_triggers_everywhere_and_cannot_be_allowed() {
    let src = include_str!("fixtures/unsafe_trigger.rs");
    for class in [det(), nondet()] {
        let findings = lint_source("fixtures/unsafe_trigger.rs", src, &class);
        assert!(
            findings.iter().any(|f| f.rule == Rule::UnsafeCode),
            "{findings:?}"
        );
        // The fixture's allow-annotation must be rejected as bare.
        assert!(
            findings.iter().any(|f| f.rule == Rule::BareAllow),
            "{findings:?}"
        );
    }
}

#[test]
fn serialized_hash_triggers_in_any_crate() {
    let src = include_str!("fixtures/serialized_hash_trigger.rs");
    let findings = lint_source("fixtures/serialized_hash_trigger.rs", src, &nondet());
    // HashMap field in the struct and HashSet payload in the enum.
    assert_eq!(
        rules_of(&findings),
        vec![Rule::SerializedHash, Rule::SerializedHash]
    );
}

#[test]
fn serialized_hash_spares_btrees_and_unserialized_types() {
    let src = include_str!("fixtures/serialized_hash_ok.rs");
    let findings = lint_source("fixtures/serialized_hash_ok.rs", src, &nondet());
    assert!(findings.is_empty(), "{findings:?}");
}

#[test]
fn missing_forbid_triggers_only_on_lib_roots() {
    let trigger = include_str!("fixtures/missing_forbid_trigger.rs");
    let ok = include_str!("fixtures/missing_forbid_ok.rs");
    let root = FileClass {
        lib_root: true,
        ..Default::default()
    };
    let findings = lint_source("fixtures/missing_forbid_trigger.rs", trigger, &root);
    assert_eq!(rules_of(&findings), vec![Rule::MissingForbid]);
    assert_eq!(findings[0].line, 1);
    let findings = lint_source("fixtures/missing_forbid_ok.rs", ok, &root);
    assert!(findings.is_empty(), "{findings:?}");
    // The same file as a non-root module is not required to carry it.
    let findings = lint_source("fixtures/missing_forbid_trigger.rs", trigger, &nondet());
    assert!(findings.is_empty(), "{findings:?}");
}

#[test]
fn bare_allow_leaves_the_original_violation_standing() {
    let src = include_str!("fixtures/bare_allow_trigger.rs");
    let findings = lint_source("fixtures/bare_allow_trigger.rs", src, &det());
    assert!(
        findings.iter().any(|f| f.rule == Rule::UnorderedIter),
        "{findings:?}"
    );
    assert!(
        findings.iter().any(|f| f.rule == Rule::BareAllow),
        "{findings:?}"
    );
}

#[test]
fn findings_render_as_path_line_rule() {
    let src = include_str!("fixtures/float_ord_trigger.rs");
    let findings = lint_source("crates/demo/src/x.rs", src, &det());
    let line = findings[0].to_string();
    assert!(
        line.starts_with("crates/demo/src/x.rs:") && line.contains("[float-ord]"),
        "{line}"
    );
}

#[test]
fn allowlist_requires_justifications_and_flags_unused_entries() {
    let text = "\
# comment lines and blanks are fine

unordered-iter crates/demo/src/a.rs values drained into a sorted vec
float-ord crates/demo/src/b.rs
unsafe-code crates/demo/src/c.rs reasons do not help here
bogus-rule crates/demo/src/d.rs whatever
";
    let mut list = Allowlist::parse(text, "xtask/lint.allow");
    // Three bad entries: missing reason, unallowable rule, unknown rule.
    assert_eq!(list.parse_findings.len(), 3, "{:?}", list.parse_findings);
    assert!(list
        .parse_findings
        .iter()
        .all(|f| f.rule == Rule::BareAllow));
    // The good entry silences its (rule, path) pair...
    assert!(list.allows(Rule::UnorderedIter, "crates/demo/src/a.rs"));
    // ...but not other paths or rules.
    assert!(!list.allows(Rule::UnorderedIter, "crates/demo/src/z.rs"));
    assert!(!list.allows(Rule::WallClock, "crates/demo/src/a.rs"));
    // Used entries produce no unused-allow findings.
    assert!(list.unused_findings("xtask/lint.allow").is_empty());

    let mut stale = Allowlist::parse(
        "wall-clock crates/demo/src/never.rs left over from a refactor\n",
        "xtask/lint.allow",
    );
    assert!(!stale.allows(Rule::FloatOrd, "crates/demo/src/never.rs"));
    let unused = stale.unused_findings("xtask/lint.allow");
    assert_eq!(rules_of(&unused), vec![Rule::UnusedAllow]);
}

#[test]
fn the_real_tree_is_clean() {
    // The audit over the actual workspace must pass: this is the same
    // check CI runs via `cargo xtask lint`, enforced here so plain
    // `cargo test` catches a regression too.
    let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .expect("workspace root")
        .to_path_buf();
    let findings = run_lint(&root);
    assert!(
        findings.is_empty(),
        "determinism audit found violations:\n{}",
        findings
            .iter()
            .map(|f| f.to_string())
            .collect::<Vec<_>>()
            .join("\n")
    );
}

#[test]
fn shard_modules_are_audited_as_deterministic() {
    // The sharded windowed core carries the byte-identical-schedule
    // contract across threads, so its modules must sit inside the strict
    // audit set — a crate-list or layout change that drops them has to
    // fail loudly, not silently relax the rules.
    let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .expect("workspace root")
        .to_path_buf();
    let items = work_items(&root);
    for rel in ["crates/sim/src/shard.rs", "crates/core/src/shard.rs"] {
        let item = items
            .iter()
            .find(|i| i.rel == rel)
            .unwrap_or_else(|| panic!("{rel} missing from the audit's work items"));
        assert!(
            item.class.deterministic,
            "{rel} must be audited under the deterministic-crate rules"
        );
    }
}
