//! Fixture-driven tests for the determinism audit: every rule has a
//! trigger fixture (must produce findings with the right rule id and
//! line) and a no-trigger fixture (must stay silent), plus the
//! allow-annotation escape hatch and the allowlist file format.

#![forbid(unsafe_code)]
#![deny(rust_2018_idioms)]

use xtask::{lint_source, run_lint, work_items, Allowlist, FileClass, Rule};

fn det() -> FileClass {
    FileClass {
        deterministic: true,
        ..Default::default()
    }
}

fn nondet() -> FileClass {
    FileClass::default()
}

fn rules_of(findings: &[xtask::Finding]) -> Vec<Rule> {
    findings.iter().map(|f| f.rule).collect()
}

#[test]
fn unordered_iter_triggers() {
    let src = include_str!("fixtures/unordered_iter_trigger.rs");
    let findings = lint_source("fixtures/unordered_iter_trigger.rs", src, &det());
    let unordered: Vec<_> = findings
        .iter()
        .filter(|f| f.rule == Rule::UnorderedIter)
        .collect();
    // for-loop over a HashSet, .iter() on a HashMap, .keys() on an
    // alias-typed HashMap, and .retain() — all four sites.
    assert_eq!(unordered.len(), 4, "{findings:?}");
    assert!(unordered.iter().all(|f| f.line > 0));
    // Reported lines land on the iterating construct, in source order.
    let lines: Vec<u32> = unordered.iter().map(|f| f.line).collect();
    let mut sorted = lines.clone();
    sorted.sort_unstable();
    assert_eq!(lines, sorted);
}

#[test]
fn unordered_iter_spares_btrees_sinks_and_annotated_sites() {
    let src = include_str!("fixtures/unordered_iter_ok.rs");
    let findings = lint_source("fixtures/unordered_iter_ok.rs", src, &det());
    assert!(findings.is_empty(), "{findings:?}");
}

#[test]
fn unordered_iter_is_off_outside_deterministic_crates() {
    let src = include_str!("fixtures/unordered_iter_trigger.rs");
    let findings = lint_source("fixtures/unordered_iter_trigger.rs", src, &nondet());
    assert!(findings.is_empty(), "{findings:?}");
}

#[test]
fn wall_clock_triggers() {
    let src = include_str!("fixtures/wall_clock_trigger.rs");
    let findings = lint_source("fixtures/wall_clock_trigger.rs", src, &det());
    assert!(
        findings.iter().any(|f| f.rule == Rule::WallClock),
        "{findings:?}"
    );
    assert!(findings
        .iter()
        .all(|f| f.rule == Rule::WallClock && f.line > 0));
}

#[test]
fn wall_clock_ignores_comments_strings_and_virtual_time() {
    let src = include_str!("fixtures/wall_clock_ok.rs");
    let findings = lint_source("fixtures/wall_clock_ok.rs", src, &det());
    assert!(findings.is_empty(), "{findings:?}");
}

#[test]
fn float_ord_triggers_on_partial_and_total_cmp() {
    let src = include_str!("fixtures/float_ord_trigger.rs");
    let findings = lint_source("fixtures/float_ord_trigger.rs", src, &det());
    // Unknown-receiver partial_cmp, closure-param total_cmp, and the
    // field-resolved f64 receiver.
    assert_eq!(
        rules_of(&findings),
        vec![Rule::FloatOrd, Rule::FloatOrd, Rule::FloatOrd]
    );
}

#[test]
fn float_ord_spares_order_key_definitions_and_annotations() {
    // Includes the known-non-float receiver (`u64` field), which the
    // lexer-era pass could only silence with an annotation or the
    // whole-file carve-out.
    let src = include_str!("fixtures/float_ord_ok.rs");
    let findings = lint_source("fixtures/float_ord_ok.rs", src, &det());
    assert!(findings.is_empty(), "{findings:?}");
}

#[test]
fn the_order_key_file_passes_without_a_carve_out() {
    // PR 4 exempted crates/core/src/index.rs wholesale (BLESSED_FLOAT_FILE)
    // because the lexer could not tell bit-pattern comparisons from float
    // comparisons. The type-aware pass audits it like any other file.
    let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .expect("workspace root")
        .to_path_buf();
    let src = std::fs::read_to_string(root.join("crates/core/src/index.rs"))
        .expect("index.rs is part of the audited tree");
    let findings = lint_source("crates/core/src/index.rs", &src, &det());
    assert!(findings.is_empty(), "{findings:?}");
}

#[test]
fn unsafe_triggers_everywhere_and_cannot_be_allowed() {
    let src = include_str!("fixtures/unsafe_trigger.rs");
    for class in [det(), nondet()] {
        let findings = lint_source("fixtures/unsafe_trigger.rs", src, &class);
        assert!(
            findings.iter().any(|f| f.rule == Rule::UnsafeCode),
            "{findings:?}"
        );
        // The fixture's allow-annotation must be rejected as bare.
        assert!(
            findings.iter().any(|f| f.rule == Rule::BareAllow),
            "{findings:?}"
        );
    }
}

#[test]
fn serialized_hash_triggers_in_any_crate() {
    let src = include_str!("fixtures/serialized_hash_trigger.rs");
    let findings = lint_source("fixtures/serialized_hash_trigger.rs", src, &nondet());
    // HashMap field in the struct and HashSet payload in the enum.
    assert_eq!(
        rules_of(&findings),
        vec![Rule::SerializedHash, Rule::SerializedHash]
    );
}

#[test]
fn serialized_hash_spares_btrees_and_unserialized_types() {
    let src = include_str!("fixtures/serialized_hash_ok.rs");
    let findings = lint_source("fixtures/serialized_hash_ok.rs", src, &nondet());
    assert!(findings.is_empty(), "{findings:?}");
}

#[test]
fn missing_forbid_triggers_only_on_lib_roots() {
    let trigger = include_str!("fixtures/missing_forbid_trigger.rs");
    let ok = include_str!("fixtures/missing_forbid_ok.rs");
    let root = FileClass {
        lib_root: true,
        ..Default::default()
    };
    let findings = lint_source("fixtures/missing_forbid_trigger.rs", trigger, &root);
    assert_eq!(rules_of(&findings), vec![Rule::MissingForbid]);
    assert_eq!(findings[0].line, 1);
    let findings = lint_source("fixtures/missing_forbid_ok.rs", ok, &root);
    assert!(findings.is_empty(), "{findings:?}");
    // The same file as a non-root module is not required to carry it.
    let findings = lint_source("fixtures/missing_forbid_trigger.rs", trigger, &nondet());
    assert!(findings.is_empty(), "{findings:?}");
}

#[test]
fn bare_allow_leaves_the_original_violation_standing() {
    let src = include_str!("fixtures/bare_allow_trigger.rs");
    let findings = lint_source("fixtures/bare_allow_trigger.rs", src, &det());
    assert!(
        findings.iter().any(|f| f.rule == Rule::UnorderedIter),
        "{findings:?}"
    );
    assert!(
        findings.iter().any(|f| f.rule == Rule::BareAllow),
        "{findings:?}"
    );
}

#[test]
fn findings_render_as_path_line_rule() {
    let src = include_str!("fixtures/float_ord_trigger.rs");
    let findings = lint_source("crates/demo/src/x.rs", src, &det());
    let line = findings[0].to_string();
    assert!(
        line.starts_with("crates/demo/src/x.rs:") && line.contains("[float-ord]"),
        "{line}"
    );
}

#[test]
fn allowlist_requires_justifications_and_flags_unused_entries() {
    let text = "\
# comment lines and blanks are fine

unordered-iter crates/demo/src/a.rs values drained into a sorted vec
float-ord crates/demo/src/b.rs
unsafe-code crates/demo/src/c.rs reasons do not help here
bogus-rule crates/demo/src/d.rs whatever
";
    let mut list = Allowlist::parse(text, "xtask/lint.allow");
    // Three bad entries: missing reason, unallowable rule, unknown rule.
    assert_eq!(list.parse_findings.len(), 3, "{:?}", list.parse_findings);
    assert!(list
        .parse_findings
        .iter()
        .all(|f| f.rule == Rule::BareAllow));
    // The good entry silences its (rule, path) pair...
    assert!(list.allows(Rule::UnorderedIter, "crates/demo/src/a.rs"));
    // ...but not other paths or rules.
    assert!(!list.allows(Rule::UnorderedIter, "crates/demo/src/z.rs"));
    assert!(!list.allows(Rule::WallClock, "crates/demo/src/a.rs"));
    // Used entries produce no unused-allow findings.
    assert!(list.unused_findings("xtask/lint.allow").is_empty());

    let mut stale = Allowlist::parse(
        "wall-clock crates/demo/src/never.rs left over from a refactor\n",
        "xtask/lint.allow",
    );
    assert!(!stale.allows(Rule::FloatOrd, "crates/demo/src/never.rs"));
    let unused = stale.unused_findings("xtask/lint.allow");
    assert_eq!(rules_of(&unused), vec![Rule::UnusedAllow]);
}

#[test]
fn clone_exhaustive_triggers_on_skipped_fields() {
    let src = include_str!("fixtures/clone_exhaustive_trigger.rs");
    let findings = lint_source("fixtures/clone_exhaustive_trigger.rs", src, &det());
    let hits: Vec<_> = findings
        .iter()
        .filter(|f| f.rule == Rule::CloneExhaustive)
        .collect();
    assert_eq!(hits.len(), 2, "{findings:?}");
    assert!(
        hits[0].message.contains("rng_state"),
        "the rest-filled clone names its skipped field: {}",
        hits[0].message
    );
    assert!(
        hits[1].message.contains("epoch") && hits[1].message.contains("seen"),
        "the delegating clone names every skipped field: {}",
        hits[1].message
    );
}

#[test]
fn clone_exhaustive_spares_mentions_derives_and_tests() {
    let src = include_str!("fixtures/clone_exhaustive_ok.rs");
    let findings = lint_source("fixtures/clone_exhaustive_ok.rs", src, &det());
    assert!(findings.is_empty(), "{findings:?}");
}

#[test]
fn deleting_a_field_from_the_serving_sim_clone_fails_the_lint() {
    // The acceptance check for the snapshot/fork contract: the lint — not
    // just the compiler — must catch a field dropped from ServingSim's
    // manual deep clone.
    let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .expect("workspace root")
        .to_path_buf();
    let src = std::fs::read_to_string(root.join("crates/core/src/serving.rs"))
        .expect("serving.rs is part of the audited tree");
    let sabotage = "crash_lost_at: self.crash_lost_at.clone(),";
    assert!(
        src.contains(sabotage),
        "the clone line this test deletes must exist in serving.rs"
    );
    let broken = src.replacen(sabotage, "", 1);
    let findings = lint_source("crates/core/src/serving.rs", &broken, &det());
    assert!(
        findings
            .iter()
            .any(|f| f.rule == Rule::CloneExhaustive && f.message.contains("crash_lost_at")),
        "dropping a clone line must trip clone-exhaustive: {findings:?}"
    );
    // And the unmodified file passes, so the finding is the deletion's.
    let clean = lint_source("crates/core/src/serving.rs", &src, &det());
    assert!(
        !clean.iter().any(|f| f.rule == Rule::CloneExhaustive),
        "{clean:?}"
    );
}

#[test]
fn effect_ownership_triggers_outside_ledger_paths() {
    let src = include_str!("fixtures/effect_ownership_trigger.rs");
    let findings = lint_source("fixtures/effect_ownership_trigger.rs", src, &det());
    let hits: Vec<_> = findings
        .iter()
        .filter(|f| f.rule == Rule::EffectOwnership)
        .collect();
    // The smuggled EffectKey literal and the direct outbox push.
    assert_eq!(hits.len(), 2, "{findings:?}");
}

#[test]
fn effect_ownership_spares_counting_paths_and_tests() {
    let src = include_str!("fixtures/effect_ownership_ok.rs");
    let findings = lint_source("fixtures/effect_ownership_ok.rs", src, &det());
    assert!(findings.is_empty(), "{findings:?}");
}

#[test]
fn panic_path_triggers_on_unjustified_sites() {
    let src = include_str!("fixtures/panic_path_trigger.rs");
    let findings = lint_source("fixtures/panic_path_trigger.rs", src, &det());
    let hits: Vec<_> = findings
        .iter()
        .filter(|f| f.rule == Rule::PanicPath)
        .collect();
    // Bare unwrap, vacuous expect, and two computed Vec indexes.
    assert_eq!(hits.len(), 4, "{findings:?}");
}

#[test]
fn panic_path_spares_justified_sites() {
    let src = include_str!("fixtures/panic_path_ok.rs");
    let findings = lint_source("fixtures/panic_path_ok.rs", src, &det());
    assert!(findings.is_empty(), "{findings:?}");
}

#[test]
fn panic_path_and_unordered_iter_audit_xtask_itself() {
    let class = FileClass {
        xtask: true,
        ..Default::default()
    };
    let src = "struct W { q: Vec<u64> }\n\
               fn f(w: &W, i: usize) -> u64 { w.q[i + 1].max(w.q.first().copied().unwrap()) }\n";
    let findings = lint_source("xtask/src/demo.rs", src, &class);
    assert!(
        findings.iter().any(|f| f.rule == Rule::PanicPath),
        "{findings:?}"
    );
    // ...but the simulation-only rules stay off for the linter's own code.
    let float = "fn g(a: f64, b: f64) { a.partial_cmp(&b); }";
    let findings = lint_source("xtask/src/demo.rs", float, &class);
    assert!(findings.is_empty(), "{findings:?}");
}

#[test]
fn hir_round_trips_every_audited_file() {
    // The HIR item scan must never choke on real code: every audited file
    // lexes, parses, and resolves without panicking, and files known to
    // define items actually surface them (guarding against a parser that
    // "succeeds" by finding nothing).
    let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .expect("workspace root")
        .to_path_buf();
    let items = work_items(&root);
    assert!(items.len() >= 10, "suspiciously few audited files");
    let mut fields = xtask::hir::FieldTable::default();
    let mut parsed = Vec::new();
    for item in &items {
        let src = std::fs::read_to_string(&item.abs).expect("audited file is readable");
        let lexed = xtask::lexer::lex(&src);
        let hir = xtask::hir::parse(&lexed.tokens);
        let has_fn = src.contains("fn ");
        assert!(
            !has_fn || !hir.fns.is_empty(),
            "{}: source declares functions but the HIR found none",
            item.rel
        );
        fields.add_file(&hir);
        parsed.push((item.rel.clone(), lexed, hir));
    }
    for (_, lexed, hir) in &mut parsed {
        xtask::hir::refine_bindings(&lexed.tokens, hir, &fields);
    }
    // Spot-check workspace resolution: ServingSim's hash-container field
    // and the float load fields must be classified from their declarations.
    assert!(
        fields.may_be_hash("crash_lost_at")
            || fields.lookup("crash_lost_at") != xtask::hir::TypeApprox::Unknown,
        "serving.rs fields must reach the table"
    );
}

#[test]
fn json_report_carries_the_stable_schema() {
    // CI consumes this document (artifact + problem matcher): rule id,
    // path, line, message, snippet, allow-candidate, in that shape.
    let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .expect("workspace root")
        .to_path_buf();
    let findings = vec![
        xtask::Finding {
            path: "crates/core/src/serving.rs".to_string(),
            line: 1,
            rule: Rule::UnorderedIter,
            message: "demo \"quoted\" message".to_string(),
        },
        xtask::Finding {
            path: "crates/core/src/serving.rs".to_string(),
            line: 0,
            rule: Rule::UnsafeCode,
            message: "no escape hatch".to_string(),
        },
    ];
    let doc = xtask::render_json(&root, &findings);
    assert!(doc.contains("\"version\": 1"), "{doc}");
    assert!(doc.contains("\"clean\": false"), "{doc}");
    assert!(doc.contains("\"rule\": \"unordered-iter\""), "{doc}");
    assert!(
        doc.contains("\"path\": \"crates/core/src/serving.rs\""),
        "{doc}"
    );
    assert!(doc.contains("\"line\": 1"), "{doc}");
    assert!(
        doc.contains("demo \\\"quoted\\\" message"),
        "quotes are escaped: {doc}"
    );
    // Line 1 of serving.rs is a doc comment — the snippet is re-read from
    // the real file, not invented.
    assert!(doc.contains("\"snippet\": \"//!"), "{doc}");
    assert!(
        doc.contains("\"allow_candidate\": \"// lint: allow(unordered-iter) — <reason>\""),
        "{doc}"
    );
    // Unallowable rules and line-0 findings degrade to null, not garbage.
    assert!(doc.contains("\"allow_candidate\": null"), "{doc}");
    assert!(doc.contains("\"snippet\": null"), "{doc}");
    // An empty report is explicit about being clean.
    let clean = xtask::render_json(&root, &[]);
    assert!(clean.contains("\"clean\": true"), "{clean}");
    assert!(clean.contains("\"findings\": []"), "{clean}");
}

#[test]
fn the_real_tree_is_clean() {
    // The audit over the actual workspace must pass: this is the same
    // check CI runs via `cargo xtask lint`, enforced here so plain
    // `cargo test` catches a regression too.
    let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .expect("workspace root")
        .to_path_buf();
    let findings = run_lint(&root);
    assert!(
        findings.is_empty(),
        "determinism audit found violations:\n{}",
        findings
            .iter()
            .map(|f| f.to_string())
            .collect::<Vec<_>>()
            .join("\n")
    );
}

#[test]
fn shard_modules_are_audited_as_deterministic() {
    // The sharded windowed core carries the byte-identical-schedule
    // contract across threads, so its modules must sit inside the strict
    // audit set — a crate-list or layout change that drops them has to
    // fail loudly, not silently relax the rules.
    let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .expect("workspace root")
        .to_path_buf();
    let items = work_items(&root);
    for rel in ["crates/sim/src/shard.rs", "crates/core/src/shard.rs"] {
        let item = items
            .iter()
            .find(|i| i.rel == rel)
            .unwrap_or_else(|| panic!("{rel} missing from the audit's work items"));
        assert!(
            item.class.deterministic,
            "{rel} must be audited under the deterministic-crate rules"
        );
    }
}
