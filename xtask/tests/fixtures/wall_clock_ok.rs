// Fixture: virtual time and string/comment mentions must NOT trip
// `wall-clock`. Not compiled — consumed by lint_rules.rs.

// Instant::now() in a comment is fine.

struct SimTime(u64);

fn advance(t: SimTime, dt: u64) -> SimTime {
    SimTime(t.0 + dt)
}

fn describe() -> &'static str {
    "never calls Instant::now() or SystemTime::now()"
}
