// Fixture: a manual `impl Clone` that skips a declared field must trip
// `clone-exhaustive`. Not compiled — consumed by lint_rules.rs.

#[derive(Default)]
struct Snapshot {
    now: u64,
    queue: Vec<u64>,
    rng_state: u128,
}

impl Clone for Snapshot {
    fn clone(&self) -> Self {
        // `rng_state` is never mentioned: the rest-filler defaults it, so a
        // fork through this clone silently diverges from its donor.
        Snapshot {
            now: self.now,
            queue: self.queue.clone(),
            ..Default::default()
        }
    }
}

struct Reset {
    epoch: u64,
    seen: Vec<u64>,
}

impl Clone for Reset {
    fn clone(&self) -> Self {
        // Neither field is mentioned — both must be reported.
        Reset::fresh()
    }
}

impl Reset {
    fn fresh() -> Self {
        Reset {
            epoch: 0,
            seen: Vec::new(),
        }
    }
}
