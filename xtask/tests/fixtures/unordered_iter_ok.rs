// Fixture: none of this may trip `unordered-iter` even in a deterministic
// crate — BTree containers, order-insensitive sinks, and a justified
// annotation. Not compiled — consumed by lint_rules.rs.
use std::collections::{BTreeMap, HashMap};

struct Fleet {
    members: BTreeMap<u64, String>,
    loads: HashMap<u64, u64>,
}

fn total(f: &Fleet) -> u64 {
    f.loads.values().copied().sum()
}

fn busiest(f: &Fleet) -> Option<u64> {
    f.loads.values().copied().max()
}

fn any_idle(f: &Fleet) -> bool {
    f.loads.values().any(|&l| l == 0)
}

fn names(f: &Fleet) -> Vec<&String> {
    f.members.values().collect()
}

fn sorted_ids(f: &Fleet) -> Vec<u64> {
    let mut ids: Vec<u64> = f
        .loads
        .keys() // lint: allow(unordered-iter) — sorted before returning
        .copied()
        .collect();
    ids.sort_unstable();
    ids
}

fn sorted_loads(f: &Fleet) -> Vec<u64> {
    // lint: allow(unordered-iter) — values are sorted before use
    let mut out: Vec<u64> = f.loads.values().copied().collect();
    out.sort_unstable();
    out
}

fn sorted_without_annotation(f: &Fleet) -> Vec<u64> {
    // No annotation needed: the HIR proves the collected Vec is sorted in
    // this same function before anyone can observe hasher order.
    let mut ids: Vec<u64> = f.loads.keys().copied().collect();
    ids.sort_unstable();
    ids
}
