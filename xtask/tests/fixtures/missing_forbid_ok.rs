//! Fixture: a crate root carrying `#![forbid(unsafe_code)]` passes
//! `missing-forbid`. Not compiled — consumed by lint_rules.rs.
#![forbid(unsafe_code)]
#![deny(rust_2018_idioms)]

pub fn noop() {}
