// Fixture: hash containers inside `#[derive(Serialize)]` types must trip
// `serialized-hash` in any crate. Not compiled — consumed by lint_rules.rs.
use std::collections::{HashMap, HashSet};

#[derive(Debug, Clone, Serialize, Deserialize)]
struct FigureRecord {
    latencies_by_instance: HashMap<u64, f64>,
}

#[derive(Serialize)]
enum Sample {
    Ids(HashSet<u64>),
}
