//! Fixture: a crate root without `#![forbid(unsafe_code)]` must trip
//! `missing-forbid`. Not compiled — consumed by lint_rules.rs.
#![deny(rust_2018_idioms)]

pub fn noop() {}
