// Fixture: raw float ordering in a deterministic crate must trip
// `float-ord`. Not compiled — consumed by lint_rules.rs.

fn argmax(xs: &[f64]) -> usize {
    let mut best = 0usize;
    for (i, x) in xs.iter().enumerate() {
        if x.partial_cmp(&xs[best]).map_or(false, |o| o.is_gt()) {
            best = i;
        }
    }
    best
}

fn sort_totally(xs: &mut [f64]) {
    xs.sort_by(|a, b| a.total_cmp(b));
}
