// Fixture: raw float ordering in a deterministic crate must trip
// `float-ord`. Not compiled — consumed by lint_rules.rs.

fn argmax(xs: &[f64]) -> usize {
    let mut best = 0usize;
    for (i, x) in xs.iter().enumerate() {
        if x.partial_cmp(&xs[best]).map_or(false, |o| o.is_gt()) {
            best = i;
        }
    }
    best
}

fn sort_totally(xs: &mut [f64]) {
    xs.sort_by(|a, b| a.total_cmp(b));
}

struct Load {
    freeness: f64,
}

impl Load {
    fn beats(&self, other: &Load) -> bool {
        // A float-typed *field* receiver, resolved through the HIR's
        // workspace field table rather than a local binding.
        self.freeness
            .partial_cmp(&other.freeness)
            .map_or(false, |o| o.is_gt())
    }
}
