// Fixture: justified panic handling that must NOT trip `panic-path` —
// expect with a real message, plain loop indexing, get-based access, the
// modulo-length idiom, debug_assert operands, test code, and an annotated
// unwrap. Not compiled — consumed by lint_rules.rs.

struct Calendar {
    buckets: Vec<u64>,
    labels: std::collections::BTreeMap<u64, String>,
}

fn head(c: &Calendar) -> u64 {
    // The expect message is the in-language proof obligation.
    *c.buckets.first().expect("calendar is never empty after init")
}

fn nth(c: &Calendar, i: usize) -> u64 {
    // Plain loop-style indexing: the bound is adjacent to the use.
    c.buckets[i]
}

fn neighbor(c: &Calendar, i: usize) -> u64 {
    *c.buckets
        .get(i + 1)
        .expect("caller checked i against len - 1")
}

fn wrapped(c: &Calendar, seed: u64) -> u64 {
    // Modulo-of-length is in range by construction.
    c.buckets[seed as usize % c.buckets.len()]
}

fn check(c: &Calendar) {
    debug_assert_eq!(c.buckets.first().unwrap(), &0, "calendar must start at 0");
}

fn blessed(c: &Calendar) -> u64 {
    // lint: allow(panic-path) — fixture demonstrating the escape hatch
    *c.buckets.first().unwrap()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn probe(c: &Calendar) -> u64 {
        // Test code unwraps freely.
        c.labels.get(&0).unwrap().len() as u64 + c.buckets[0 + 1]
    }
}
