// Fixture: an allow-annotation with no justification must trip
// `bare-allow` AND leave the original violation standing. Not compiled —
// consumed by lint_rules.rs.
use std::collections::HashMap;

struct S {
    m: HashMap<u64, u64>,
}

fn ids(s: &S) -> Vec<u64> {
    s.m.keys().copied().collect() // lint: allow(unordered-iter)
}
