// Fixture: wall-clock time sources in a deterministic crate must trip
// `wall-clock`. Not compiled — consumed by lint_rules.rs.
use std::time::{Instant, SystemTime};

fn elapsed_ms(start: Instant) -> u128 {
    start.elapsed().as_millis()
}

fn stamp() -> SystemTime {
    SystemTime::now()
}
