// Fixture: effect construction / outbox pushes outside a ledger-counting
// path must trip `effect-ownership`. Not compiled — consumed by
// lint_rules.rs.

struct EffectKey {
    at: u64,
    entity: u64,
    seq: u32,
}

enum Effect {
    Arrive(u64),
}

struct Outbox {
    effects: Vec<(EffectKey, Effect)>,
}

fn smuggle_key(at: u64, entity: u64) -> EffectKey {
    // An EffectKey minted in a function that never tallies the emission
    // ledger: it would cross the barrier uncounted.
    EffectKey {
        at,
        entity,
        seq: 0,
    }
}

fn smuggle_push(out: &mut Outbox, key: EffectKey, eff: Effect) {
    // A direct outbox push with no `.count(..)` in sight.
    out.effects.push((key, eff));
}
