// Fixture: manual Clone impls that must NOT trip `clone-exhaustive` —
// every field mentioned (even when handled rather than cloned), a derived
// Clone, a fieldless struct, and test-only code. Not compiled — consumed
// by lint_rules.rs.

struct Snapshot {
    now: u64,
    queue: Vec<u64>,
    pool: Option<u32>,
}

impl Clone for Snapshot {
    fn clone(&self) -> Self {
        Snapshot {
            now: self.now,
            queue: self.queue.clone(),
            // Deliberately reset, not cloned: mentioning the field is the
            // contract; judging the expression is the reviewer's job.
            pool: None,
        }
    }
}

#[derive(Clone)]
struct Derived {
    a: u64,
    b: Vec<u64>,
}

struct Marker;

impl Clone for Marker {
    fn clone(&self) -> Self {
        Marker
    }
}

#[cfg(test)]
mod tests {
    struct Probe {
        hits: u64,
        misses: u64,
    }

    impl Clone for Probe {
        fn clone(&self) -> Self {
            // Test-only code is out of audit scope even when sloppy:
            // `misses` is never mentioned here.
            Probe {
                hits: self.hits,
                ..zeroed()
            }
        }
    }

    fn zeroed() -> Probe {
        Probe { hits: 0, misses: 0 }
    }
}
