// Fixture: the canonical ledger-counting emit path, declarations, and
// test code must NOT trip `effect-ownership`. Not compiled — consumed by
// lint_rules.rs.

struct EffectKey {
    at: u64,
    entity: u64,
    seq: u32,
}

enum Effect {
    Arrive(u64),
}

struct Ledger {
    arrives: u64,
}

impl Ledger {
    fn count(&mut self, _eff: &Effect) {
        self.arrives += 1;
    }
}

struct Outbox {
    effects: Vec<(EffectKey, Effect)>,
}

fn emit(ledger: &mut Ledger, out: &mut Outbox, at: u64, entity: u64, seq: u32, eff: Effect) {
    // The canonical path: tally the ledger, then key and buffer the
    // effect. Both sites sit in a function that calls `.count(..)`.
    ledger.count(&eff);
    out.effects.push((EffectKey { at, entity, seq }, eff));
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(at: u64) -> EffectKey {
        // Test helpers mint keys freely; assertions are not emissions.
        EffectKey {
            at,
            entity: 0,
            seq: 0,
        }
    }
}
