// Fixture: BTree containers in serialized types, and hash containers in
// types that do NOT serialize, must NOT trip `serialized-hash`. Not
// compiled — consumed by lint_rules.rs.
use std::collections::{BTreeMap, HashMap};

#[derive(Debug, Clone, Serialize, Deserialize)]
struct FigureRecord {
    latencies_by_instance: BTreeMap<u64, f64>,
}

#[derive(Debug, Default)]
struct ScratchState {
    cache: HashMap<u64, f64>,
}
