// Fixture: `unsafe` must trip `unsafe-code` in ANY crate, and no
// annotation may silence it. Not compiled — consumed by lint_rules.rs.

fn first(v: &[u8]) -> u8 {
    // lint: allow(unsafe-code) — this annotation must be rejected
    unsafe { *v.get_unchecked(0) }
}
