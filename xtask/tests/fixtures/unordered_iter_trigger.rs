// Fixture: every construct here must trip `unordered-iter` when classified
// as a deterministic crate. Not compiled — consumed by lint_rules.rs.
use std::collections::{HashMap, HashSet};

type Counts = HashMap<u64, u32>;

struct Fleet {
    members: HashMap<u64, String>,
    tags: HashSet<u64>,
    counts: Counts,
}

fn report(f: &Fleet) -> Vec<u64> {
    let mut out = Vec::new();
    for id in &f.tags {
        out.push(*id);
    }
    for (id, _) in f.members.iter() {
        out.push(*id);
    }
    let ids: Vec<u64> = f.counts.keys().copied().collect();
    out.extend(ids);
    out
}

fn prune(f: &mut Fleet) {
    f.members.retain(|id, _| *id != 0);
}
