// Fixture: ordering through the blessed `order_key` encoding, a trait
// *definition* of partial_cmp, and a justified annotation must NOT trip
// `float-ord`. Not compiled — consumed by lint_rules.rs.

fn order_key(x: f64) -> u64 {
    let bits = x.to_bits();
    if bits >> 63 == 0 {
        bits | 1 << 63
    } else {
        !bits
    }
}

fn argmax(xs: &[f64]) -> Option<usize> {
    (0..xs.len()).max_by_key(|&i| order_key(xs[i]))
}

struct Score(f64);

impl PartialOrd for Score {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(order_key(self.0).cmp(&order_key(other.0)))
    }
}

fn sort_for_display(xs: &mut [f64]) {
    // lint: allow(float-ord) — display-only ordering, inputs are finite
    xs.sort_by(|a, b| a.partial_cmp(b).expect("display values are finite"));
}

struct Lamport {
    tick: u64,
}

impl Lamport {
    fn cmp_to(&self, other: &Lamport) -> Option<std::cmp::Ordering> {
        // A known non-float receiver (u64 field): `partial_cmp` here is a
        // total order, so the type-aware rule stays silent without any
        // annotation — the lexer-era pass needed one.
        self.tick.partial_cmp(&other.tick)
    }
}
