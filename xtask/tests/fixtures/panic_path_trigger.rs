// Fixture: unjustified panic sites in deterministic code must trip
// `panic-path` — a bare unwrap, a vacuous expect message, and a computed
// index into a known Vec. Not compiled — consumed by lint_rules.rs.

struct Calendar {
    buckets: Vec<u64>,
}

fn head(c: &Calendar) -> u64 {
    *c.buckets.first().unwrap()
}

fn tail(c: &Calendar) -> u64 {
    *c.buckets.last().expect("ok")
}

fn neighbor(c: &Calendar, i: usize) -> u64 {
    c.buckets[i + 1]
}

fn scaled(c: &Calendar, i: usize) -> u64 {
    let stride: usize = 4;
    c.buckets[i * stride]
}
