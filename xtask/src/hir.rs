//! A tiny item-level HIR over the lexer's token stream.
//!
//! The lexer pass (PR 4) tracked identifiers per file with no notion of
//! items or types, so every new subsystem paid for the audit in
//! annotations and whole-file carve-outs. This module is the next rung on
//! the RV-Match/Miri ladder of executable-semantics checkers: still
//! dependency-free and conservative, but *semantic* — it recognizes
//! items (structs with their fields and field types, `impl` blocks with
//! their self type and trait, functions with bodies), builds a per-function
//! binding table with a small type approximation, and resolves struct
//! fields across the whole audited workspace, so a rule can ask "is
//! `self.states` a hash container?" instead of "does this file contain the
//! ident `states` near a colon?".
//!
//! The type approximation ([`TypeApprox`]) is deliberately coarse — five
//! buckets, classified from declared types, constructor paths like
//! `HashMap::new()`, float literals, and struct-field lookups through
//! `self.` — because every consumer errs on the safe side: the
//! unordered-iter and effect-ownership rules fire when a receiver *may* be
//! the dangerous type, and the float-ord and panic-path rules suppress only
//! when a receiver is *known* to be a safe one. `Unknown` therefore never
//! hides a violation; it only declines to silence one.
//!
//! Nothing here is a real parser: item headers are recognized by keyword
//! and bracket balancing, and anything unrecognized is skipped rather than
//! rejected, so the item scan "round-trips" every `.rs` file in the
//! workspace without error (enforced by a smoke test over the real tree).

use std::collections::{BTreeMap, BTreeSet};

use crate::lexer::{Token, TokenKind};

/// The small type approximation attached to bindings and fields.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub enum TypeApprox {
    /// `f32` / `f64`, or a float literal.
    Float,
    /// `HashMap` / `HashSet` (or a local alias of one): iteration order
    /// depends on the hasher.
    Hash,
    /// `Vec` / `VecDeque` / slice / array: indexable, panics when out of
    /// range.
    VecLike,
    /// Any other resolved head type, by name (`SimTime`, `BTreeMap`,
    /// `EffectCounts`, ...).
    Named(String),
    /// Could not classify. Consumers must treat this as "any type".
    Unknown,
}

impl TypeApprox {
    /// Whether this approximation definitely rules out a float: a resolved
    /// non-float type. `Unknown` rules out nothing.
    pub fn known_non_float(&self) -> bool {
        matches!(
            self,
            TypeApprox::Hash | TypeApprox::VecLike | TypeApprox::Named(_)
        )
    }
}

/// One declared struct field.
#[derive(Debug, Clone)]
pub struct Field {
    /// Field name.
    pub name: String,
    /// Classified field type.
    pub ty: TypeApprox,
    /// 1-based line of the declaration.
    pub line: u32,
}

/// One `struct` item.
#[derive(Debug, Clone)]
pub struct StructDef {
    /// Type name.
    pub name: String,
    /// 1-based line of the `struct` keyword.
    pub line: u32,
    /// Named fields, in declaration order (empty for tuple/unit structs).
    pub fields: Vec<Field>,
}

/// One `impl` block header.
#[derive(Debug, Clone)]
pub struct ImplDef {
    /// The implemented trait's head ident, if this is a trait impl.
    pub trait_name: Option<String>,
    /// The self type's head ident (`Foo` in `impl Clone for Foo<T>`).
    pub self_ty: String,
    /// 1-based line of the `impl` keyword.
    pub line: u32,
    /// Token range of the body, `{` inclusive to matching `}` exclusive.
    pub body: (usize, usize),
}

/// One function (free or method), with its binding table.
#[derive(Debug, Clone)]
pub struct FnDef {
    /// Function name.
    pub name: String,
    /// 1-based line of the `fn` keyword.
    pub line: u32,
    /// Token range of the body, `{` inclusive to matching `}` exclusive.
    pub body: (usize, usize),
    /// Approximated types of parameters and `let` bindings, by name.
    /// A name bound more than once keeps its *last* classification.
    pub bindings: BTreeMap<String, TypeApprox>,
}

/// The item-level HIR of one file.
#[derive(Debug, Default)]
pub struct FileHir {
    /// Structs declared in the file.
    pub structs: Vec<StructDef>,
    /// `impl` blocks declared in the file.
    pub impls: Vec<ImplDef>,
    /// Functions (free and methods), in source order.
    pub fns: Vec<FnDef>,
    /// Token ranges under `#[cfg(test)]` or `#[test]` items.
    pub test_spans: Vec<(usize, usize)>,
    /// Token ranges of `debug_assert*!(...)` macro invocations.
    pub debug_assert_spans: Vec<(usize, usize)>,
}

impl FileHir {
    /// Whether token index `i` falls inside test-only code.
    pub fn in_test(&self, i: usize) -> bool {
        self.test_spans.iter().any(|&(s, e)| s <= i && i < e)
    }

    /// Whether token index `i` falls inside a `debug_assert*!` invocation.
    pub fn in_debug_assert(&self, i: usize) -> bool {
        self.debug_assert_spans
            .iter()
            .any(|&(s, e)| s <= i && i < e)
    }

    /// The innermost function whose body contains token index `i`.
    pub fn enclosing_fn(&self, i: usize) -> Option<&FnDef> {
        self.fns
            .iter()
            .filter(|f| {
                let (s, e) = f.body;
                s <= i && i < e
            })
            .min_by_key(|f| {
                let (s, e) = f.body;
                e - s
            })
    }

    /// The impl block whose body contains token index `i`.
    pub fn enclosing_impl(&self, i: usize) -> Option<&ImplDef> {
        self.impls.iter().find(|im| {
            let (s, e) = im.body;
            s <= i && i < e
        })
    }
}

/// Struct fields resolved across every audited file: field name → the set
/// of classifications it carries anywhere in the workspace. Field *names*
/// (not `struct::field` pairs) are the key on purpose: the audit cannot
/// resolve the concrete struct behind every receiver expression, so it
/// unions the possibilities and lets each rule pick its safe side.
#[derive(Debug, Default)]
pub struct FieldTable {
    by_name: BTreeMap<String, BTreeSet<TypeApprox>>,
}

impl FieldTable {
    /// Folds one file's structs into the table.
    pub fn add_file(&mut self, hir: &FileHir) {
        for s in &hir.structs {
            for f in &s.fields {
                self.by_name
                    .entry(f.name.clone())
                    .or_default()
                    .insert(f.ty.clone());
            }
        }
    }

    /// Whether some struct in the workspace declares `name` as a hash
    /// container.
    pub fn may_be_hash(&self, name: &str) -> bool {
        self.by_name
            .get(name)
            .is_some_and(|set| set.contains(&TypeApprox::Hash))
    }

    /// The union classification of field `name`: a single approximation if
    /// every declaration agrees, `Unknown` on conflict or absence.
    pub fn lookup(&self, name: &str) -> TypeApprox {
        match self.by_name.get(name) {
            Some(set) if set.len() == 1 => {
                set.iter().next().cloned().unwrap_or(TypeApprox::Unknown)
            }
            _ => TypeApprox::Unknown,
        }
    }
}

// ---- small token utilities ------------------------------------------------

fn is_ident(t: &Token, text: &str) -> bool {
    t.kind == TokenKind::Ident && t.text == text
}

fn is_punct(t: &Token, text: &str) -> bool {
    t.kind == TokenKind::Punct && t.text == text
}

/// Index just past the bracket group opening at `open` (`(`, `[`, or `{`),
/// balancing all three kinds. Returns `tokens.len()` if unterminated.
pub fn skip_group(tokens: &[Token], open: usize) -> usize {
    let mut depth = 0i32;
    let mut i = open;
    while let Some(t) = tokens.get(i) {
        if t.kind == TokenKind::Punct {
            match t.text.as_str() {
                "(" | "[" | "{" => depth += 1,
                ")" | "]" | "}" => {
                    depth -= 1;
                    if depth == 0 {
                        return i.saturating_add(1);
                    }
                }
                _ => {}
            }
        }
        i = i.saturating_add(1);
    }
    i
}

/// Index just past a `<...>` generic group opening at `open`. Returns
/// `open` unchanged if `open` is not a `<`.
fn skip_angles(tokens: &[Token], open: usize) -> usize {
    if !tokens.get(open).is_some_and(|t| is_punct(t, "<")) {
        return open;
    }
    let mut depth = 0i32;
    let mut i = open;
    while let Some(t) = tokens.get(i) {
        if is_punct(t, "<") {
            depth += 1;
        } else if is_punct(t, ">") {
            depth -= 1;
            if depth == 0 {
                return i.saturating_add(1);
            }
        } else if is_punct(t, ";") || is_punct(t, "{") {
            // Unbalanced `<` (a comparison, not generics): bail out.
            return open;
        }
        i = i.saturating_add(1);
    }
    i
}

/// Whether a numeric literal's source text denotes a float.
pub fn is_float_literal(text: &str) -> bool {
    text.contains('.') || text.ends_with("f32") || text.ends_with("f64")
}

// ---- type classification --------------------------------------------------

/// Head-type names that classify as [`TypeApprox::Hash`].
pub const HASH_TYPES: [&str; 2] = ["HashMap", "HashSet"];
/// Head-type names that classify as [`TypeApprox::VecLike`].
const VEC_TYPES: [&str; 2] = ["Vec", "VecDeque"];
/// Head-type names that classify as [`TypeApprox::Float`].
const FLOAT_TYPES: [&str; 2] = ["f32", "f64"];

/// Tokens that may appear before the head ident of a type: references,
/// lifetimes, and qualifiers.
fn classify_type(tokens: &[Token], aliases: &BTreeMap<String, TypeApprox>) -> TypeApprox {
    let mut i = 0usize;
    while let Some(t) = tokens.get(i) {
        match t.kind {
            TokenKind::Punct if matches!(t.text.as_str(), "&" | "*") => i += 1,
            TokenKind::Lifetime => i += 1,
            TokenKind::Ident if matches!(t.text.as_str(), "mut" | "dyn" | "impl" | "const") => {
                i += 1
            }
            // A slice or array type: indexable.
            TokenKind::Punct if t.text == "[" => return TypeApprox::VecLike,
            TokenKind::Punct if t.text == "(" => return TypeApprox::Unknown, // tuple
            TokenKind::Ident => {
                // Walk a path `a::b::C<...>` and classify its last segment
                // before generics (`std::collections::HashMap` → HashMap).
                let mut head = t.text.clone();
                let mut j = i.saturating_add(1);
                loop {
                    let sep = tokens.get(j).is_some_and(|t| is_punct(t, ":"))
                        && tokens
                            .get(j.saturating_add(1))
                            .is_some_and(|t| is_punct(t, ":"));
                    if !sep {
                        break;
                    }
                    j = j.saturating_add(2);
                    match tokens.get(j) {
                        Some(seg) if seg.kind == TokenKind::Ident => {
                            head = seg.text.clone();
                            j = j.saturating_add(1);
                        }
                        _ => break,
                    }
                }
                if let Some(resolved) = aliases.get(&head) {
                    return resolved.clone();
                }
                if HASH_TYPES.contains(&head.as_str()) {
                    return TypeApprox::Hash;
                }
                if VEC_TYPES.contains(&head.as_str()) {
                    return TypeApprox::VecLike;
                }
                if FLOAT_TYPES.contains(&head.as_str()) {
                    return TypeApprox::Float;
                }
                return TypeApprox::Named(head);
            }
            _ => return TypeApprox::Unknown,
        }
    }
    TypeApprox::Unknown
}

/// Classifies an initializer expression (the tokens after a `let name =`):
/// constructor paths, float literals, `vec![...]`, and `self.field` reads.
fn classify_expr(
    tokens: &[Token],
    aliases: &BTreeMap<String, TypeApprox>,
    fields: Option<&FieldTable>,
) -> TypeApprox {
    let first = match tokens.first() {
        Some(t) => t,
        None => return TypeApprox::Unknown,
    };
    match first.kind {
        TokenKind::Literal if is_float_literal(&first.text) => TypeApprox::Float,
        TokenKind::Ident if first.text == "vec" => TypeApprox::VecLike,
        TokenKind::Ident if first.text == "self" => {
            // `self.field` (possibly `.clone()`d): the field's type.
            let dot = tokens.get(1).is_some_and(|t| is_punct(t, "."));
            let field = tokens.get(2).filter(|t| t.kind == TokenKind::Ident);
            match (dot, field, fields) {
                (true, Some(f), Some(table)) => {
                    // Only a bare read or a `.clone()` preserves the type.
                    let rest_ok = match tokens.get(3) {
                        None => true,
                        Some(t) if is_punct(t, ".") => {
                            tokens.get(4).is_some_and(|m| is_ident(m, "clone"))
                        }
                        Some(_) => false,
                    };
                    if rest_ok {
                        table.lookup(&f.text)
                    } else {
                        TypeApprox::Unknown
                    }
                }
                _ => TypeApprox::Unknown,
            }
        }
        TokenKind::Ident => {
            // A constructor path `Type::new(...)` / `Type::with_capacity`:
            // classify the path's head segments as a type. Require a `::`
            // so a plain variable copy stays Unknown.
            if tokens.get(1).is_some_and(|t| is_punct(t, ":"))
                && tokens.get(2).is_some_and(|t| is_punct(t, ":"))
            {
                classify_type(tokens, aliases)
            } else {
                TypeApprox::Unknown
            }
        }
        _ => TypeApprox::Unknown,
    }
}

// ---- the item scan --------------------------------------------------------

/// Pending outer attributes seen since the last item.
#[derive(Default, Clone, Copy)]
struct PendingAttrs {
    cfg_test: bool,
    test: bool,
}

/// Builds the HIR of one file. Never fails: unrecognized constructs are
/// skipped, not rejected.
pub fn parse(tokens: &[Token]) -> FileHir {
    let mut hir = FileHir::default();
    // Local `type X = HashMap<...>` aliases, applied when classifying.
    let mut aliases: BTreeMap<String, TypeApprox> = BTreeMap::new();
    for (i, t) in tokens.iter().enumerate() {
        if is_ident(t, "type")
            && tokens
                .get(i.saturating_add(1))
                .is_some_and(|n| n.kind == TokenKind::Ident)
            && tokens
                .get(i.saturating_add(2))
                .is_some_and(|e| is_punct(e, "="))
        {
            let name = tokens
                .get(i.saturating_add(1))
                .map(|n| n.text.clone())
                .unwrap_or_default();
            let mut end = i.saturating_add(3);
            while tokens.get(end).is_some_and(|t| !is_punct(t, ";")) {
                end = end.saturating_add(1);
            }
            let ty = classify_type(
                tokens.get(i.saturating_add(3)..end).unwrap_or(&[]),
                &aliases,
            );
            if ty != TypeApprox::Unknown {
                aliases.insert(name, ty);
            }
        }
    }

    let mut pending = PendingAttrs::default();
    let mut i = 0usize;
    while let Some(t) = tokens.get(i) {
        // Outer attribute: `#[...]`. Record test markers, then skip it.
        if is_punct(t, "#") {
            let open = i.saturating_add(1);
            let is_inner = tokens.get(open).is_some_and(|t| is_punct(t, "!"));
            let group_at = if is_inner {
                open.saturating_add(1)
            } else {
                open
            };
            if tokens.get(group_at).is_some_and(|t| is_punct(t, "[")) {
                let end = skip_group(tokens, group_at);
                let attr = tokens.get(group_at..end).unwrap_or(&[]);
                let has = |name: &str| attr.iter().any(|t| is_ident(t, name));
                if !is_inner {
                    if has("cfg") && has("test") {
                        pending.cfg_test = true;
                    } else if has("test") {
                        pending.test = true;
                    }
                }
                i = end;
                continue;
            }
        }
        if t.kind == TokenKind::Ident {
            match t.text.as_str() {
                "struct" => {
                    let (def, next) = parse_struct(tokens, i, &aliases);
                    if pending.cfg_test || pending.test {
                        hir.test_spans.push((i, next));
                    }
                    if let Some(def) = def {
                        hir.structs.push(def);
                    }
                    pending = PendingAttrs::default();
                    i = next;
                    continue;
                }
                "impl" => {
                    if let Some((def, body_open)) = parse_impl_header(tokens, i) {
                        if pending.cfg_test || pending.test {
                            hir.test_spans.push((i, def.body.1));
                        }
                        pending = PendingAttrs::default();
                        hir.impls.push(def);
                        // Descend into the body: methods are picked up by
                        // the main loop.
                        i = body_open.saturating_add(1);
                        continue;
                    }
                }
                "fn" => {
                    let (def, next) = parse_fn(tokens, i, &aliases);
                    if pending.cfg_test || pending.test {
                        hir.test_spans.push((i, next));
                    }
                    pending = PendingAttrs::default();
                    if let Some(def) = def {
                        hir.fns.push(def);
                        // Descend: nested fns/closures are re-scanned, and
                        // debug_assert spans inside bodies must be found.
                        let open = def_body_open(&hir);
                        i = open.saturating_add(1);
                        continue;
                    }
                    i = next;
                    continue;
                }
                "mod" => {
                    // `mod name { ... }`: a #[cfg(test)] mod is a test span
                    // covering its whole body; otherwise descend normally.
                    let mut j = i.saturating_add(1);
                    while tokens
                        .get(j)
                        .is_some_and(|t| !is_punct(t, "{") && !is_punct(t, ";"))
                    {
                        j = j.saturating_add(1);
                    }
                    if tokens.get(j).is_some_and(|t| is_punct(t, "{")) {
                        if pending.cfg_test {
                            hir.test_spans.push((i, skip_group(tokens, j)));
                        }
                        pending = PendingAttrs::default();
                        i = j.saturating_add(1); // descend
                        continue;
                    }
                    pending = PendingAttrs::default();
                    i = j.saturating_add(1);
                    continue;
                }
                name if name.starts_with("debug_assert")
                    && tokens
                        .get(i.saturating_add(1))
                        .is_some_and(|t| is_punct(t, "!")) =>
                {
                    let open = i.saturating_add(2);
                    if tokens
                        .get(open)
                        .is_some_and(|t| is_punct(t, "(") || is_punct(t, "[") || is_punct(t, "{"))
                    {
                        let end = skip_group(tokens, open);
                        hir.debug_assert_spans.push((i, end));
                        i = end;
                        continue;
                    }
                }
                _ => {}
            }
        }
        i = i.saturating_add(1);
    }
    hir
}

/// The body-open token index of the most recently pushed fn.
fn def_body_open(hir: &FileHir) -> usize {
    hir.fns.last().map(|f| f.body.0).unwrap_or(0)
}

/// Parses `struct Name ... { fields }` starting at the `struct` keyword.
/// Returns the def (None for unnamed/unrecognized) and the index to resume
/// scanning at.
fn parse_struct(
    tokens: &[Token],
    kw: usize,
    aliases: &BTreeMap<String, TypeApprox>,
) -> (Option<StructDef>, usize) {
    let name_tok = match tokens.get(kw.saturating_add(1)) {
        Some(t) if t.kind == TokenKind::Ident => t,
        _ => return (None, kw.saturating_add(1)),
    };
    let line = tokens.get(kw).map(|t| t.line).unwrap_or(0);
    // Find the body `{`, a tuple `(`, or `;`, skipping generics and where
    // clauses (where clauses may contain `(` for Fn bounds; those are
    // skipped as groups).
    let mut j = kw.saturating_add(2);
    j = skip_angles(tokens, j);
    loop {
        match tokens.get(j) {
            None => return (None, j),
            Some(t) if is_punct(t, "{") => break,
            Some(t) if is_punct(t, ";") => {
                // Unit struct: no fields.
                return (
                    Some(StructDef {
                        name: name_tok.text.clone(),
                        line,
                        fields: Vec::new(),
                    }),
                    j.saturating_add(1),
                );
            }
            Some(t) if is_punct(t, "(") => {
                // Tuple struct: positional fields are out of scope for the
                // field table (no names to resolve).
                let end = skip_group(tokens, j);
                return (
                    Some(StructDef {
                        name: name_tok.text.clone(),
                        line,
                        fields: Vec::new(),
                    }),
                    end,
                );
            }
            Some(_) => j = j.saturating_add(1),
        }
    }
    let body_end = skip_group(tokens, j);
    let mut fields = Vec::new();
    // Fields: `[pub[(...)]] name : TYPE` at depth 1, separated by commas at
    // depth 1. Attributes on fields are skipped as groups.
    let mut k = j.saturating_add(1);
    while k < body_end.saturating_sub(1) {
        let t = match tokens.get(k) {
            Some(t) => t,
            None => break,
        };
        if is_punct(t, "#") {
            let open = k.saturating_add(1);
            if tokens.get(open).is_some_and(|t| is_punct(t, "[")) {
                k = skip_group(tokens, open);
                continue;
            }
        }
        if is_ident(t, "pub") {
            k = k.saturating_add(1);
            if tokens.get(k).is_some_and(|t| is_punct(t, "(")) {
                k = skip_group(tokens, k);
            }
            continue;
        }
        if t.kind == TokenKind::Ident
            && tokens
                .get(k.saturating_add(1))
                .is_some_and(|c| is_punct(c, ":"))
            && !tokens
                .get(k.saturating_add(2))
                .is_some_and(|c| is_punct(c, ":"))
        {
            // Scan the type up to the field's terminating comma (at this
            // depth) or the body close.
            let ty_start = k.saturating_add(2);
            let mut m = ty_start;
            let mut depth = 0i32;
            let mut angle = 0i32;
            while m < body_end.saturating_sub(1) {
                let u = match tokens.get(m) {
                    Some(u) => u,
                    None => break,
                };
                if u.kind == TokenKind::Punct {
                    match u.text.as_str() {
                        "(" | "[" | "{" => depth += 1,
                        ")" | "]" | "}" => depth -= 1,
                        "<" => angle += 1,
                        ">" => angle -= 1,
                        "," if depth == 0 && angle <= 0 => break,
                        _ => {}
                    }
                }
                m = m.saturating_add(1);
            }
            fields.push(Field {
                name: t.text.clone(),
                ty: classify_type(tokens.get(ty_start..m).unwrap_or(&[]), aliases),
                line: t.line,
            });
            k = m.saturating_add(1);
            continue;
        }
        k = k.saturating_add(1);
    }
    (
        Some(StructDef {
            name: name_tok.text.clone(),
            line,
            fields,
        }),
        body_end,
    )
}

/// Parses an `impl` header starting at the `impl` keyword. Returns the def
/// and the index of the body `{`.
fn parse_impl_header(tokens: &[Token], kw: usize) -> Option<(ImplDef, usize)> {
    let line = tokens.get(kw)?.line;
    let mut j = skip_angles(tokens, kw.saturating_add(1));
    // Collect path segments until `for`, `{`, or `where`.
    let mut first_path_head: Option<String> = None;
    let mut second_path_head: Option<String> = None;
    let mut saw_for = false;
    loop {
        let t = tokens.get(j)?;
        if is_punct(t, "{") {
            break;
        }
        if is_ident(t, "where") {
            // Skip the where clause up to the body brace.
            while tokens.get(j).is_some_and(|t| !is_punct(t, "{")) {
                j = j.saturating_add(1);
            }
            break;
        }
        if is_ident(t, "for") {
            saw_for = true;
            j = j.saturating_add(1);
            continue;
        }
        if t.kind == TokenKind::Ident && !matches!(t.text.as_str(), "dyn" | "mut" | "const") {
            let slot = if saw_for {
                &mut second_path_head
            } else {
                &mut first_path_head
            };
            // The head of a path is its last segment before generics;
            // later segments overwrite earlier ones.
            *slot = Some(t.text.clone());
            j = skip_angles(tokens, j.saturating_add(1));
            continue;
        }
        j = j.saturating_add(1);
    }
    let body_open = j;
    let body_end = skip_group(tokens, body_open);
    let (trait_name, self_ty) = if saw_for {
        (first_path_head, second_path_head?)
    } else {
        (None, first_path_head?)
    };
    Some((
        ImplDef {
            trait_name,
            self_ty,
            line,
            body: (body_open, body_end),
        },
        body_open,
    ))
}

/// Parses `fn name(params) ... { body }` starting at the `fn` keyword,
/// building the binding table from params and `let` statements. Returns
/// the def (None for bodyless trait-method signatures) and the resume
/// index.
fn parse_fn(
    tokens: &[Token],
    kw: usize,
    aliases: &BTreeMap<String, TypeApprox>,
) -> (Option<FnDef>, usize) {
    let name_tok = match tokens.get(kw.saturating_add(1)) {
        Some(t) if t.kind == TokenKind::Ident => t.clone(),
        _ => return (None, kw.saturating_add(1)),
    };
    let line = tokens.get(kw).map(|t| t.line).unwrap_or(0);
    let j = skip_angles(tokens, kw.saturating_add(2));
    if !tokens.get(j).is_some_and(|t| is_punct(t, "(")) {
        return (None, j);
    }
    let params_end = skip_group(tokens, j);
    let mut bindings = BTreeMap::new();
    parse_params(
        tokens
            .get(j.saturating_add(1)..params_end.saturating_sub(1))
            .unwrap_or(&[]),
        aliases,
        &mut bindings,
    );
    // Find the body `{` (skipping the return type and where clause) or a
    // terminating `;` (trait method signature).
    let mut k = params_end;
    loop {
        match tokens.get(k) {
            None => return (None, k),
            Some(t) if is_punct(t, "{") => break,
            Some(t) if is_punct(t, ";") => return (None, k.saturating_add(1)),
            Some(t) if is_punct(t, "(") || is_punct(t, "[") => k = skip_group(tokens, k),
            Some(t) if is_punct(t, "<") => k = skip_angles(tokens, k).max(k.saturating_add(1)),
            Some(_) => k = k.saturating_add(1),
        }
    }
    let body_open = k;
    let body_end = skip_group(tokens, body_open);
    collect_lets(
        tokens,
        body_open.saturating_add(1),
        body_end,
        aliases,
        &mut bindings,
    );
    (
        Some(FnDef {
            name: name_tok.text,
            line,
            body: (body_open, body_end),
            bindings,
        }),
        body_end,
    )
}

/// Parses a parameter list (the tokens between the parens) into bindings.
fn parse_params(
    params: &[Token],
    aliases: &BTreeMap<String, TypeApprox>,
    out: &mut BTreeMap<String, TypeApprox>,
) {
    // Split at commas at depth 0 (angle and bracket balanced).
    let mut start = 0usize;
    let mut depth = 0i32;
    let mut angle = 0i32;
    let mut i = 0usize;
    loop {
        let at_end = i >= params.len();
        let split = at_end
            || (params.get(i).is_some_and(|t| {
                t.kind == TokenKind::Punct && t.text == "," && depth == 0 && angle <= 0
            }));
        if split {
            let param = params.get(start..i).unwrap_or(&[]);
            // `[mut] name : TYPE` — self receivers and patterns are skipped.
            let mut p = 0usize;
            if param.get(p).is_some_and(|t| is_ident(t, "mut")) {
                p += 1;
            }
            if let (Some(name), Some(colon)) = (param.get(p), param.get(p.saturating_add(1))) {
                if name.kind == TokenKind::Ident
                    && name.text != "self"
                    && is_punct(colon, ":")
                    && !param
                        .get(p.saturating_add(2))
                        .is_some_and(|t| is_punct(t, ":"))
                {
                    let ty =
                        classify_type(param.get(p.saturating_add(2)..).unwrap_or(&[]), aliases);
                    out.insert(name.text.clone(), ty);
                }
            }
            if at_end {
                break;
            }
            start = i.saturating_add(1);
        }
        if let Some(t) = params.get(i) {
            if t.kind == TokenKind::Punct {
                match t.text.as_str() {
                    "(" | "[" | "{" => depth += 1,
                    ")" | "]" | "}" => depth -= 1,
                    "<" => angle += 1,
                    ">" => angle -= 1,
                    _ => {}
                }
            }
        }
        i = i.saturating_add(1);
    }
}

/// Scans a body token range for `let [mut] name [: TYPE] = EXPR`
/// statements and records their approximated types.
fn collect_lets(
    tokens: &[Token],
    start: usize,
    end: usize,
    aliases: &BTreeMap<String, TypeApprox>,
    out: &mut BTreeMap<String, TypeApprox>,
) {
    let mut i = start;
    while i < end {
        let t = match tokens.get(i) {
            Some(t) => t,
            None => break,
        };
        if !is_ident(t, "let") {
            i = i.saturating_add(1);
            continue;
        }
        let mut j = i.saturating_add(1);
        if tokens.get(j).is_some_and(|t| is_ident(t, "mut")) {
            j = j.saturating_add(1);
        }
        let name = match tokens.get(j) {
            Some(n) if n.kind == TokenKind::Ident => n.text.clone(),
            _ => {
                i = i.saturating_add(1);
                continue;
            }
        };
        // `let Some(x)` / `let (a, b)` destructuring: the next token after
        // the name being `(`/`{`/`::` means `name` was a pattern head.
        if tokens
            .get(j.saturating_add(1))
            .is_some_and(|t| is_punct(t, "(") || is_punct(t, "{"))
        {
            i = j.saturating_add(1);
            continue;
        }
        let mut declared: Option<TypeApprox> = None;
        let mut k = j.saturating_add(1);
        if tokens.get(k).is_some_and(|t| is_punct(t, ":"))
            && !tokens
                .get(k.saturating_add(1))
                .is_some_and(|t| is_punct(t, ":"))
        {
            // Declared type up to the `=` or `;` at depth 0.
            let ty_start = k.saturating_add(1);
            let mut m = ty_start;
            let mut depth = 0i32;
            let mut angle = 0i32;
            while m < end {
                let u = match tokens.get(m) {
                    Some(u) => u,
                    None => break,
                };
                if u.kind == TokenKind::Punct {
                    match u.text.as_str() {
                        "(" | "[" | "{" => depth += 1,
                        ")" | "]" | "}" => depth -= 1,
                        "<" => angle += 1,
                        ">" => angle -= 1,
                        "=" | ";" if depth == 0 && angle <= 0 => break,
                        _ => {}
                    }
                }
                m = m.saturating_add(1);
            }
            declared = Some(classify_type(
                tokens.get(ty_start..m).unwrap_or(&[]),
                aliases,
            ));
            k = m;
        }
        let ty = match declared {
            Some(ty) if ty != TypeApprox::Unknown => ty,
            _ => {
                if tokens.get(k).is_some_and(|t| is_punct(t, "=")) {
                    // Initializer up to the statement `;` at depth 0.
                    let ex_start = k.saturating_add(1);
                    let mut m = ex_start;
                    let mut depth = 0i32;
                    while m < end {
                        let u = match tokens.get(m) {
                            Some(u) => u,
                            None => break,
                        };
                        if u.kind == TokenKind::Punct {
                            match u.text.as_str() {
                                "(" | "[" | "{" => depth += 1,
                                ")" | "]" | "}" => depth -= 1,
                                ";" if depth == 0 => break,
                                _ => {}
                            }
                        }
                        m = m.saturating_add(1);
                    }
                    classify_expr(tokens.get(ex_start..m).unwrap_or(&[]), aliases, None)
                } else {
                    TypeApprox::Unknown
                }
            }
        };
        out.insert(name, ty);
        i = k.saturating_add(1);
    }
}

/// Re-resolves `let` bindings whose initializers read `self.` fields, once
/// the workspace field table exists. Called as a second pass so field
/// lookups see every audited crate.
pub fn refine_bindings(tokens: &[Token], hir: &mut FileHir, fields: &FieldTable) {
    let aliases = BTreeMap::new();
    for f in hir.fns.iter_mut() {
        let (start, end) = f.body;
        let mut i = start;
        while i < end {
            let t = match tokens.get(i) {
                Some(t) => t,
                None => break,
            };
            if is_ident(t, "let") {
                let mut j = i.saturating_add(1);
                if tokens.get(j).is_some_and(|t| is_ident(t, "mut")) {
                    j = j.saturating_add(1);
                }
                if let Some(name) = tokens.get(j).filter(|t| t.kind == TokenKind::Ident) {
                    if f.bindings.get(&name.text) == Some(&TypeApprox::Unknown)
                        && tokens
                            .get(j.saturating_add(1))
                            .is_some_and(|t| is_punct(t, "="))
                    {
                        let ex_start = j.saturating_add(2);
                        let mut m = ex_start;
                        let mut depth = 0i32;
                        while m < end {
                            let u = match tokens.get(m) {
                                Some(u) => u,
                                None => break,
                            };
                            if u.kind == TokenKind::Punct {
                                match u.text.as_str() {
                                    "(" | "[" | "{" => depth += 1,
                                    ")" | "]" | "}" => depth -= 1,
                                    ";" if depth == 0 => break,
                                    _ => {}
                                }
                            }
                            m = m.saturating_add(1);
                        }
                        let ty = classify_expr(
                            tokens.get(ex_start..m).unwrap_or(&[]),
                            &aliases,
                            Some(fields),
                        );
                        if ty != TypeApprox::Unknown {
                            f.bindings.insert(name.text.clone(), ty);
                        }
                    }
                }
            }
            i = i.saturating_add(1);
        }
    }
}

// ---- receiver resolution --------------------------------------------------

/// Approximates the type of the receiver of a method call whose `.` sits at
/// token index `dot` (`RECV . method (...)`). Resolution order: float
/// literals, `self.field` lookups, the enclosing function's binding table,
/// then the workspace field table; anything else is `Unknown`.
pub fn receiver_approx(
    tokens: &[Token],
    dot: usize,
    hir: &FileHir,
    fields: &FieldTable,
) -> TypeApprox {
    let recv = dot.checked_sub(1).and_then(|i| tokens.get(i));
    let t = match recv {
        Some(t) => t,
        None => return TypeApprox::Unknown,
    };
    match t.kind {
        TokenKind::Literal if t.text.chars().next().is_some_and(|c| c.is_ascii_digit()) => {
            if is_float_literal(&t.text) {
                TypeApprox::Float
            } else {
                // A non-float numeric literal: known non-float.
                TypeApprox::Named("{integer}".to_string())
            }
        }
        TokenKind::Ident => {
            let name = &t.text;
            // Field access: `something . name . method` — the token before
            // `name` is a `.`.
            let before = dot.checked_sub(2).and_then(|i| tokens.get(i));
            if before.is_some_and(|b| is_punct(b, ".")) {
                return fields.lookup(name);
            }
            if let Some(f) = hir.enclosing_fn(dot) {
                if let Some(ty) = f.bindings.get(name) {
                    if *ty != TypeApprox::Unknown {
                        return ty.clone();
                    }
                }
            }
            fields.lookup(name)
        }
        _ => TypeApprox::Unknown,
    }
}
