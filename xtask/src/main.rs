//! `cargo xtask` — workspace automation. The only subcommand today is
//! `lint`, the determinism audit (see lib.rs for the rules).
//!
//! `lint` prints human-readable findings by default; `lint --format json`
//! emits one machine-readable document for CI (schema below), which the
//! workflow uploads as an artifact and feeds through a GitHub problem
//! matcher for inline annotations:
//!
//! ```json
//! {
//!   "version": 1,
//!   "clean": false,
//!   "findings": [
//!     {
//!       "rule": "unordered-iter",
//!       "path": "crates/core/src/foo.rs",
//!       "line": 42,
//!       "message": "...",
//!       "snippet": "    for id in self.live.keys() {",
//!       "allow_candidate": "// lint: allow(unordered-iter) — <reason>"
//!     }
//!   ]
//! }
//! ```
//!
//! The schema is stable: fields are only ever added, and `version` bumps if
//! a field's meaning changes. `allow_candidate` is `null` for rules with no
//! escape hatch (`unsafe-code`, `missing-forbid`) and for the meta-rules.

#![forbid(unsafe_code)]
#![deny(rust_2018_idioms)]

use std::path::PathBuf;
use std::process::ExitCode;

fn repo_root() -> PathBuf {
    // xtask lives at <root>/xtask, so the workspace root is one up from
    // this crate's manifest.
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .expect("xtask has a parent directory")
        .to_path_buf()
}

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1);
    match args.next().as_deref() {
        Some("lint") => {
            let mut format = Format::Human;
            let rest: Vec<String> = args.collect();
            let mut i = 0usize;
            while let Some(a) = rest.get(i) {
                match a.as_str() {
                    "--format" => {
                        let val = rest.get(i.saturating_add(1)).map(String::as_str);
                        match val {
                            Some("human") => format = Format::Human,
                            Some("json") => format = Format::Json,
                            _ => return usage("lint --format takes `human` or `json`"),
                        }
                        i = i.saturating_add(2);
                    }
                    other => return usage(&format!("unknown lint flag `{other}`")),
                }
            }
            lint(format)
        }
        Some(other) => usage(&format!("unknown xtask subcommand `{other}`")),
        None => usage("missing subcommand"),
    }
}

fn usage(msg: &str) -> ExitCode {
    eprintln!("{msg}");
    eprintln!("usage: cargo xtask lint [--format human|json]");
    ExitCode::from(2)
}

#[derive(Clone, Copy, PartialEq, Eq)]
enum Format {
    Human,
    Json,
}

fn lint(format: Format) -> ExitCode {
    let root = repo_root();
    let findings = xtask::run_lint(&root);
    match format {
        Format::Human => {
            if findings.is_empty() {
                println!("xtask lint: determinism audit clean");
                return ExitCode::SUCCESS;
            }
            for f in &findings {
                println!("{f}");
            }
            println!(
                "xtask lint: {} violation{} of the byte-identical-schedule contract (DESIGN.md §8)",
                findings.len(),
                if findings.len() == 1 { "" } else { "s" }
            );
            ExitCode::FAILURE
        }
        Format::Json => {
            println!("{}", xtask::render_json(&root, &findings));
            if findings.is_empty() {
                ExitCode::SUCCESS
            } else {
                ExitCode::FAILURE
            }
        }
    }
}
