//! `cargo xtask` — workspace automation. The only subcommand today is
//! `lint`, the determinism audit (see lib.rs for the rules).

#![forbid(unsafe_code)]
#![deny(rust_2018_idioms)]

use std::path::PathBuf;
use std::process::ExitCode;

fn repo_root() -> PathBuf {
    // xtask lives at <root>/xtask, so the workspace root is one up from
    // this crate's manifest.
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .expect("xtask has a parent directory")
        .to_path_buf()
}

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1);
    match args.next().as_deref() {
        Some("lint") => lint(),
        Some(other) => {
            eprintln!("unknown xtask subcommand `{other}`");
            eprintln!("usage: cargo xtask lint");
            ExitCode::from(2)
        }
        None => {
            eprintln!("usage: cargo xtask lint");
            ExitCode::from(2)
        }
    }
}

fn lint() -> ExitCode {
    let root = repo_root();
    let findings = xtask::run_lint(&root);
    if findings.is_empty() {
        println!("xtask lint: determinism audit clean");
        return ExitCode::SUCCESS;
    }
    for f in &findings {
        println!("{f}");
    }
    println!(
        "xtask lint: {} violation{} of the byte-identical-schedule contract (DESIGN.md §8)",
        findings.len(),
        if findings.len() == 1 { "" } else { "s" }
    );
    ExitCode::FAILURE
}
