//! A minimal Rust lexer for the determinism audit.
//!
//! Produces a flat token stream (identifiers, punctuation, literals) with
//! line numbers, plus the text of every `//` comment keyed by line so rule
//! passes can find lint allow-annotations. It understands just
//! enough of the language to never misread comments, strings (including
//! raw strings), char literals, and lifetimes — the cases where a naive
//! `grep` would produce false positives.

/// One lexed token.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    /// What the token is.
    pub kind: TokenKind,
    /// Source text of the token. Literals keep their raw source — numeric
    /// literals their digits (so a rule can tell `1.0` from `1`), string
    /// literals their quoted text (so a rule can judge an `expect` message)
    /// — which can never collide with an identifier: the first character is
    /// a digit or a quote/prefix the ident arm never produces.
    pub text: String,
    /// 1-based source line (the *first* line for multi-line literals).
    pub line: u32,
}

/// Token classification.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokenKind {
    /// Identifier or keyword.
    Ident,
    /// Single punctuation character.
    Punct,
    /// String / char / byte / numeric literal (raw source text kept).
    Literal,
    /// Lifetime (`'a`, `'static`) or loop label.
    Lifetime,
}

/// Lexed file: the code token stream and the per-line comment texts.
#[derive(Debug, Default)]
pub struct Lexed {
    /// Code tokens in source order.
    pub tokens: Vec<Token>,
    /// `(line, text)` of every `//` comment, in source order. Block comments
    /// are recorded under their first line.
    pub comments: Vec<(u32, String)>,
}

/// Lexes `src`. Never fails: unterminated constructs swallow the rest of
/// the file, which is the behaviour that keeps every later pass safe.
pub fn lex(src: &str) -> Lexed {
    let b = src.as_bytes();
    let mut out = Lexed::default();
    let mut i = 0usize;
    let mut line = 1u32;
    while i < b.len() {
        let c = b[i];
        match c {
            b'\n' => {
                line += 1;
                i += 1;
            }
            c if c.is_ascii_whitespace() => i += 1,
            b'/' if b.get(i + 1) == Some(&b'/') => {
                let start = i;
                while i < b.len() && b[i] != b'\n' {
                    i += 1;
                }
                out.comments.push((
                    line,
                    src[start..i].trim_start_matches('/').trim().to_string(),
                ));
            }
            b'/' if b.get(i + 1) == Some(&b'*') => {
                let start_line = line;
                let start = i;
                i += 2;
                let mut depth = 1u32;
                while i < b.len() && depth > 0 {
                    if b[i] == b'\n' {
                        line += 1;
                        i += 1;
                    } else if b[i] == b'/' && b.get(i + 1) == Some(&b'*') {
                        depth += 1;
                        i += 2;
                    } else if b[i] == b'*' && b.get(i + 1) == Some(&b'/') {
                        depth -= 1;
                        i += 2;
                    } else {
                        i += 1;
                    }
                }
                out.comments
                    .push((start_line, src[start..i.min(b.len())].to_string()));
            }
            b'"' => {
                let (start, start_line) = (i, line);
                i = skip_string(b, i + 1, &mut line);
                out.tokens.push(tok(
                    TokenKind::Literal,
                    &src[start..i.min(b.len())],
                    start_line,
                ));
            }
            b'r' | b'b' if is_raw_string_start(b, i) => {
                let (start, start_line) = (i, line);
                i = skip_raw_string(b, i, &mut line);
                out.tokens.push(tok(
                    TokenKind::Literal,
                    &src[start..i.min(b.len())],
                    start_line,
                ));
            }
            b'b' if b.get(i + 1) == Some(&b'"') => {
                let (start, start_line) = (i, line);
                i = skip_string(b, i + 2, &mut line);
                out.tokens.push(tok(
                    TokenKind::Literal,
                    &src[start..i.min(b.len())],
                    start_line,
                ));
            }
            b'\'' => {
                // Char literal or lifetime. `'\x'`-style escapes and `'c'`
                // are literals; anything else is a lifetime/label.
                if b.get(i + 1) == Some(&b'\\') {
                    let start = i;
                    i += 2; // skip the backslash and the escaped char
                    while i < b.len() && b[i] != b'\'' {
                        i += 1;
                    }
                    i += 1;
                    out.tokens
                        .push(tok(TokenKind::Literal, &src[start..i.min(b.len())], line));
                } else if char_lit_len(src, i) > 0 {
                    let len = char_lit_len(src, i);
                    out.tokens
                        .push(tok(TokenKind::Literal, &src[i..i + len], line));
                    i += len;
                } else {
                    let start = i;
                    i += 1;
                    while i < b.len() && (b[i] == b'_' || b[i].is_ascii_alphanumeric()) {
                        i += 1;
                    }
                    out.tokens
                        .push(tok(TokenKind::Lifetime, &src[start..i], line));
                }
            }
            c if c == b'_' || c.is_ascii_alphabetic() => {
                let start = i;
                while i < b.len() && (b[i] == b'_' || b[i].is_ascii_alphanumeric()) {
                    i += 1;
                }
                out.tokens.push(tok(TokenKind::Ident, &src[start..i], line));
            }
            c if c.is_ascii_digit() => {
                // Numbers: digits, underscores, type suffixes, hex/exponent
                // letters, and a dot only when a digit follows it (so the
                // `.` in `1.0.max(2.0)` stays a method-call dot).
                let start = i;
                i += 1;
                while i < b.len() {
                    let d = b[i];
                    if d == b'_' || d.is_ascii_alphanumeric() {
                        i += 1;
                    } else if d == b'.' && b.get(i + 1).is_some_and(|n| n.is_ascii_digit()) {
                        i += 2;
                    } else {
                        break;
                    }
                }
                out.tokens
                    .push(tok(TokenKind::Literal, &src[start..i], line));
            }
            _ => {
                // Consume one whole char: non-ASCII bytes (e.g. `▁` in a doc
                // comment that the comment arms didn't catch, or in idents)
                // must not be split mid-codepoint.
                let ch_len = src[i..].chars().next().map_or(1, char::len_utf8);
                out.tokens
                    .push(tok(TokenKind::Punct, &src[i..i + ch_len], line));
                i += ch_len;
            }
        }
    }
    out
}

fn tok(kind: TokenKind, text: &str, line: u32) -> Token {
    Token {
        kind,
        text: text.to_string(),
        line,
    }
}

/// Length in bytes of an unescaped char literal (`'x'`, including a
/// multi-byte `x` like `'▁'`) starting at the `'` at `i`, or 0 if the
/// construct is not one — `''` (empty, which Rust rejects anyway) and
/// `'ident` lifetimes both return 0.
fn char_lit_len(src: &str, i: usize) -> usize {
    let rest = &src[i + 1..];
    let c = match rest.chars().next() {
        Some(c) if c != '\'' && c != '\n' => c,
        _ => return 0,
    };
    let len = c.len_utf8();
    if rest.as_bytes().get(len) == Some(&b'\'') {
        len + 2
    } else {
        0
    }
}

/// Advances past a (non-raw) string body starting just after the opening
/// quote; returns the index after the closing quote.
fn skip_string(b: &[u8], mut i: usize, line: &mut u32) -> usize {
    while i < b.len() {
        match b[i] {
            b'\\' => i += 2,
            b'"' => return i + 1,
            b'\n' => {
                *line += 1;
                i += 1;
            }
            _ => i += 1,
        }
    }
    i
}

/// Whether `r"`, `r#"`, `br"`, or `br#"` starts at `i`.
fn is_raw_string_start(b: &[u8], i: usize) -> bool {
    let mut j = i;
    if b[j] == b'b' {
        j += 1;
    }
    if b.get(j) != Some(&b'r') {
        return false;
    }
    j += 1;
    while b.get(j) == Some(&b'#') {
        j += 1;
    }
    b.get(j) == Some(&b'"')
}

/// Advances past a raw string starting at its `r`/`br`; returns the index
/// after the closing delimiter.
fn skip_raw_string(b: &[u8], mut i: usize, line: &mut u32) -> usize {
    if b[i] == b'b' {
        i += 1;
    }
    i += 1; // the `r`
    let mut hashes = 0usize;
    while b.get(i) == Some(&b'#') {
        hashes += 1;
        i += 1;
    }
    i += 1; // the opening quote
    while i < b.len() {
        if b[i] == b'\n' {
            *line += 1;
            i += 1;
        } else if b[i] == b'"' {
            let mut j = i + 1;
            let mut h = 0usize;
            while h < hashes && b.get(j) == Some(&b'#') {
                h += 1;
                j += 1;
            }
            if h == hashes {
                return j;
            }
            i += 1;
        } else {
            i += 1;
        }
    }
    i
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .tokens
            .into_iter()
            .filter(|t| t.kind == TokenKind::Ident)
            .map(|t| t.text)
            .collect()
    }

    #[test]
    fn comments_and_strings_hide_their_contents() {
        let src = r##"
// HashMap in a comment
/* unsafe in a block
   spanning lines */
let s = "Instant::now() in a string";
let r = r#"SystemTime "raw" HashMap"#;
let c = 'x';
let l: &'static str = s;
"##;
        let ids = idents(src);
        assert!(!ids.iter().any(|t| t == "HashMap"));
        assert!(!ids.iter().any(|t| t == "unsafe"));
        assert!(!ids.iter().any(|t| t == "Instant"));
        assert!(!ids.iter().any(|t| t == "SystemTime"));
        assert!(ids.contains(&"let".to_string()));
        let lexed = lex(src);
        assert!(lexed.comments[0].1.contains("HashMap in a comment"));
        assert!(
            lexed
                .tokens
                .iter()
                .any(|t| t.kind == TokenKind::Lifetime && t.text == "'static"),
            "lifetimes survive"
        );
    }

    #[test]
    fn float_method_chains_keep_their_dots() {
        let lexed = lex("let x = 1.0.max(2.5);");
        let dots = lexed
            .tokens
            .iter()
            .filter(|t| t.kind == TokenKind::Punct && t.text == ".")
            .count();
        assert_eq!(dots, 1, "the method-call dot must not be eaten: {lexed:?}");
    }

    #[test]
    fn line_numbers_track_every_construct() {
        let src = "let a = 1;\n/* two\nlines */\nlet b = HashMap::new();\n";
        let lexed = lex(src);
        let hm = lexed
            .tokens
            .iter()
            .find(|t| t.text == "HashMap")
            .expect("HashMap token");
        assert_eq!(hm.line, 4);
    }

    #[test]
    fn numeric_literals_keep_their_source_text() {
        let texts: Vec<String> = lex("let x = 1.5f64 + 2 + 0x1f + 1_000;")
            .tokens
            .into_iter()
            .filter(|t| t.kind == TokenKind::Literal)
            .map(|t| t.text)
            .collect();
        assert_eq!(texts, vec!["1.5f64", "2", "0x1f", "1_000"]);
    }

    #[test]
    fn brace_and_quote_char_literals_do_not_derail_balancing() {
        // A naive lexer reads `'{'` as a lifetime and then sees an
        // unbalanced brace; same for `'"'` opening a phantom string.
        let src = r#"fn f(c: char) -> bool { matches!(c, '{' | '}' | '"' | '(') } fn g() {}"#;
        let lexed = lex(src);
        let opens = lexed.tokens.iter().filter(|t| t.text == "{").count();
        let closes = lexed.tokens.iter().filter(|t| t.text == "}").count();
        assert_eq!(opens, 2, "{lexed:?}");
        assert_eq!(closes, 2, "{lexed:?}");
        assert!(lexed.tokens.iter().any(|t| t.text == "g"));
    }

    #[test]
    fn escaped_quote_char_literal_is_one_token() {
        let src = r"let q = '\''; let n = '\n'; done();";
        let lexed = lex(src);
        // The ident after both char literals must survive intact.
        assert!(idents(src).contains(&"done".to_string()));
        assert_eq!(
            lexed
                .tokens
                .iter()
                .filter(|t| t.kind == TokenKind::Literal)
                .count(),
            2,
            "{lexed:?}"
        );
    }

    #[test]
    fn multibyte_char_literal_is_a_literal_not_a_split_codepoint() {
        let lexed = lex("let sep = '▁'; let after = 1;");
        assert!(
            lexed
                .tokens
                .iter()
                .any(|t| t.kind == TokenKind::Literal && t.text == "'▁'"),
            "{lexed:?}"
        );
        assert!(lexed.tokens.iter().any(|t| t.text == "after"));
    }

    #[test]
    fn raw_strings_with_hashes_hide_quotes_and_hashes() {
        let src = r###"let a = r#"quote " inside"#; let b = r##"double "# inside"##; let c = br#"bytes"#; tail();"###;
        let ids = idents(src);
        assert!(ids.contains(&"tail".to_string()), "{ids:?}");
        assert!(!ids.iter().any(|t| t == "inside" || t == "bytes"));
    }

    #[test]
    fn nested_block_comments_terminate_where_rust_says() {
        let src = "/* outer /* inner */ still a comment */ fn visible() {}";
        let ids = idents(src);
        assert!(!ids.iter().any(|t| t == "still"), "{ids:?}");
        assert!(ids.contains(&"visible".to_string()), "{ids:?}");
    }

    #[test]
    fn multiline_strings_stamp_their_opening_line() {
        let src = "let s = \"line one\nline two\nline three\";\nlet after = 9;";
        let lexed = lex(src);
        let lit = lexed
            .tokens
            .iter()
            .find(|t| t.kind == TokenKind::Literal && t.text.starts_with('"'))
            .expect("string literal token");
        assert_eq!(lit.line, 1, "multi-line literal reports its first line");
        let after = lexed
            .tokens
            .iter()
            .find(|t| t.text == "after")
            .expect("after token");
        assert_eq!(after.line, 4, "lines inside the literal still count");
    }

    #[test]
    fn string_literals_keep_quoted_text_for_expect_judging() {
        let lexed = lex(r#"x.expect("peeked above");"#);
        assert!(
            lexed
                .tokens
                .iter()
                .any(|t| t.kind == TokenKind::Literal && t.text == "\"peeked above\""),
            "{lexed:?}"
        );
    }
}
