//! A minimal Rust lexer for the determinism audit.
//!
//! Produces a flat token stream (identifiers, punctuation, literals) with
//! line numbers, plus the text of every `//` comment keyed by line so rule
//! passes can find lint allow-annotations. It understands just
//! enough of the language to never misread comments, strings (including
//! raw strings), char literals, and lifetimes — the cases where a naive
//! `grep` would produce false positives.

/// One lexed token.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    /// What the token is.
    pub kind: TokenKind,
    /// Source text of the token (empty for literals, whose contents never
    /// matter to any rule).
    pub text: String,
    /// 1-based source line.
    pub line: u32,
}

/// Token classification.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokenKind {
    /// Identifier or keyword.
    Ident,
    /// Single punctuation character.
    Punct,
    /// String / char / byte / numeric literal (contents dropped).
    Literal,
    /// Lifetime (`'a`, `'static`) or loop label.
    Lifetime,
}

/// Lexed file: the code token stream and the per-line comment texts.
#[derive(Debug, Default)]
pub struct Lexed {
    /// Code tokens in source order.
    pub tokens: Vec<Token>,
    /// `(line, text)` of every `//` comment, in source order. Block comments
    /// are recorded under their first line.
    pub comments: Vec<(u32, String)>,
}

/// Lexes `src`. Never fails: unterminated constructs swallow the rest of
/// the file, which is the behaviour that keeps every later pass safe.
pub fn lex(src: &str) -> Lexed {
    let b = src.as_bytes();
    let mut out = Lexed::default();
    let mut i = 0usize;
    let mut line = 1u32;
    while i < b.len() {
        let c = b[i];
        match c {
            b'\n' => {
                line += 1;
                i += 1;
            }
            c if c.is_ascii_whitespace() => i += 1,
            b'/' if b.get(i + 1) == Some(&b'/') => {
                let start = i;
                while i < b.len() && b[i] != b'\n' {
                    i += 1;
                }
                out.comments.push((
                    line,
                    src[start..i].trim_start_matches('/').trim().to_string(),
                ));
            }
            b'/' if b.get(i + 1) == Some(&b'*') => {
                let start_line = line;
                let start = i;
                i += 2;
                let mut depth = 1u32;
                while i < b.len() && depth > 0 {
                    if b[i] == b'\n' {
                        line += 1;
                        i += 1;
                    } else if b[i] == b'/' && b.get(i + 1) == Some(&b'*') {
                        depth += 1;
                        i += 2;
                    } else if b[i] == b'*' && b.get(i + 1) == Some(&b'/') {
                        depth -= 1;
                        i += 2;
                    } else {
                        i += 1;
                    }
                }
                out.comments
                    .push((start_line, src[start..i.min(b.len())].to_string()));
            }
            b'"' => {
                i = skip_string(b, i + 1, &mut line);
                out.tokens.push(tok(TokenKind::Literal, "", line));
            }
            b'r' | b'b' if is_raw_string_start(b, i) => {
                i = skip_raw_string(b, i, &mut line);
                out.tokens.push(tok(TokenKind::Literal, "", line));
            }
            b'b' if b.get(i + 1) == Some(&b'"') => {
                i = skip_string(b, i + 2, &mut line);
                out.tokens.push(tok(TokenKind::Literal, "", line));
            }
            b'\'' => {
                // Char literal or lifetime. `'\x'`-style escapes and `'c'`
                // are literals; anything else is a lifetime/label.
                if b.get(i + 1) == Some(&b'\\') {
                    i += 2; // skip the backslash and the escaped char
                    while i < b.len() && b[i] != b'\'' {
                        i += 1;
                    }
                    i += 1;
                    out.tokens.push(tok(TokenKind::Literal, "", line));
                } else if b.get(i + 2) == Some(&b'\'') && b.get(i + 1) != Some(&b'\'') {
                    i += 3;
                    out.tokens.push(tok(TokenKind::Literal, "", line));
                } else {
                    let start = i;
                    i += 1;
                    while i < b.len() && (b[i] == b'_' || b[i].is_ascii_alphanumeric()) {
                        i += 1;
                    }
                    out.tokens
                        .push(tok(TokenKind::Lifetime, &src[start..i], line));
                }
            }
            c if c == b'_' || c.is_ascii_alphabetic() => {
                let start = i;
                while i < b.len() && (b[i] == b'_' || b[i].is_ascii_alphanumeric()) {
                    i += 1;
                }
                out.tokens.push(tok(TokenKind::Ident, &src[start..i], line));
            }
            c if c.is_ascii_digit() => {
                // Numbers: digits, underscores, type suffixes, hex/exponent
                // letters, and a dot only when a digit follows it (so the
                // `.` in `1.0.max(2.0)` stays a method-call dot).
                i += 1;
                while i < b.len() {
                    let d = b[i];
                    if d == b'_' || d.is_ascii_alphanumeric() {
                        i += 1;
                    } else if d == b'.' && b.get(i + 1).is_some_and(|n| n.is_ascii_digit()) {
                        i += 2;
                    } else {
                        break;
                    }
                }
                out.tokens.push(tok(TokenKind::Literal, "", line));
            }
            _ => {
                // Consume one whole char: non-ASCII bytes (e.g. `▁` in a doc
                // comment that the comment arms didn't catch, or in idents)
                // must not be split mid-codepoint.
                let ch_len = src[i..].chars().next().map_or(1, char::len_utf8);
                out.tokens
                    .push(tok(TokenKind::Punct, &src[i..i + ch_len], line));
                i += ch_len;
            }
        }
    }
    out
}

fn tok(kind: TokenKind, text: &str, line: u32) -> Token {
    Token {
        kind,
        text: text.to_string(),
        line,
    }
}

/// Advances past a (non-raw) string body starting just after the opening
/// quote; returns the index after the closing quote.
fn skip_string(b: &[u8], mut i: usize, line: &mut u32) -> usize {
    while i < b.len() {
        match b[i] {
            b'\\' => i += 2,
            b'"' => return i + 1,
            b'\n' => {
                *line += 1;
                i += 1;
            }
            _ => i += 1,
        }
    }
    i
}

/// Whether `r"`, `r#"`, `br"`, or `br#"` starts at `i`.
fn is_raw_string_start(b: &[u8], i: usize) -> bool {
    let mut j = i;
    if b[j] == b'b' {
        j += 1;
    }
    if b.get(j) != Some(&b'r') {
        return false;
    }
    j += 1;
    while b.get(j) == Some(&b'#') {
        j += 1;
    }
    b.get(j) == Some(&b'"')
}

/// Advances past a raw string starting at its `r`/`br`; returns the index
/// after the closing delimiter.
fn skip_raw_string(b: &[u8], mut i: usize, line: &mut u32) -> usize {
    if b[i] == b'b' {
        i += 1;
    }
    i += 1; // the `r`
    let mut hashes = 0usize;
    while b.get(i) == Some(&b'#') {
        hashes += 1;
        i += 1;
    }
    i += 1; // the opening quote
    while i < b.len() {
        if b[i] == b'\n' {
            *line += 1;
            i += 1;
        } else if b[i] == b'"' {
            let mut j = i + 1;
            let mut h = 0usize;
            while h < hashes && b.get(j) == Some(&b'#') {
                h += 1;
                j += 1;
            }
            if h == hashes {
                return j;
            }
            i += 1;
        } else {
            i += 1;
        }
    }
    i
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .tokens
            .into_iter()
            .filter(|t| t.kind == TokenKind::Ident)
            .map(|t| t.text)
            .collect()
    }

    #[test]
    fn comments_and_strings_hide_their_contents() {
        let src = r##"
// HashMap in a comment
/* unsafe in a block
   spanning lines */
let s = "Instant::now() in a string";
let r = r#"SystemTime "raw" HashMap"#;
let c = 'x';
let l: &'static str = s;
"##;
        let ids = idents(src);
        assert!(!ids.iter().any(|t| t == "HashMap"));
        assert!(!ids.iter().any(|t| t == "unsafe"));
        assert!(!ids.iter().any(|t| t == "Instant"));
        assert!(!ids.iter().any(|t| t == "SystemTime"));
        assert!(ids.contains(&"let".to_string()));
        let lexed = lex(src);
        assert!(lexed.comments[0].1.contains("HashMap in a comment"));
        assert!(
            lexed
                .tokens
                .iter()
                .any(|t| t.kind == TokenKind::Lifetime && t.text == "'static"),
            "lifetimes survive"
        );
    }

    #[test]
    fn float_method_chains_keep_their_dots() {
        let lexed = lex("let x = 1.0.max(2.5);");
        let dots = lexed
            .tokens
            .iter()
            .filter(|t| t.kind == TokenKind::Punct && t.text == ".")
            .count();
        assert_eq!(dots, 1, "the method-call dot must not be eaten: {lexed:?}");
    }

    #[test]
    fn line_numbers_track_every_construct() {
        let src = "let a = 1;\n/* two\nlines */\nlet b = HashMap::new();\n";
        let lexed = lex(src);
        let hm = lexed
            .tokens
            .iter()
            .find(|t| t.text == "HashMap")
            .expect("HashMap token");
        assert_eq!(hm.line, 4);
    }
}
