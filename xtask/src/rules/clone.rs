//! `clone-exhaustive`: a hand-written `impl Clone` must account for every
//! declared field of its struct.
//!
//! The serving sim's snapshot/fork (DESIGN.md §13) rests on
//! `ServingSim::clone` being a *structural deep copy*: a field added to
//! the struct but not to the manual clone would fork simulations that
//! silently diverge from their donor. The manual impl uses an exhaustive
//! struct literal, so the *compiler* catches a forgotten field today — but
//! only because the impl happens to be written that way. This rule turns
//! the convention into a checked invariant: for every `impl Clone for X`
//! in an audited crate where `struct X` has named fields, each field name
//! must be mentioned inside the `fn clone` body. An impl that switches to
//! `..Default::default()` filling, or clones through a helper that skips a
//! field, fails the audit even though it compiles.
//!
//! Deliberately *not* required: that the mention is `self.field.clone()` —
//! `pool: None` is a legitimate way to handle a non-clonable worker pool,
//! and judging the expression is the human's job. Mention is the invariant
//! the machine can hold.

use std::collections::BTreeSet;

use crate::lexer::TokenKind;
use crate::rules::RuleCtx;
use crate::{Finding, Rule};

/// The pass.
pub fn clone_exhaustive(ctx: &RuleCtx<'_>, out: &mut Vec<Finding>) {
    for im in &ctx.hir.impls {
        if im.trait_name.as_deref() != Some("Clone") || ctx.hir.in_test(im.body.0) {
            continue;
        }
        let Some(def) = ctx.hir.structs.iter().find(|s| s.name == im.self_ty) else {
            // The struct lives in another file (or is foreign): out of
            // reach for the item scan, and no manual Clone in the audited
            // tree is written that way — the smoke tests keep this honest.
            continue;
        };
        if def.fields.is_empty() {
            continue;
        }
        // The `fn clone` inside this impl body.
        let Some(clone_fn) = ctx
            .hir
            .fns
            .iter()
            .find(|f| f.name == "clone" && im.body.0 <= f.body.0 && f.body.1 <= im.body.1)
        else {
            continue;
        };
        let (start, end) = clone_fn.body;
        let mentioned: BTreeSet<&str> = ctx
            .tokens
            .get(start..end)
            .unwrap_or(&[])
            .iter()
            .filter(|t| t.kind == TokenKind::Ident)
            .map(|t| t.text.as_str())
            .collect();
        let missing: Vec<&str> = def
            .fields
            .iter()
            .map(|f| f.name.as_str())
            .filter(|name| !mentioned.contains(name))
            .collect();
        if !missing.is_empty() {
            ctx.emit(
                out,
                clone_fn.line,
                Rule::CloneExhaustive,
                format!(
                    "manual `impl Clone for {}` never mentions declared field{} {} — \
                     a snapshot taken through this clone would silently drop state; \
                     clone the field{} or handle {} explicitly",
                    im.self_ty,
                    if missing.len() == 1 { "" } else { "s" },
                    missing.join(", "),
                    if missing.len() == 1 { "" } else { "s" },
                    if missing.len() == 1 { "it" } else { "them" },
                ),
            );
        }
    }
}
