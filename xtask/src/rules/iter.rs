//! `unordered-iter`, type-aware: iteration over a default-hasher container
//! in a deterministic crate.
//!
//! The PR 4 lexer pass tracked identifiers bound to hash containers *per
//! file*; this version asks the HIR instead, which buys three things the
//! lexer could not express:
//!
//! * **field resolution across the workspace** — `self.states.iter()`
//!   fires when any audited struct declares a field `states:
//!   HashMap<..>`, even if the declaration lives in another file;
//! * **collect-then-sort proof** — a chain that drains a hash container
//!   into a `Vec` which is then `sort*()`ed in the same function is
//!   order-insensitive by construction, so the two annotations PR 8-era
//!   code carried for exactly this pattern are no longer needed;
//! * **test exemption** — `#[cfg(test)]` code asserts over schedules, it
//!   does not produce them, so it is out of scope.
//!
//! Order-insensitive terminal folds (`sum`, `count`, `min`, `max`, `all`,
//! `any`) stay exempt as before, assuming pure closures — that assumption
//! is on the annotator if violated.

use crate::hir::{receiver_approx, skip_group, TypeApprox};
use crate::lexer::{Token, TokenKind};
use crate::rules::RuleCtx;
use crate::{Finding, Rule};

/// Methods that observe iteration order on a hash container.
const ITER_METHODS: [&str; 10] = [
    "iter",
    "iter_mut",
    "keys",
    "values",
    "values_mut",
    "into_iter",
    "into_keys",
    "into_values",
    "drain",
    "retain",
];

/// Iterator folds whose result cannot depend on visit order (assuming pure
/// closures, which is on the annotator if violated).
const ORDER_INSENSITIVE_SINKS: [&str; 6] = ["sum", "count", "min", "max", "all", "any"];

/// Sorting methods that canonicalize a collected `Vec`'s order.
const SORTS: [&str; 6] = [
    "sort",
    "sort_unstable",
    "sort_by",
    "sort_unstable_by",
    "sort_by_key",
    "sort_unstable_by_key",
];

fn is_ident(t: &Token, text: &str) -> bool {
    t.kind == TokenKind::Ident && t.text == text
}

fn is_punct(t: &Token, text: &str) -> bool {
    t.kind == TokenKind::Punct && t.text == text
}

/// Walks a method chain starting at the `(` of the first call. Returns
/// `(terminal method name, index past the chain)` — the terminal method is
/// the last `.m(...)` link, or `None` if the chain ends at the first call.
fn walk_chain(tokens: &[Token], first_open: usize) -> (Option<String>, usize) {
    let mut i = skip_group(tokens, first_open);
    let mut terminal = None;
    while tokens.get(i).is_some_and(|t| is_punct(t, ".")) {
        let (m, next) = walk_one_link(tokens, i);
        if m.is_none() {
            break;
        }
        terminal = m;
        i = next;
    }
    (terminal, i)
}

/// Whether any method in the chain after `first_open` is an
/// order-insensitive sink.
fn chain_reaches_sink(tokens: &[Token], first_open: usize) -> bool {
    let mut i = skip_group(tokens, first_open);
    while tokens.get(i).is_some_and(|t| is_punct(t, ".")) {
        let (m, next) = walk_one_link(tokens, i);
        match m {
            Some(name) if ORDER_INSENSITIVE_SINKS.contains(&name.as_str()) => return true,
            Some(_) => i = next,
            None => break,
        }
    }
    false
}

/// Advances past one `.m[::<..>](...)` chain link whose `.` is at `i`.
fn walk_one_link(tokens: &[Token], dot: usize) -> (Option<String>, usize) {
    let m = tokens
        .get(dot.saturating_add(1))
        .filter(|t| t.kind == TokenKind::Ident)
        .map(|t| t.text.clone());
    let mut j = dot.saturating_add(2);
    let colons = tokens.get(j).is_some_and(|t| is_punct(t, ":"))
        && tokens
            .get(j.saturating_add(1))
            .is_some_and(|t| is_punct(t, ":"));
    if colons {
        j = j.saturating_add(2);
        if tokens.get(j).is_some_and(|t| is_punct(t, "<")) {
            let mut depth = 0i32;
            while let Some(t) = tokens.get(j) {
                if is_punct(t, "<") {
                    depth += 1;
                } else if is_punct(t, ">") {
                    depth -= 1;
                    if depth == 0 {
                        j = j.saturating_add(1);
                        break;
                    }
                }
                j = j.saturating_add(1);
            }
        }
    }
    if tokens.get(j).is_some_and(|t| is_punct(t, "(")) {
        (m, skip_group(tokens, j))
    } else {
        (m, j)
    }
}

/// Whether the statement containing the call site binds a `let [mut] NAME`
/// that is later `sort*()`ed within the enclosing function — the
/// collect-then-sort proof of order insensitivity. `site` is the token
/// index of the iterating method; `chain_end` is the index past the chain.
fn collected_and_sorted(ctx: &RuleCtx<'_>, site: usize, chain_end: usize) -> bool {
    // Walk back to the statement start, looking for `let [mut] NAME`.
    let mut i = site;
    let mut name: Option<String> = None;
    while let Some(back) = i.checked_sub(1) {
        let t = match ctx.tokens.get(back) {
            Some(t) => t,
            None => break,
        };
        if t.kind == TokenKind::Punct && matches!(t.text.as_str(), ";" | "{" | "}") {
            break;
        }
        if is_ident(t, "let") {
            let mut j = back.saturating_add(1);
            if ctx.tokens.get(j).is_some_and(|t| is_ident(t, "mut")) {
                j = j.saturating_add(1);
            }
            name = ctx
                .tokens
                .get(j)
                .filter(|t| t.kind == TokenKind::Ident)
                .map(|t| t.text.clone());
            break;
        }
        i = back;
    }
    let name = match name {
        Some(n) => n,
        None => return false,
    };
    // Look forward in the enclosing function for `NAME . sort*`.
    let body_end = ctx.hir.enclosing_fn(site).map(|f| f.body.1).unwrap_or(0);
    let mut j = chain_end;
    while j < body_end {
        let hit = ctx.tokens.get(j).is_some_and(|t| is_ident(t, &name))
            && ctx
                .tokens
                .get(j.saturating_add(1))
                .is_some_and(|t| is_punct(t, "."))
            && ctx
                .tokens
                .get(j.saturating_add(2))
                .is_some_and(|t| t.kind == TokenKind::Ident && SORTS.contains(&&*t.text));
        if hit {
            return true;
        }
        j = j.saturating_add(1);
    }
    false
}

/// The pass.
pub fn unordered_iter(ctx: &RuleCtx<'_>, out: &mut Vec<Finding>) {
    let tokens = ctx.tokens;
    // Method-call iteration: `recv.iter()`, `self.field.drain(..)`, ...
    for (m_idx, m) in tokens.iter().enumerate() {
        if m.kind != TokenKind::Ident || !ITER_METHODS.contains(&&*m.text) {
            continue;
        }
        let dot = match m_idx.checked_sub(1) {
            Some(d) if tokens.get(d).is_some_and(|t| is_punct(t, ".")) => d,
            _ => continue,
        };
        let open = m_idx.saturating_add(1);
        if !tokens.get(open).is_some_and(|t| is_punct(t, "(")) {
            continue;
        }
        if ctx.hir.in_test(m_idx) {
            continue;
        }
        if receiver_approx(tokens, dot, ctx.hir, ctx.fields) != TypeApprox::Hash {
            continue;
        }
        if m.text != "retain" && chain_reaches_sink(tokens, open) {
            continue;
        }
        let (terminal, chain_end) = walk_chain(tokens, open);
        if terminal.as_deref() == Some("collect") && collected_and_sorted(ctx, m_idx, chain_end) {
            continue;
        }
        let recv = dot
            .checked_sub(1)
            .and_then(|i| tokens.get(i))
            .map(|t| t.text.clone())
            .unwrap_or_default();
        ctx.emit(
            out,
            m.line,
            Rule::UnorderedIter,
            format!(
                "`{}.{}()` iterates a default-hasher container in a deterministic crate; \
                 use a BTree container, sort before use, or annotate \
                 `// lint: allow(unordered-iter) — <reason>`",
                recv, m.text
            ),
        );
    }
    // `for`-loop iteration: `for x in &name { ... }` / `for x in &self.f {}`.
    for (f_idx, f) in tokens.iter().enumerate() {
        if !is_ident(f, "for") || ctx.hir.in_test(f_idx) {
            continue;
        }
        // Find the `in` of this loop header (within a small window).
        let mut j = f_idx.saturating_add(1);
        let mut in_at = None;
        while j < tokens.len() && j < f_idx.saturating_add(12) {
            match tokens.get(j) {
                Some(t) if is_ident(t, "in") => {
                    in_at = Some(j);
                    break;
                }
                Some(t) if is_punct(t, "{") => break,
                Some(_) => j = j.saturating_add(1),
                None => break,
            }
        }
        let in_at = match in_at {
            Some(i) => i,
            None => continue,
        };
        // The iterated expression: tokens up to the body `{`. A `(` means a
        // method call — the pass above owns that case.
        let mut k = in_at.saturating_add(1);
        let mut last_ident: Option<usize> = None;
        let mut has_call = false;
        while let Some(t) = tokens.get(k) {
            if is_punct(t, "{") {
                break;
            }
            if is_punct(t, "(") {
                has_call = true;
            }
            if t.kind == TokenKind::Ident {
                last_ident = Some(k);
            }
            k = k.saturating_add(1);
        }
        if has_call {
            continue;
        }
        let id_idx = match last_ident {
            Some(i) => i,
            None => continue,
        };
        // Resolve the iterated name like a method receiver would be: the
        // pseudo-dot position is just past the ident.
        let approx = receiver_approx(tokens, id_idx.saturating_add(1), ctx.hir, ctx.fields);
        if approx == TypeApprox::Hash {
            if let Some(id) = tokens.get(id_idx) {
                ctx.emit(
                    out,
                    id.line,
                    Rule::UnorderedIter,
                    format!(
                        "`for .. in {}` iterates a default-hasher container in a \
                         deterministic crate; use a BTree container or sort first",
                        id.text
                    ),
                );
            }
        }
    }
}
