//! The rule catalog, one module per rule family.
//!
//! Every pass receives a [`RuleCtx`] — the token stream, the file's HIR,
//! and the workspace-wide field table — and appends [`Finding`]s. Passes
//! never see annotations or the allowlist; the driver in `lib.rs` filters
//! findings against the escape hatches afterwards, so a rule module stays
//! a pure function of the code under audit.

pub mod clone;
pub mod effects;
pub mod floats;
pub mod iter;
pub mod panics;
pub mod tokens;

use crate::hir::{FieldTable, FileHir};
use crate::lexer::Token;
use crate::Finding;

/// Everything a rule pass may consult about one file.
pub struct RuleCtx<'a> {
    /// Repo-relative path, used in findings.
    pub path: &'a str,
    /// The file's code tokens.
    pub tokens: &'a [Token],
    /// The file's item-level HIR.
    pub hir: &'a FileHir,
    /// Struct fields resolved across the whole audited workspace.
    pub fields: &'a FieldTable,
}

impl RuleCtx<'_> {
    /// Pushes a finding at `line` for `rule`.
    pub fn emit(&self, out: &mut Vec<Finding>, line: u32, rule: crate::Rule, message: String) {
        out.push(Finding {
            path: self.path.to_string(),
            line,
            rule,
            message,
        });
    }
}
