//! The purely token-level rules, carried over from the PR 4 lexer pass:
//! `wall-clock`, `unsafe-code`, `serialized-hash`, and `missing-forbid`.
//! These need no type information — the banned construct is the token
//! itself — so they run straight over the stream.

use crate::hir::skip_group;
use crate::lexer::{Token, TokenKind};
use crate::rules::RuleCtx;
use crate::{Finding, Rule};

fn is_ident(t: &Token, text: &str) -> bool {
    t.kind == TokenKind::Ident && t.text == text
}

fn is_punct(t: &Token, text: &str) -> bool {
    t.kind == TokenKind::Punct && t.text == text
}

/// `wall-clock`: no `Instant` / `SystemTime` in deterministic crates.
pub fn wall_clock(ctx: &RuleCtx<'_>, out: &mut Vec<Finding>) {
    for t in ctx.tokens {
        if t.kind == TokenKind::Ident && (t.text == "Instant" || t.text == "SystemTime") {
            ctx.emit(
                out,
                t.line,
                Rule::WallClock,
                format!(
                    "`{}` is a wall-clock time source; simulation paths must use the \
                     virtual clock (llumnix_sim::SimTime / Clock) only",
                    t.text
                ),
            );
        }
    }
}

/// `unsafe-code`: no `unsafe` anywhere, with no escape hatch.
pub fn unsafe_code(ctx: &RuleCtx<'_>, out: &mut Vec<Finding>) {
    for t in ctx.tokens {
        if is_ident(t, "unsafe") {
            ctx.emit(
                out,
                t.line,
                Rule::UnsafeCode,
                "`unsafe` is banned workspace-wide (no escape hatch); \
                 the simulator needs none"
                    .to_string(),
            );
        }
    }
}

/// `serialized-hash`: no default-hasher container inside a
/// `#[derive(Serialize)]` type.
pub fn serialized_hash(ctx: &RuleCtx<'_>, out: &mut Vec<Finding>) {
    let tokens = ctx.tokens;
    let mut i = 0usize;
    while i < tokens.len() {
        // An outer attribute: `#[ ... ]`.
        let open = i.saturating_add(1);
        let is_attr = tokens.get(i).is_some_and(|t| is_punct(t, "#"))
            && tokens.get(open).is_some_and(|t| is_punct(t, "["));
        if !is_attr {
            i = i.saturating_add(1);
            continue;
        }
        let end = skip_group(tokens, open);
        let attr = tokens.get(open..end).unwrap_or(&[]);
        let is_serialize_derive = attr.iter().any(|t| is_ident(t, "derive"))
            && attr.iter().any(|t| is_ident(t, "Serialize"));
        i = end;
        if !is_serialize_derive {
            continue;
        }
        // Skip further attributes and doc noise up to the item keyword.
        let mut j = i;
        loop {
            let jo = j.saturating_add(1);
            match tokens.get(j) {
                None => return,
                Some(t) if is_punct(t, "#") && tokens.get(jo).is_some_and(|t| is_punct(t, "[")) => {
                    j = skip_group(tokens, jo);
                }
                Some(t)
                    if t.kind == TokenKind::Ident
                        && matches!(t.text.as_str(), "struct" | "enum") =>
                {
                    break;
                }
                Some(_) => j = jo,
            }
        }
        // The item body: `{ ... }` or `( ... )` (tuple struct) or `;`.
        let mut k = j.saturating_add(1);
        while tokens
            .get(k)
            .is_some_and(|t| !is_punct(t, "{") && !is_punct(t, "(") && !is_punct(t, ";"))
        {
            k = k.saturating_add(1);
        }
        if k >= tokens.len() || tokens.get(k).is_some_and(|t| is_punct(t, ";")) {
            i = k;
            continue;
        }
        let body_end = skip_group(tokens, k);
        for t in tokens.get(k..body_end).unwrap_or(&[]) {
            if t.kind == TokenKind::Ident && crate::hir::HASH_TYPES.contains(&&*t.text) {
                ctx.emit(
                    out,
                    t.line,
                    Rule::SerializedHash,
                    format!(
                        "`{}` inside a `#[derive(Serialize)]` type: serialized output \
                         would depend on hasher order; use a BTree container",
                        t.text
                    ),
                );
            }
        }
        i = body_end;
    }
}

/// `missing-forbid`: every crate root carries `#![forbid(unsafe_code)]`.
pub fn missing_forbid(ctx: &RuleCtx<'_>, out: &mut Vec<Finding>) {
    let tokens = ctx.tokens;
    for i in 0..tokens.len() {
        if tokens.get(i).is_some_and(|t| is_punct(t, "#"))
            && tokens
                .get(i.saturating_add(1))
                .is_some_and(|t| is_punct(t, "!"))
            && tokens
                .get(i.saturating_add(2))
                .is_some_and(|t| is_punct(t, "["))
            && tokens
                .get(i.saturating_add(3))
                .is_some_and(|t| is_ident(t, "forbid"))
            && tokens
                .get(i.saturating_add(5))
                .is_some_and(|t| is_ident(t, "unsafe_code"))
        {
            return;
        }
    }
    ctx.emit(
        out,
        1,
        Rule::MissingForbid,
        "crate root is missing `#![forbid(unsafe_code)]`".to_string(),
    );
}
