//! `float-ord`, type-aware: raw float ordering comparisons outside the
//! lossless `order_key` encoding.
//!
//! The PR 4 lexer pass fired on *every* `.partial_cmp()` / `.total_cmp()`
//! in a deterministic crate and carried a whole-file carve-out
//! (`BLESSED_FLOAT_FILE`) for `crates/core/src/index.rs`. This version
//! resolves the receiver's type through the HIR instead:
//!
//! * a receiver that is *known non-float* (a declared non-float binding, a
//!   resolved non-float struct field, an integer literal) is exempt —
//!   `SimTime::partial_cmp` is a total order and never needed an
//!   annotation;
//! * a receiver that is float-typed (float literal, `f64` field like
//!   `LoadReport::freeness`, declared `f64` binding) fires, which is what
//!   `sort_by` / `min_by` / `max_by` comparators funnel through;
//! * an unresolvable receiver still fires — `Unknown` never silences a
//!   rule — so coverage is a strict superset of the lexer pass minus the
//!   carve-outs it could not avoid;
//! * `#[cfg(test)]` code is exempt: assertions over float summaries don't
//!   produce schedule bytes.
//!
//! The carve-out file itself needs no exemption anymore: its `order_key`
//! encoding compares *bit patterns* (`to_bits`), not floats, so nothing in
//! it fires — exactly the per-site precision the whole-file escape was
//! standing in for.

use crate::hir::{receiver_approx, TypeApprox};
use crate::lexer::TokenKind;
use crate::rules::RuleCtx;
use crate::{Finding, Rule};

/// The pass.
pub fn float_ord(ctx: &RuleCtx<'_>, out: &mut Vec<Finding>) {
    let tokens = ctx.tokens;
    for (i, t) in tokens.iter().enumerate() {
        if t.kind != TokenKind::Ident || (t.text != "partial_cmp" && t.text != "total_cmp") {
            continue;
        }
        let dot = match i.checked_sub(1) {
            Some(d)
                if tokens
                    .get(d)
                    .is_some_and(|p| p.kind == TokenKind::Punct && p.text == ".") =>
            {
                d
            }
            _ => continue,
        };
        if ctx.hir.in_test(i) {
            continue;
        }
        let approx = receiver_approx(tokens, dot, ctx.hir, ctx.fields);
        if approx.known_non_float() {
            continue;
        }
        let certainty = if approx == TypeApprox::Float {
            "float-typed"
        } else {
            "possibly float-typed"
        };
        ctx.emit(
            out,
            t.line,
            Rule::FloatOrd,
            format!(
                "raw `.{}()` on a {} receiver; route the comparison through the \
                 lossless `order_key` encoding in crates/core/src/index.rs",
                t.text, certainty
            ),
        );
    }
}
