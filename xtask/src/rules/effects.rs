//! `effect-ownership`: cross-shard effects must flow through the
//! ledger-counting emit paths.
//!
//! The sharded core's teardown reconciliation (DESIGN.md §10) proves that
//! every effect a shard *emitted* was *applied* exactly once at a barrier
//! — but the proof is only as good as the ledger. The canonical paths
//! (`drain_window`'s emit helpers) tally each effect in an
//! [`EffectCounts`] ledger as they key and buffer it; an effect pushed
//! onto an outbox directly, or an `EffectKey` minted outside those paths,
//! would cross the barrier *uncounted* and the emitted/applied ledgers
//! would still balance — the one corruption the dynamic check cannot see.
//!
//! The rule, HIR-semantic rather than textual: inside a deterministic
//! crate, any function that
//!
//! * constructs an `EffectKey { .. }` literal, or
//! * pushes onto an `effects` buffer (`<outbox>.effects.push(..)`),
//!
//! must also call a ledger tally (`.count(..)`) somewhere in its body.
//! Functions that only *consume* effects (the barrier merge, appliers
//! pattern-matching on `Effect::..`) never construct keys or push buffers,
//! so they are untouched. Type/struct declarations and test code are
//! exempt.

use crate::lexer::{Token, TokenKind};
use crate::rules::RuleCtx;
use crate::{Finding, Rule};

fn is_ident(t: &Token, text: &str) -> bool {
    t.kind == TokenKind::Ident && t.text == text
}

fn is_punct(t: &Token, text: &str) -> bool {
    t.kind == TokenKind::Punct && t.text == text
}

/// Whether the function body containing token `i` calls `.count(`.
fn fn_tallies_ledger(ctx: &RuleCtx<'_>, i: usize) -> bool {
    let Some(f) = ctx.hir.enclosing_fn(i) else {
        return false;
    };
    let (start, end) = f.body;
    let body = ctx.tokens.get(start..end).unwrap_or(&[]);
    body.windows(3).any(|w| {
        matches!(w, [dot, m, open]
            if is_punct(dot, ".") && is_ident(m, "count") && is_punct(open, "("))
    })
}

/// The pass.
pub fn effect_ownership(ctx: &RuleCtx<'_>, out: &mut Vec<Finding>) {
    let tokens = ctx.tokens;
    for (i, t) in tokens.iter().enumerate() {
        if t.kind != TokenKind::Ident || ctx.hir.in_test(i) {
            continue;
        }
        // Site A: an `EffectKey { .. }` literal in expression position.
        if t.text == "EffectKey"
            && tokens
                .get(i.saturating_add(1))
                .is_some_and(|n| is_punct(n, "{"))
        {
            // Skip declarations, impl headers, and return-type positions:
            // `struct EffectKey {`, `impl .. for EffectKey {`,
            // `fn mint(..) -> EffectKey {`.
            let declared = i
                .checked_sub(1)
                .and_then(|p| tokens.get(p))
                .is_some_and(|p| {
                    (p.kind == TokenKind::Ident
                        && matches!(
                            p.text.as_str(),
                            "struct" | "enum" | "trait" | "for" | "impl"
                        ))
                        || is_punct(p, ">")
                });
            if declared || fn_tallies_ledger(ctx, i) {
                continue;
            }
            ctx.emit(
                out,
                t.line,
                Rule::EffectOwnership,
                "`EffectKey { .. }` constructed outside a ledger-counting emit path: \
                 the enclosing function never tallies `.count(..)`, so this effect \
                 would cross the shard barrier unreconciled; emit through the \
                 `drain_window` helpers instead"
                    .to_string(),
            );
            continue;
        }
        // Site B: a direct push onto an effects outbox:
        // `<recv>.effects.push(..)`.
        if t.text == "effects"
            && i.checked_sub(1)
                .and_then(|p| tokens.get(p))
                .is_some_and(|p| is_punct(p, "."))
            && tokens
                .get(i.saturating_add(1))
                .is_some_and(|n| is_punct(n, "."))
            && tokens
                .get(i.saturating_add(2))
                .is_some_and(|n| is_ident(n, "push"))
            && tokens
                .get(i.saturating_add(3))
                .is_some_and(|n| is_punct(n, "("))
            && !fn_tallies_ledger(ctx, i)
        {
            ctx.emit(
                out,
                t.line,
                Rule::EffectOwnership,
                "direct push onto an `effects` outbox in a function that never \
                 tallies the emission ledger (`.count(..)`): the emitted/applied \
                 reconciliation would not see this effect; route it through the \
                 `drain_window` emit helpers"
                    .to_string(),
            );
        }
    }
}
