//! `panic-path`: unjustified panic sites in deterministic code.
//!
//! A panic mid-window tears down a shard worker without ledger
//! reconciliation: the pool's `Drop` re-raises it, the run dies, and —
//! worse, under `catch_unwind`-style harnesses — a half-drained window
//! could leak into observable state. Panics in the deterministic crates
//! are therefore only acceptable when a human has written down why they
//! cannot fire. Three site classes, three justification channels:
//!
//! * `.expect("...")` — **justified by its message**: the message is the
//!   in-language proof obligation ("peeked above", "checked non-empty").
//!   Fires only when the message is empty or vacuous (fewer than three
//!   alphanumeric characters), the same bar an allow-annotation reason
//!   must clear.
//! * `.unwrap()` — carries no reason by construction; fires always.
//!   Rewrite as `expect` with a proof, or annotate
//!   `// lint: allow(panic-path) — <reason>`.
//! * computed slice indexing — `v[i + 1]`, `v[f(x)]` on a receiver the
//!   HIR resolves to `Vec`/slice/array. Plain `v[i]` loop indexing is
//!   exempt (the bound is almost always adjacent), as is the
//!   modulo-of-length idiom `v[x % v.len()]`, which is in range by
//!   construction. Receivers the HIR cannot type are skipped — this rule
//!   trades recall for a zero-noise floor, and the typed cases cover every
//!   indexed hot-path container in the audited crates.
//!
//! Test code and `debug_assert*!` arguments are out of scope: neither runs
//! inside a production window.

use crate::hir::{receiver_approx, skip_group, TypeApprox};
use crate::lexer::{Token, TokenKind};
use crate::rules::RuleCtx;
use crate::{Finding, Rule};

fn is_punct(t: &Token, text: &str) -> bool {
    t.kind == TokenKind::Punct && t.text == text
}

/// Alphanumeric characters in a string-literal token's raw text.
fn message_weight(text: &str) -> usize {
    text.chars().filter(|c| c.is_alphanumeric()).count()
}

/// Whether the `[...]` group opening at `open` is a computed index: it
/// contains arithmetic or a call, and is not the `% recv.len()` idiom.
fn computed_index(tokens: &[Token], open: usize) -> bool {
    let end = skip_group(tokens, open);
    let interior = tokens
        .get(open.saturating_add(1)..end.saturating_sub(1))
        .unwrap_or(&[]);
    let mut has_arith = false;
    let mut has_call = false;
    let mut has_mod_len = false;
    for (k, t) in interior.iter().enumerate() {
        if t.kind == TokenKind::Punct {
            match t.text.as_str() {
                "+" | "-" | "*" | "/" => has_arith = true,
                "%" => {
                    has_arith = true;
                    // `% something.len()` bounds the index by construction.
                    let len_follows = interior
                        .iter()
                        .skip(k)
                        .take(8)
                        .any(|u| u.kind == TokenKind::Ident && u.text == "len");
                    if len_follows {
                        has_mod_len = true;
                    }
                }
                "(" => has_call = true,
                _ => {}
            }
        }
    }
    (has_arith || has_call) && !has_mod_len
}

/// The pass.
pub fn panic_path(ctx: &RuleCtx<'_>, out: &mut Vec<Finding>) {
    let tokens = ctx.tokens;
    for (i, t) in tokens.iter().enumerate() {
        if ctx.hir.in_test(i) || ctx.hir.in_debug_assert(i) {
            continue;
        }
        // `.unwrap()` / `.expect(..)` method calls.
        if t.kind == TokenKind::Ident
            && i.checked_sub(1)
                .and_then(|p| tokens.get(p))
                .is_some_and(|p| is_punct(p, "."))
            && tokens
                .get(i.saturating_add(1))
                .is_some_and(|n| is_punct(n, "("))
        {
            if t.text == "unwrap" {
                ctx.emit(
                    out,
                    t.line,
                    Rule::PanicPath,
                    "`.unwrap()` in deterministic code carries no justification; a \
                     panic mid-window tears down a shard worker without ledger \
                     reconciliation — use `.expect(\"<why this cannot fail>\")` or \
                     annotate `// lint: allow(panic-path) — <reason>`"
                        .to_string(),
                );
            } else if t.text == "expect" {
                let arg = tokens.get(i.saturating_add(2));
                let vacuous = match arg {
                    // A string literal: judge the message.
                    Some(a)
                        if a.kind == TokenKind::Literal
                            && (a.text.starts_with('"')
                                || a.text.starts_with('r')
                                || a.text.starts_with('b')) =>
                    {
                        message_weight(&a.text) < 3
                    }
                    // Empty argument list (would not compile, but be safe).
                    Some(a) if is_punct(a, ")") => true,
                    // A computed message (format!, a variable): something
                    // was written there; the human judged it.
                    _ => false,
                };
                if vacuous {
                    ctx.emit(
                        out,
                        t.line,
                        Rule::PanicPath,
                        "`.expect()` with a vacuous message: the message is the \
                         justification for why this panic cannot fire — state the \
                         invariant (e.g. \"peeked above\", \"checked non-empty\")"
                            .to_string(),
                    );
                }
            }
            continue;
        }
        // Computed indexing on a known Vec/slice/array receiver.
        if t.kind == TokenKind::Ident
            && tokens
                .get(i.saturating_add(1))
                .is_some_and(|n| is_punct(n, "["))
        {
            // Exclude macro heads (`vec![..]`) — the ident is then followed
            // by `!` not `[`, so reaching here means a real index — and
            // attribute-ish contexts are impossible (`[` after `#`).
            let open = i.saturating_add(1);
            if !computed_index(tokens, open) {
                continue;
            }
            let approx = receiver_approx(tokens, i.saturating_add(1), ctx.hir, ctx.fields);
            if approx != TypeApprox::VecLike {
                continue;
            }
            ctx.emit(
                out,
                t.line,
                Rule::PanicPath,
                format!(
                    "computed index into `{}` (a Vec/slice) can panic out of range \
                     mid-window; use `.get(..).expect(\"<why in range>\")` so the \
                     proof obligation is written down, or annotate \
                     `// lint: allow(panic-path) — <reason>`",
                    t.text
                ),
            );
        }
    }
}
