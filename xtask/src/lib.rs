//! The determinism audit: `cargo xtask lint`.
//!
//! Every figure this repo produces must be byte-identical across runs,
//! machines, and `--threads` counts (DESIGN.md §7). The dynamic checks —
//! captured figure outputs, bench baselines, debug shadow cross-checks —
//! catch a violation only *after* it changed a schedule. This pass catches
//! the bug classes statically, the way deterministic-simulation stacks do.
//!
//! The analyzer has two layers (DESIGN.md §14): the hand-rolled tokenizer
//! in [`lexer`] (no external deps — the build environment is offline) and
//! a small item-level HIR in [`hir`] built over it — structs with typed
//! fields, impl blocks, functions with binding tables, and a workspace-wide
//! field table — so rules resolve *what a receiver is* instead of tracking
//! identifiers per file. Rules live in [`rules`], one module per family:
//!
//! | rule id            | contract |
//! |--------------------|----------|
//! | `unordered-iter`   | no iteration over `HashMap`/`HashSet` in deterministic crates unless annotated, folded through an order-insensitive sink, or collected and sorted in the same function |
//! | `wall-clock`       | no `Instant`/`SystemTime` in deterministic crates — virtual `Clock` time only |
//! | `float-ord`        | no raw ordering comparisons on float-typed receivers; route through the lossless `order_key` encoding in `crates/core/src/index.rs` |
//! | `unsafe-code`      | no `unsafe` anywhere (paired with `#![forbid(unsafe_code)]`) |
//! | `serialized-hash`  | no default-hasher container inside a `#[derive(Serialize)]` type (figure/bench output must not depend on hasher order) |
//! | `missing-forbid`   | every crate root carries `#![forbid(unsafe_code)]` |
//! | `clone-exhaustive` | a hand-written `impl Clone` must mention every declared field (the snapshot/fork deep-copy contract) |
//! | `effect-ownership` | `EffectKey` construction and `effects` outbox pushes only inside ledger-counting emit paths |
//! | `panic-path`       | no unjustified `unwrap`/vacuous `expect`/computed slice index in deterministic code |
//!
//! Escape hatches, both with **mandatory justifications**:
//!
//! * a site annotation on the offending line or the line above:
//!   `// lint: allow(unordered-iter) — <why this order cannot matter>`
//! * a repo-level entry in `xtask/lint.allow`:
//!   `<rule-id> <path> <justification>` — unused entries are themselves
//!   violations (`unused-allow`), so the file cannot rot.
//!
//! The audit covers `crates/*/src`, the root crate's `src/`, and
//! `xtask/src` itself — the linter is subject to its own `panic-path` and
//! `unordered-iter` rules, so the tool cannot rot either.

#![forbid(unsafe_code)]
#![deny(rust_2018_idioms)]

pub mod hir;
pub mod lexer;
pub mod rules;

use std::fmt;
use std::path::{Path, PathBuf};

use lexer::{lex, Lexed};
use rules::RuleCtx;

/// Crates whose code executes inside the deterministic simulation: the
/// strict rules apply here. `bench` (wall-clock measurement) and `metrics`
/// (post-hoc aggregation) are exempt from the simulation-path rules but
/// still checked for `unsafe` and serialized hash containers.
pub const DETERMINISTIC_CRATES: &[&str] = &[
    "core",
    "engine",
    "faults",
    "migration",
    "model",
    "sim",
    "workload",
];

/// Lint rules. Ids are stable: annotations, the allowlist, and the JSON
/// report refer to them.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Rule {
    /// Iteration over a default-hasher container in a deterministic crate.
    UnorderedIter,
    /// Wall-clock time source in a deterministic crate.
    WallClock,
    /// Raw float ordering comparison outside the `order_key` encoding.
    FloatOrd,
    /// An `unsafe` block or function.
    UnsafeCode,
    /// Hash container inside a `#[derive(Serialize)]` type.
    SerializedHash,
    /// Crate root missing `#![forbid(unsafe_code)]`.
    MissingForbid,
    /// A manual `impl Clone` that skips a declared field.
    CloneExhaustive,
    /// Effect construction/emission outside the ledger-counting paths.
    EffectOwnership,
    /// Unjustified panic site in deterministic code.
    PanicPath,
    /// An allow annotation without a justification.
    BareAllow,
    /// An allowlist entry that matched nothing.
    UnusedAllow,
}

impl Rule {
    /// The stable rule id used in annotations and reports.
    pub fn id(self) -> &'static str {
        match self {
            Rule::UnorderedIter => "unordered-iter",
            Rule::WallClock => "wall-clock",
            Rule::FloatOrd => "float-ord",
            Rule::UnsafeCode => "unsafe-code",
            Rule::SerializedHash => "serialized-hash",
            Rule::MissingForbid => "missing-forbid",
            Rule::CloneExhaustive => "clone-exhaustive",
            Rule::EffectOwnership => "effect-ownership",
            Rule::PanicPath => "panic-path",
            Rule::BareAllow => "bare-allow",
            Rule::UnusedAllow => "unused-allow",
        }
    }

    fn from_id(id: &str) -> Option<Rule> {
        Some(match id {
            "unordered-iter" => Rule::UnorderedIter,
            "wall-clock" => Rule::WallClock,
            "float-ord" => Rule::FloatOrd,
            "unsafe-code" => Rule::UnsafeCode,
            "serialized-hash" => Rule::SerializedHash,
            "missing-forbid" => Rule::MissingForbid,
            "clone-exhaustive" => Rule::CloneExhaustive,
            "effect-ownership" => Rule::EffectOwnership,
            "panic-path" => Rule::PanicPath,
            _ => return None,
        })
    }

    /// Whether a site annotation / allowlist entry may silence this rule.
    /// `unsafe-code` and `missing-forbid` have no escape hatch: the
    /// determinism contract never needs either.
    pub fn allowable(self) -> bool {
        !matches!(
            self,
            Rule::UnsafeCode | Rule::MissingForbid | Rule::BareAllow | Rule::UnusedAllow
        )
    }
}

/// One violation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Repo-relative path.
    pub path: String,
    /// 1-based line.
    pub line: u32,
    /// Violated rule.
    pub rule: Rule,
    /// Human-readable explanation.
    pub message: String,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.path,
            self.line,
            self.rule.id(),
            self.message
        )
    }
}

/// How a file is classified for rule selection.
#[derive(Debug, Clone, Default)]
pub struct FileClass {
    /// Simulation-path crate: the strict rules apply.
    pub deterministic: bool,
    /// A crate root that must carry `#![forbid(unsafe_code)]`.
    pub lib_root: bool,
    /// The linter's own source: self-audited for `panic-path` and
    /// `unordered-iter` (a nondeterministic or panicking audit would be
    /// its own bug class).
    pub xtask: bool,
}

// ---- annotations ----------------------------------------------------------

/// Site annotations parsed from a file's comments: `(line, rule)` pairs,
/// plus `bare-allow` findings for annotations with no justification.
struct Allows {
    at: Vec<(u32, Rule)>,
    bare: Vec<(u32, String)>,
}

const ALLOW_MARKER: &str = "lint: allow(";

fn parse_allows(comments: &[(u32, String)]) -> Allows {
    let mut at = Vec::new();
    let mut bare = Vec::new();
    for (line, text) in comments {
        let Some(pos) = text.find(ALLOW_MARKER) else {
            continue;
        };
        let rest = &text[pos + ALLOW_MARKER.len()..];
        let Some(close) = rest.find(')') else {
            bare.push((*line, "unterminated lint: allow(...)".to_string()));
            continue;
        };
        let id = rest[..close].trim();
        let Some(rule) = Rule::from_id(id) else {
            bare.push((*line, format!("unknown rule `{id}` in allow annotation")));
            continue;
        };
        if !rule.allowable() {
            bare.push((*line, format!("rule `{id}` cannot be allowed")));
            continue;
        }
        // The justification: whatever follows the `)`, minus separator
        // punctuation, must contain a word.
        let reason = rest[close + 1..]
            .trim_start_matches([' ', '\t', '—', '-', ':', ','])
            .trim();
        if reason.chars().filter(|c| c.is_alphanumeric()).count() < 3 {
            bare.push((
                *line,
                format!("allow({id}) needs a justification after the `)`"),
            ));
            continue;
        }
        at.push((*line, rule));
    }
    Allows { at, bare }
}

impl Allows {
    /// An annotation covers its own line (trailing comment) and the line
    /// directly below it (preceding-line comment).
    fn covers(&self, line: u32, rule: Rule) -> bool {
        self.at
            .iter()
            .any(|&(l, r)| r == rule && (l == line || l + 1 == line))
    }
}

// ---- the allowlist file ---------------------------------------------------

/// The repo-level allowlist (`xtask/lint.allow`): one entry per line,
/// `<rule-id> <path> <justification>`. Justifications are mandatory and
/// unused entries are violations.
pub struct Allowlist {
    entries: Vec<(Rule, String, bool)>,
    /// Findings produced while parsing (bad entries).
    pub parse_findings: Vec<Finding>,
}

impl Allowlist {
    /// An empty allowlist.
    pub fn empty() -> Self {
        Allowlist {
            entries: Vec::new(),
            parse_findings: Vec::new(),
        }
    }

    /// Parses the allowlist text. `origin` names the file in findings.
    pub fn parse(text: &str, origin: &str) -> Self {
        let mut entries = Vec::new();
        let mut parse_findings = Vec::new();
        for (i, raw) in text.lines().enumerate() {
            let line = raw.trim();
            let lineno = i as u32 + 1;
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let mut parts = line.splitn(3, char::is_whitespace);
            let rule_id = parts.next().unwrap_or_default();
            let path = parts.next().unwrap_or_default();
            let reason = parts.next().unwrap_or_default().trim();
            let bad = |msg: String| Finding {
                path: origin.to_string(),
                line: lineno,
                rule: Rule::BareAllow,
                message: msg,
            };
            let Some(rule) = Rule::from_id(rule_id) else {
                parse_findings.push(bad(format!("unknown rule `{rule_id}` in allowlist")));
                continue;
            };
            if !rule.allowable() {
                parse_findings.push(bad(format!("rule `{rule_id}` cannot be allowlisted")));
                continue;
            }
            if path.is_empty() {
                parse_findings.push(bad("allowlist entry missing a path".to_string()));
                continue;
            }
            if reason.chars().filter(|c| c.is_alphanumeric()).count() < 3 {
                parse_findings.push(bad(format!(
                    "allowlist entry for {path} needs a justification"
                )));
                continue;
            }
            entries.push((rule, path.to_string(), false));
        }
        Allowlist {
            entries,
            parse_findings,
        }
    }

    /// Whether an entry covers `(rule, path)`; marks it used.
    pub fn allows(&mut self, rule: Rule, path: &str) -> bool {
        let mut hit = false;
        for (r, p, used) in &mut self.entries {
            if *r == rule && p == path {
                *used = true;
                hit = true;
            }
        }
        hit
    }

    /// `unused-allow` findings for entries that matched nothing.
    pub fn unused_findings(&self, origin: &str) -> Vec<Finding> {
        self.entries
            .iter()
            .filter(|(_, _, used)| !used)
            .map(|(rule, path, _)| Finding {
                path: origin.to_string(),
                line: 0,
                rule: Rule::UnusedAllow,
                message: format!(
                    "allowlist entry `{} {}` matched nothing — delete it",
                    rule.id(),
                    path
                ),
            })
            .collect()
    }
}

// ---- per-file driver ------------------------------------------------------

/// Runs the rule passes selected by `class` over one analyzed file.
fn rule_passes(class: &FileClass, ctx: &RuleCtx<'_>, out: &mut Vec<Finding>) {
    if class.deterministic {
        rules::iter::unordered_iter(ctx, out);
        rules::tokens::wall_clock(ctx, out);
        rules::floats::float_ord(ctx, out);
        rules::clone::clone_exhaustive(ctx, out);
        rules::effects::effect_ownership(ctx, out);
        rules::panics::panic_path(ctx, out);
    } else if class.xtask {
        rules::iter::unordered_iter(ctx, out);
        rules::panics::panic_path(ctx, out);
    }
    rules::tokens::unsafe_code(ctx, out);
    rules::tokens::serialized_hash(ctx, out);
    if class.lib_root {
        rules::tokens::missing_forbid(ctx, out);
    }
}

/// Lints one analyzed file against `class`, filtering findings through its
/// site annotations.
fn lint_analyzed(
    path: &str,
    lexed: &Lexed,
    hir: &hir::FileHir,
    fields: &hir::FieldTable,
    class: &FileClass,
) -> Vec<Finding> {
    let allows = parse_allows(&lexed.comments);
    let ctx = RuleCtx {
        path,
        tokens: &lexed.tokens,
        hir,
        fields,
    };
    let mut raw = Vec::new();
    rule_passes(class, &ctx, &mut raw);
    let mut findings: Vec<Finding> = raw
        .into_iter()
        .filter(|f| !(f.rule.allowable() && allows.covers(f.line, f.rule)))
        .collect();
    for (line, message) in allows.bare {
        findings.push(Finding {
            path: path.to_string(),
            line,
            rule: Rule::BareAllow,
            message,
        });
    }
    findings.sort_by_key(|f| (f.line, f.rule));
    findings
}

/// Lints one file's source in isolation: the field table is built from this
/// file alone. `path` is used for reporting and allowlist matching; `class`
/// selects the applicable rules. The workspace driver [`run_lint`] resolves
/// fields across every audited file instead — use it for real audits; this
/// entry point exists for tests and single-file tooling.
pub fn lint_source(path: &str, src: &str, class: &FileClass) -> Vec<Finding> {
    let lexed = lex(src);
    let mut file_hir = hir::parse(&lexed.tokens);
    let mut fields = hir::FieldTable::default();
    fields.add_file(&file_hir);
    hir::refine_bindings(&lexed.tokens, &mut file_hir, &fields);
    lint_analyzed(path, &lexed, &file_hir, &fields, class)
}

// ---- machine-readable output ----------------------------------------------

/// Escapes a string for a JSON string literal. Hand-rolled because the
/// build environment is offline: no serde.
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// The source line a finding points at, re-read from disk under `root`.
/// Line-0 findings (allowlist-level) and unreadable files yield `None`.
fn snippet_for(
    root: &Path,
    cache: &mut std::collections::BTreeMap<String, Vec<String>>,
    f: &Finding,
) -> Option<String> {
    if f.line == 0 {
        return None;
    }
    if !cache.contains_key(&f.path) {
        let lines = std::fs::read_to_string(root.join(&f.path))
            .map(|src| src.lines().map(|l| l.to_string()).collect())
            .unwrap_or_default();
        cache.insert(f.path.clone(), lines);
    }
    cache
        .get(&f.path)
        .and_then(|lines| lines.get(f.line as usize - 1))
        .map(|l| l.trim_end().to_string())
}

/// Renders findings as the stable machine-readable document behind
/// `cargo xtask lint --format json`. Schema (version 1): `version`,
/// `clean`, and `findings[]` of `{rule, path, line, message, snippet,
/// allow_candidate}` — `snippet` is the offending source line re-read from
/// disk (null if unavailable), `allow_candidate` a paste-ready annotation
/// (null for rules with no escape hatch). Fields are only ever added;
/// `version` bumps if a field's meaning changes.
pub fn render_json(root: &Path, findings: &[Finding]) -> String {
    let mut cache = std::collections::BTreeMap::new();
    let mut out = String::new();
    out.push_str("{\n  \"version\": 1,\n");
    out.push_str(&format!("  \"clean\": {},\n", findings.is_empty()));
    out.push_str("  \"findings\": [");
    for (i, f) in findings.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("\n    {\n");
        out.push_str(&format!("      \"rule\": {},\n", json_str(f.rule.id())));
        out.push_str(&format!("      \"path\": {},\n", json_str(&f.path)));
        out.push_str(&format!("      \"line\": {},\n", f.line));
        out.push_str(&format!("      \"message\": {},\n", json_str(&f.message)));
        let snippet = snippet_for(root, &mut cache, f);
        out.push_str(&format!(
            "      \"snippet\": {},\n",
            snippet
                .as_deref()
                .map(json_str)
                .unwrap_or_else(|| "null".to_string())
        ));
        let candidate = if f.rule.allowable() {
            Some(format!("// lint: allow({}) — <reason>", f.rule.id()))
        } else {
            None
        };
        out.push_str(&format!(
            "      \"allow_candidate\": {}\n",
            candidate
                .as_deref()
                .map(json_str)
                .unwrap_or_else(|| "null".to_string())
        ));
        out.push_str("    }");
    }
    if !findings.is_empty() {
        out.push('\n');
        out.push_str("  ");
    }
    out.push_str("]\n}");
    out
}

// ---- workspace walk -------------------------------------------------------

/// A file scheduled for linting.
#[derive(Debug)]
pub struct WorkItem {
    /// Absolute path.
    pub abs: PathBuf,
    /// Repo-relative display path.
    pub rel: String,
    /// Rule classification.
    pub class: FileClass,
}

fn collect_rs_files(dir: &Path, out: &mut Vec<PathBuf>) {
    let Ok(entries) = std::fs::read_dir(dir) else {
        return;
    };
    let mut paths: Vec<PathBuf> = entries.flatten().map(|e| e.path()).collect();
    paths.sort();
    for p in paths {
        if p.is_dir() {
            collect_rs_files(&p, out);
        } else if p.extension().is_some_and(|e| e == "rs") {
            out.push(p);
        }
    }
}

/// Enumerates every file the audit covers: `crates/*/src`, the root crate's
/// `src/`, and `xtask/src` itself.
pub fn work_items(root: &Path) -> Vec<WorkItem> {
    let mut items = Vec::new();
    let mut push_tree = |src_dir: PathBuf, crate_name: String| {
        let deterministic = DETERMINISTIC_CRATES.contains(&crate_name.as_str());
        let xtask = crate_name == "xtask";
        let mut files = Vec::new();
        collect_rs_files(&src_dir, &mut files);
        for abs in files {
            let rel = abs
                .strip_prefix(root)
                .unwrap_or(&abs)
                .to_string_lossy()
                .replace('\\', "/");
            let class = FileClass {
                deterministic,
                lib_root: abs.file_name().is_some_and(|f| f == "lib.rs")
                    && abs.parent() == Some(src_dir.as_path()),
                xtask,
            };
            items.push(WorkItem { abs, rel, class });
        }
    };
    let crates_dir = root.join("crates");
    let mut crate_dirs: Vec<PathBuf> = std::fs::read_dir(&crates_dir)
        .map(|rd| {
            rd.flatten()
                .map(|e| e.path())
                .filter(|p| p.is_dir())
                .collect()
        })
        .unwrap_or_default();
    crate_dirs.sort();
    for dir in crate_dirs {
        let name = dir
            .file_name()
            .map(|f| f.to_string_lossy().into_owned())
            .unwrap_or_default();
        push_tree(dir.join("src"), name);
    }
    push_tree(root.join("src"), "llumnix".to_string());
    push_tree(root.join("xtask").join("src"), "xtask".to_string());
    items
}

/// Runs the full audit over the workspace at `root`, applying the
/// allowlist at `xtask/lint.allow` if present. Two passes: the first lexes
/// and HIR-parses every audited file and folds struct fields into one
/// workspace [`hir::FieldTable`]; the second re-resolves bindings against
/// that table and runs the rules, so `self.states.iter()` in one crate
/// resolves against a `states: HashMap<..>` declared in another. Returns
/// all findings, sorted by path and line.
pub fn run_lint(root: &Path) -> Vec<Finding> {
    let allow_path = root.join("xtask").join("lint.allow");
    let allow_origin = "xtask/lint.allow";
    let mut allowlist = match std::fs::read_to_string(&allow_path) {
        Ok(text) => Allowlist::parse(&text, allow_origin),
        Err(_) => Allowlist::empty(),
    };
    let mut findings: Vec<Finding> = allowlist.parse_findings.clone();

    // Pass 1: analyze every file, build the workspace field table.
    struct Analyzed {
        rel: String,
        class: FileClass,
        lexed: Lexed,
        hir: hir::FileHir,
    }
    let mut analyzed = Vec::new();
    let mut fields = hir::FieldTable::default();
    for item in work_items(root) {
        let Ok(src) = std::fs::read_to_string(&item.abs) else {
            continue;
        };
        let lexed = lex(&src);
        let file_hir = hir::parse(&lexed.tokens);
        // Only simulation-path structs feed field resolution: a bench or
        // xtask struct reusing a field name must not reclassify receivers
        // inside the deterministic crates.
        if item.class.deterministic {
            fields.add_file(&file_hir);
        }
        analyzed.push(Analyzed {
            rel: item.rel,
            class: item.class,
            lexed,
            hir: file_hir,
        });
    }

    // Pass 2: resolve bindings against the full table, run the rules.
    for a in &mut analyzed {
        hir::refine_bindings(&a.lexed.tokens, &mut a.hir, &fields);
        for f in lint_analyzed(&a.rel, &a.lexed, &a.hir, &fields, &a.class) {
            if f.rule.allowable() && allowlist.allows(f.rule, &f.path) {
                continue;
            }
            findings.push(f);
        }
    }
    findings.extend(allowlist.unused_findings(allow_origin));
    findings
        .sort_by(|a, b| (a.path.as_str(), a.line, a.rule).cmp(&(b.path.as_str(), b.line, b.rule)));
    findings
}
