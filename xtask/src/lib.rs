//! The determinism audit: `cargo xtask lint`.
//!
//! Every figure this repo produces must be byte-identical across runs,
//! machines, and `--threads` counts (DESIGN.md §7). The dynamic checks —
//! captured figure outputs, bench baselines, debug shadow cross-checks —
//! catch a violation only *after* it changed a schedule. This pass catches
//! the bug classes statically, the way deterministic-simulation stacks do:
//!
//! | rule id           | contract |
//! |-------------------|----------|
//! | `unordered-iter`  | no iteration over `HashMap`/`HashSet` in deterministic crates unless annotated or folded through an order-insensitive sink |
//! | `wall-clock`      | no `Instant`/`SystemTime` in deterministic crates — virtual [`Clock`](https://docs.rs) time only |
//! | `float-ord`       | no raw `f64` ordering comparisons outside the blessed `order_key` encoding in `crates/core/src/index.rs` |
//! | `unsafe-code`     | no `unsafe` anywhere (paired with `#![forbid(unsafe_code)]`) |
//! | `serialized-hash` | no default-hasher container inside a `#[derive(Serialize)]` type (figure/bench output must not depend on hasher order) |
//! | `missing-forbid`  | every crate root carries `#![forbid(unsafe_code)]` |
//!
//! Escape hatches, both with **mandatory justifications**:
//!
//! * a site annotation on the offending line or the line above:
//!   `// lint: allow(unordered-iter) — <why this order cannot matter>`
//! * a repo-level entry in `xtask/lint.allow`:
//!   `<rule-id> <path> <justification>` — unused entries are themselves
//!   violations (`unused-allow`), so the file cannot rot.
//!
//! The analyzer is a hand-rolled tokenizer pass (no external deps — the
//! build environment is offline) over `crates/*/src`, `src/`, and
//! `xtask/src`. It is deliberately conservative: it tracks identifiers
//! bound to hash containers *per file* and flags their iteration, so a
//! sound refactor is never nagged twice, and anything it cannot prove is
//! order-insensitive needs a human-written reason.

#![forbid(unsafe_code)]
#![deny(rust_2018_idioms)]

pub mod lexer;

use std::collections::BTreeSet;
use std::fmt;
use std::path::{Path, PathBuf};

use lexer::{lex, Token, TokenKind};

/// Crates whose code executes inside the deterministic simulation: the
/// strict rules apply here. `bench` (wall-clock measurement) and `metrics`
/// (post-hoc aggregation) are exempt from the simulation-path rules but
/// still checked for `unsafe` and serialized hash containers.
pub const DETERMINISTIC_CRATES: &[&str] = &[
    "core",
    "engine",
    "faults",
    "migration",
    "model",
    "sim",
    "workload",
];

/// The one file allowed to order floats directly: it defines the lossless
/// `order_key` encoding every other ordering must go through.
pub const BLESSED_FLOAT_FILE: &str = "crates/core/src/index.rs";

/// Lint rules. Ids are stable: annotations and the allowlist refer to them.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Rule {
    /// Iteration over a default-hasher container in a deterministic crate.
    UnorderedIter,
    /// Wall-clock time source in a deterministic crate.
    WallClock,
    /// Raw float ordering comparison outside the blessed encoding.
    FloatOrd,
    /// An `unsafe` block or function.
    UnsafeCode,
    /// Hash container inside a `#[derive(Serialize)]` type.
    SerializedHash,
    /// Crate root missing `#![forbid(unsafe_code)]`.
    MissingForbid,
    /// An allow annotation without a justification.
    BareAllow,
    /// An allowlist entry that matched nothing.
    UnusedAllow,
}

impl Rule {
    /// The stable rule id used in annotations and reports.
    pub fn id(self) -> &'static str {
        match self {
            Rule::UnorderedIter => "unordered-iter",
            Rule::WallClock => "wall-clock",
            Rule::FloatOrd => "float-ord",
            Rule::UnsafeCode => "unsafe-code",
            Rule::SerializedHash => "serialized-hash",
            Rule::MissingForbid => "missing-forbid",
            Rule::BareAllow => "bare-allow",
            Rule::UnusedAllow => "unused-allow",
        }
    }

    fn from_id(id: &str) -> Option<Rule> {
        Some(match id {
            "unordered-iter" => Rule::UnorderedIter,
            "wall-clock" => Rule::WallClock,
            "float-ord" => Rule::FloatOrd,
            "unsafe-code" => Rule::UnsafeCode,
            "serialized-hash" => Rule::SerializedHash,
            "missing-forbid" => Rule::MissingForbid,
            _ => return None,
        })
    }

    /// Whether a site annotation / allowlist entry may silence this rule.
    /// `unsafe-code` and `missing-forbid` have no escape hatch: the
    /// determinism contract never needs either.
    pub fn allowable(self) -> bool {
        !matches!(
            self,
            Rule::UnsafeCode | Rule::MissingForbid | Rule::BareAllow | Rule::UnusedAllow
        )
    }
}

/// One violation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Repo-relative path.
    pub path: String,
    /// 1-based line.
    pub line: u32,
    /// Violated rule.
    pub rule: Rule,
    /// Human-readable explanation.
    pub message: String,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.path,
            self.line,
            self.rule.id(),
            self.message
        )
    }
}

/// How a file is classified for rule selection.
#[derive(Debug, Clone, Default)]
pub struct FileClass {
    /// Simulation-path crate: the strict rules apply.
    pub deterministic: bool,
    /// The `order_key` home file, exempt from `float-ord`.
    pub blessed_float_file: bool,
    /// A crate root that must carry `#![forbid(unsafe_code)]`.
    pub lib_root: bool,
}

// ---- annotations ----------------------------------------------------------

/// Site annotations parsed from a file's comments: `(line, rule)` pairs,
/// plus `bare-allow` findings for annotations with no justification.
struct Allows {
    at: Vec<(u32, Rule)>,
    bare: Vec<(u32, String)>,
}

const ALLOW_MARKER: &str = "lint: allow(";

fn parse_allows(comments: &[(u32, String)]) -> Allows {
    let mut at = Vec::new();
    let mut bare = Vec::new();
    for (line, text) in comments {
        let Some(pos) = text.find(ALLOW_MARKER) else {
            continue;
        };
        let rest = &text[pos + ALLOW_MARKER.len()..];
        let Some(close) = rest.find(')') else {
            bare.push((*line, "unterminated lint: allow(...)".to_string()));
            continue;
        };
        let id = rest[..close].trim();
        let Some(rule) = Rule::from_id(id) else {
            bare.push((*line, format!("unknown rule `{id}` in allow annotation")));
            continue;
        };
        if !rule.allowable() {
            bare.push((*line, format!("rule `{id}` cannot be allowed")));
            continue;
        }
        // The justification: whatever follows the `)`, minus separator
        // punctuation, must contain a word.
        let reason = rest[close + 1..]
            .trim_start_matches([' ', '\t', '—', '-', ':', ','])
            .trim();
        if reason.chars().filter(|c| c.is_alphanumeric()).count() < 3 {
            bare.push((
                *line,
                format!("allow({id}) needs a justification after the `)`"),
            ));
            continue;
        }
        at.push((*line, rule));
    }
    Allows { at, bare }
}

impl Allows {
    /// An annotation covers its own line (trailing comment) and the line
    /// directly below it (preceding-line comment).
    fn covers(&self, line: u32, rule: Rule) -> bool {
        self.at
            .iter()
            .any(|&(l, r)| r == rule && (l == line || l + 1 == line))
    }
}

// ---- the allowlist file ---------------------------------------------------

/// The repo-level allowlist (`xtask/lint.allow`): one entry per line,
/// `<rule-id> <path> <justification>`. Justifications are mandatory and
/// unused entries are violations.
pub struct Allowlist {
    entries: Vec<(Rule, String, bool)>,
    /// Findings produced while parsing (bad entries).
    pub parse_findings: Vec<Finding>,
}

impl Allowlist {
    /// An empty allowlist.
    pub fn empty() -> Self {
        Allowlist {
            entries: Vec::new(),
            parse_findings: Vec::new(),
        }
    }

    /// Parses the allowlist text. `origin` names the file in findings.
    pub fn parse(text: &str, origin: &str) -> Self {
        let mut entries = Vec::new();
        let mut parse_findings = Vec::new();
        for (i, raw) in text.lines().enumerate() {
            let line = raw.trim();
            let lineno = i as u32 + 1;
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let mut parts = line.splitn(3, char::is_whitespace);
            let rule_id = parts.next().unwrap_or_default();
            let path = parts.next().unwrap_or_default();
            let reason = parts.next().unwrap_or_default().trim();
            let bad = |msg: String| Finding {
                path: origin.to_string(),
                line: lineno,
                rule: Rule::BareAllow,
                message: msg,
            };
            let Some(rule) = Rule::from_id(rule_id) else {
                parse_findings.push(bad(format!("unknown rule `{rule_id}` in allowlist")));
                continue;
            };
            if !rule.allowable() {
                parse_findings.push(bad(format!("rule `{rule_id}` cannot be allowlisted")));
                continue;
            }
            if path.is_empty() {
                parse_findings.push(bad("allowlist entry missing a path".to_string()));
                continue;
            }
            if reason.chars().filter(|c| c.is_alphanumeric()).count() < 3 {
                parse_findings.push(bad(format!(
                    "allowlist entry for {path} needs a justification"
                )));
                continue;
            }
            entries.push((rule, path.to_string(), false));
        }
        Allowlist {
            entries,
            parse_findings,
        }
    }

    /// Whether an entry covers `(rule, path)`; marks it used.
    pub fn allows(&mut self, rule: Rule, path: &str) -> bool {
        let mut hit = false;
        for (r, p, used) in &mut self.entries {
            if *r == rule && p == path {
                *used = true;
                hit = true;
            }
        }
        hit
    }

    /// `unused-allow` findings for entries that matched nothing.
    pub fn unused_findings(&self, origin: &str) -> Vec<Finding> {
        self.entries
            .iter()
            .filter(|(_, _, used)| !used)
            .map(|(rule, path, _)| Finding {
                path: origin.to_string(),
                line: 0,
                rule: Rule::UnusedAllow,
                message: format!(
                    "allowlist entry `{} {}` matched nothing — delete it",
                    rule.id(),
                    path
                ),
            })
            .collect()
    }
}

// ---- token helpers --------------------------------------------------------

fn is_ident(t: &Token, text: &str) -> bool {
    t.kind == TokenKind::Ident && t.text == text
}

fn is_punct(t: &Token, text: &str) -> bool {
    t.kind == TokenKind::Punct && t.text == text
}

/// Index just past the group that opens at `open` (which must hold `(`,
/// `[`, or `{`), balancing all three bracket kinds.
fn skip_group(tokens: &[Token], open: usize) -> usize {
    let mut depth = 0i32;
    let mut i = open;
    while i < tokens.len() {
        let t = &tokens[i];
        if t.kind == TokenKind::Punct {
            match t.text.as_str() {
                "(" | "[" | "{" => depth += 1,
                ")" | "]" | "}" => {
                    depth -= 1;
                    if depth == 0 {
                        return i + 1;
                    }
                }
                _ => {}
            }
        }
        i += 1;
    }
    i
}

// ---- rule passes ----------------------------------------------------------

const HASH_TYPES: [&str; 2] = ["HashMap", "HashSet"];
const ITER_METHODS: [&str; 10] = [
    "iter",
    "iter_mut",
    "keys",
    "values",
    "values_mut",
    "into_iter",
    "into_keys",
    "into_values",
    "drain",
    "retain",
];
/// Iterator folds whose result cannot depend on visit order (assuming pure
/// closures, which is on the annotator if violated).
const ORDER_INSENSITIVE_SINKS: [&str; 6] = ["sum", "count", "min", "max", "all", "any"];

/// Identifiers bound to a hash container anywhere in the file: struct
/// fields, params, and lets declared `: HashMap<...>`, initialized from
/// `HashMap::new()`-style paths, or typed via a local `type X = HashMap`
/// alias.
fn hash_container_idents(tokens: &[Token]) -> BTreeSet<String> {
    let mut type_names: BTreeSet<String> = HASH_TYPES.iter().map(|s| s.to_string()).collect();
    // Local aliases: `type Foo = HashMap<...>;`
    for i in 0..tokens.len() {
        if is_ident(&tokens[i], "type")
            && i + 2 < tokens.len()
            && tokens[i + 1].kind == TokenKind::Ident
            && is_punct(&tokens[i + 2], "=")
        {
            let mut j = i + 3;
            while j < tokens.len() && !is_punct(&tokens[j], ";") {
                if tokens[j].kind == TokenKind::Ident && HASH_TYPES.contains(&&*tokens[j].text) {
                    type_names.insert(tokens[i + 1].text.clone());
                    break;
                }
                j += 1;
            }
        }
    }
    let mut out = BTreeSet::new();
    // `name : <path containing a hash type>` — fields, params, typed lets,
    // and struct-literal fields initialized from `HashMap::new()`.
    for i in 1..tokens.len() {
        if !is_punct(&tokens[i], ":") {
            continue;
        }
        // Skip `::` path separators.
        if (i > 0 && is_punct(&tokens[i - 1], ":"))
            || (i + 1 < tokens.len() && is_punct(&tokens[i + 1], ":"))
        {
            continue;
        }
        if tokens[i - 1].kind != TokenKind::Ident {
            continue;
        }
        let name = &tokens[i - 1].text;
        // Scan the type/initializer path: idents, `::`, `&`, and generic
        // angle brackets. Stop at anything else.
        let mut j = i + 1;
        let mut found = false;
        while j < tokens.len() {
            let t = &tokens[j];
            let path_piece = t.kind == TokenKind::Ident
                || t.kind == TokenKind::Lifetime
                || (t.kind == TokenKind::Punct && matches!(t.text.as_str(), ":" | "&" | "<" | ">"));
            if !path_piece {
                break;
            }
            if t.kind == TokenKind::Ident && type_names.contains(&t.text) {
                found = true;
                break;
            }
            j += 1;
        }
        if found {
            out.insert(name.clone());
        }
    }
    // `let [mut] name = <path containing a hash type>(...)`.
    for i in 0..tokens.len() {
        if !is_ident(&tokens[i], "let") {
            continue;
        }
        let mut j = i + 1;
        if j < tokens.len() && is_ident(&tokens[j], "mut") {
            j += 1;
        }
        if j >= tokens.len() || tokens[j].kind != TokenKind::Ident {
            continue;
        }
        let name = &tokens[j].text;
        // Find the `=` of this let (same statement, before any `;`).
        let mut k = j + 1;
        while k < tokens.len() && !is_punct(&tokens[k], "=") && !is_punct(&tokens[k], ";") {
            k += 1;
        }
        if k >= tokens.len() || !is_punct(&tokens[k], "=") {
            continue;
        }
        let mut m = k + 1;
        while m < tokens.len() {
            let t = &tokens[m];
            let path_piece = t.kind == TokenKind::Ident
                || (t.kind == TokenKind::Punct && matches!(t.text.as_str(), ":" | "<" | ">" | "&"));
            if !path_piece {
                break;
            }
            if t.kind == TokenKind::Ident && type_names.contains(&t.text) {
                out.insert(name.clone());
                break;
            }
            m += 1;
        }
    }
    out
}

/// Walks a method chain starting at the `(` of the first call; returns
/// `true` if any later method in the chain is an order-insensitive sink.
fn chain_reaches_sink(tokens: &[Token], first_open: usize) -> bool {
    let mut i = skip_group(tokens, first_open);
    loop {
        if i >= tokens.len() || !is_punct(&tokens[i], ".") {
            return false;
        }
        let Some(m) = tokens.get(i + 1) else {
            return false;
        };
        if m.kind != TokenKind::Ident {
            return false;
        }
        if ORDER_INSENSITIVE_SINKS.contains(&&*m.text) {
            return true;
        }
        // Skip an optional turbofish, then the argument group.
        let mut j = i + 2;
        if j + 1 < tokens.len() && is_punct(&tokens[j], ":") && is_punct(&tokens[j + 1], ":") {
            // `::<...>`
            j += 2;
            if j < tokens.len() && is_punct(&tokens[j], "<") {
                let mut depth = 0i32;
                while j < tokens.len() {
                    if is_punct(&tokens[j], "<") {
                        depth += 1;
                    } else if is_punct(&tokens[j], ">") {
                        depth -= 1;
                        if depth == 0 {
                            j += 1;
                            break;
                        }
                    }
                    j += 1;
                }
            }
        }
        if j < tokens.len() && is_punct(&tokens[j], "(") {
            i = skip_group(tokens, j);
        } else {
            // A field access or `.await`-like postfix: keep walking.
            i = j;
        }
    }
}

fn unordered_iter_pass(tokens: &[Token], path: &str, findings: &mut Vec<Finding>) {
    let containers = hash_container_idents(tokens);
    if containers.is_empty() {
        return;
    }
    // Method-call iteration: `name.iter()`, `name.drain(..)`, ...
    for i in 0..tokens.len() {
        let t = &tokens[i];
        if t.kind != TokenKind::Ident || !containers.contains(&t.text) {
            continue;
        }
        let (Some(dot), Some(m)) = (tokens.get(i + 1), tokens.get(i + 2)) else {
            continue;
        };
        if !is_punct(dot, ".") || m.kind != TokenKind::Ident || !ITER_METHODS.contains(&&*m.text) {
            continue;
        }
        let Some(open) = tokens.get(i + 3) else {
            continue;
        };
        if !is_punct(open, "(") {
            continue;
        }
        if m.text != "retain" && chain_reaches_sink(tokens, i + 3) {
            continue;
        }
        findings.push(Finding {
            path: path.to_string(),
            line: m.line,
            rule: Rule::UnorderedIter,
            message: format!(
                "`{}.{}()` iterates a default-hasher container in a deterministic crate; \
                 use a BTree container, sort before use, or annotate \
                 `// lint: allow(unordered-iter) — <reason>`",
                t.text, m.text
            ),
        });
    }
    // `for`-loop iteration: `for x in &name { ... }`.
    for i in 0..tokens.len() {
        if !is_ident(&tokens[i], "for") {
            continue;
        }
        // Find the `in` of this loop header (within a small window).
        let mut j = i + 1;
        let mut in_at = None;
        while j < tokens.len() && j < i + 12 {
            if is_ident(&tokens[j], "in") {
                in_at = Some(j);
                break;
            }
            if is_punct(&tokens[j], "{") {
                break;
            }
            j += 1;
        }
        let Some(in_at) = in_at else { continue };
        // The iterated expression: tokens up to the body `{`. A `(` means a
        // method call — the pass above owns that case.
        let mut k = in_at + 1;
        let mut last_ident: Option<&Token> = None;
        let mut has_call = false;
        while k < tokens.len() && !is_punct(&tokens[k], "{") {
            if is_punct(&tokens[k], "(") {
                has_call = true;
            }
            if tokens[k].kind == TokenKind::Ident {
                last_ident = Some(&tokens[k]);
            }
            k += 1;
        }
        if has_call {
            continue;
        }
        if let Some(id) = last_ident {
            if containers.contains(&id.text) {
                findings.push(Finding {
                    path: path.to_string(),
                    line: id.line,
                    rule: Rule::UnorderedIter,
                    message: format!(
                        "`for .. in {}` iterates a default-hasher container in a \
                         deterministic crate; use a BTree container or sort first",
                        id.text
                    ),
                });
            }
        }
    }
}

fn wall_clock_pass(tokens: &[Token], path: &str, findings: &mut Vec<Finding>) {
    for t in tokens {
        if t.kind == TokenKind::Ident && (t.text == "Instant" || t.text == "SystemTime") {
            findings.push(Finding {
                path: path.to_string(),
                line: t.line,
                rule: Rule::WallClock,
                message: format!(
                    "`{}` is a wall-clock time source; simulation paths must use the \
                     virtual clock (llumnix_sim::SimTime / Clock) only",
                    t.text
                ),
            });
        }
    }
}

fn float_ord_pass(tokens: &[Token], path: &str, findings: &mut Vec<Finding>) {
    for i in 1..tokens.len() {
        let t = &tokens[i];
        if t.kind == TokenKind::Ident
            && (t.text == "partial_cmp" || t.text == "total_cmp")
            && is_punct(&tokens[i - 1], ".")
        {
            findings.push(Finding {
                path: path.to_string(),
                line: t.line,
                rule: Rule::FloatOrd,
                message: format!(
                    "raw `.{}()` float ordering; route the comparison through the \
                     lossless `order_key` encoding in {BLESSED_FLOAT_FILE}",
                    t.text
                ),
            });
        }
    }
}

fn unsafe_pass(tokens: &[Token], path: &str, findings: &mut Vec<Finding>) {
    for t in tokens {
        if is_ident(t, "unsafe") {
            findings.push(Finding {
                path: path.to_string(),
                line: t.line,
                rule: Rule::UnsafeCode,
                message: "`unsafe` is banned workspace-wide (no escape hatch); \
                          the simulator needs none"
                    .to_string(),
            });
        }
    }
}

fn serialized_hash_pass(tokens: &[Token], path: &str, findings: &mut Vec<Finding>) {
    let mut i = 0usize;
    while i < tokens.len() {
        // An outer attribute: `#[ ... ]`.
        if !(is_punct(&tokens[i], "#") && i + 1 < tokens.len() && is_punct(&tokens[i + 1], "[")) {
            i += 1;
            continue;
        }
        let end = skip_group(tokens, i + 1);
        let attr = &tokens[i + 1..end];
        let is_serialize_derive = attr.iter().any(|t| is_ident(t, "derive"))
            && attr.iter().any(|t| is_ident(t, "Serialize"));
        i = end;
        if !is_serialize_derive {
            continue;
        }
        // Skip further attributes and doc noise up to the item keyword.
        let mut j = i;
        while j < tokens.len() {
            if is_punct(&tokens[j], "#") && j + 1 < tokens.len() && is_punct(&tokens[j + 1], "[") {
                j = skip_group(tokens, j + 1);
            } else if tokens[j].kind == TokenKind::Ident
                && matches!(tokens[j].text.as_str(), "struct" | "enum")
            {
                break;
            } else {
                j += 1;
            }
        }
        if j >= tokens.len() {
            return;
        }
        // The item body: `{ ... }` or `( ... )` (tuple struct) or `;`.
        let mut k = j + 1;
        while k < tokens.len()
            && !is_punct(&tokens[k], "{")
            && !is_punct(&tokens[k], "(")
            && !is_punct(&tokens[k], ";")
        {
            k += 1;
        }
        if k >= tokens.len() || is_punct(&tokens[k], ";") {
            i = k;
            continue;
        }
        let body_end = skip_group(tokens, k);
        for t in &tokens[k..body_end] {
            if t.kind == TokenKind::Ident && HASH_TYPES.contains(&&*t.text) {
                findings.push(Finding {
                    path: path.to_string(),
                    line: t.line,
                    rule: Rule::SerializedHash,
                    message: format!(
                        "`{}` inside a `#[derive(Serialize)]` type: serialized output \
                         would depend on hasher order; use a BTree container",
                        t.text
                    ),
                });
            }
        }
        i = body_end;
    }
}

fn missing_forbid_pass(tokens: &[Token], path: &str, findings: &mut Vec<Finding>) {
    for i in 0..tokens.len() {
        if is_punct(&tokens[i], "#")
            && tokens.get(i + 1).is_some_and(|t| is_punct(t, "!"))
            && tokens.get(i + 2).is_some_and(|t| is_punct(t, "["))
            && tokens.get(i + 3).is_some_and(|t| is_ident(t, "forbid"))
            && tokens
                .get(i + 5)
                .is_some_and(|t| is_ident(t, "unsafe_code"))
        {
            return;
        }
    }
    findings.push(Finding {
        path: path.to_string(),
        line: 1,
        rule: Rule::MissingForbid,
        message: "crate root is missing `#![forbid(unsafe_code)]`".to_string(),
    });
}

// ---- per-file driver ------------------------------------------------------

/// Lints one file's source. `path` is used for reporting and allowlist
/// matching; `class` selects the applicable rules.
pub fn lint_source(path: &str, src: &str, class: &FileClass) -> Vec<Finding> {
    let lexed = lex(src);
    let allows = parse_allows(&lexed.comments);
    let mut raw = Vec::new();
    if class.deterministic {
        unordered_iter_pass(&lexed.tokens, path, &mut raw);
        wall_clock_pass(&lexed.tokens, path, &mut raw);
        if !class.blessed_float_file {
            float_ord_pass(&lexed.tokens, path, &mut raw);
        }
    }
    unsafe_pass(&lexed.tokens, path, &mut raw);
    serialized_hash_pass(&lexed.tokens, path, &mut raw);
    if class.lib_root {
        missing_forbid_pass(&lexed.tokens, path, &mut raw);
    }
    let mut findings: Vec<Finding> = raw
        .into_iter()
        .filter(|f| !(f.rule.allowable() && allows.covers(f.line, f.rule)))
        .collect();
    for (line, message) in allows.bare {
        findings.push(Finding {
            path: path.to_string(),
            line,
            rule: Rule::BareAllow,
            message,
        });
    }
    findings.sort_by_key(|f| (f.line, f.rule));
    findings
}

// ---- workspace walk -------------------------------------------------------

/// A file scheduled for linting.
#[derive(Debug)]
pub struct WorkItem {
    /// Absolute path.
    pub abs: PathBuf,
    /// Repo-relative display path.
    pub rel: String,
    /// Rule classification.
    pub class: FileClass,
}

fn collect_rs_files(dir: &Path, out: &mut Vec<PathBuf>) {
    let Ok(entries) = std::fs::read_dir(dir) else {
        return;
    };
    let mut paths: Vec<PathBuf> = entries.flatten().map(|e| e.path()).collect();
    paths.sort();
    for p in paths {
        if p.is_dir() {
            collect_rs_files(&p, out);
        } else if p.extension().is_some_and(|e| e == "rs") {
            out.push(p);
        }
    }
}

/// Enumerates every file the audit covers: `crates/*/src`, the root crate's
/// `src/`, and `xtask/src` itself.
pub fn work_items(root: &Path) -> Vec<WorkItem> {
    let mut items = Vec::new();
    let mut push_tree = |src_dir: PathBuf, crate_name: String| {
        let deterministic = DETERMINISTIC_CRATES.contains(&crate_name.as_str());
        let mut files = Vec::new();
        collect_rs_files(&src_dir, &mut files);
        for abs in files {
            let rel = abs
                .strip_prefix(root)
                .unwrap_or(&abs)
                .to_string_lossy()
                .replace('\\', "/");
            let class = FileClass {
                deterministic,
                blessed_float_file: rel == BLESSED_FLOAT_FILE,
                lib_root: abs.file_name().is_some_and(|f| f == "lib.rs")
                    && abs.parent() == Some(src_dir.as_path()),
            };
            items.push(WorkItem { abs, rel, class });
        }
    };
    let crates_dir = root.join("crates");
    let mut crate_dirs: Vec<PathBuf> = std::fs::read_dir(&crates_dir)
        .map(|rd| {
            rd.flatten()
                .map(|e| e.path())
                .filter(|p| p.is_dir())
                .collect()
        })
        .unwrap_or_default();
    crate_dirs.sort();
    for dir in crate_dirs {
        let name = dir
            .file_name()
            .map(|f| f.to_string_lossy().into_owned())
            .unwrap_or_default();
        push_tree(dir.join("src"), name);
    }
    push_tree(root.join("src"), "llumnix".to_string());
    push_tree(root.join("xtask").join("src"), "xtask".to_string());
    items
}

/// Runs the full audit over the workspace at `root`, applying the
/// allowlist at `xtask/lint.allow` if present. Returns all findings,
/// sorted by path and line.
pub fn run_lint(root: &Path) -> Vec<Finding> {
    let allow_path = root.join("xtask").join("lint.allow");
    let allow_origin = "xtask/lint.allow";
    let mut allowlist = match std::fs::read_to_string(&allow_path) {
        Ok(text) => Allowlist::parse(&text, allow_origin),
        Err(_) => Allowlist::empty(),
    };
    let mut findings: Vec<Finding> = allowlist.parse_findings.clone();
    for item in work_items(root) {
        let Ok(src) = std::fs::read_to_string(&item.abs) else {
            continue;
        };
        for f in lint_source(&item.rel, &src, &item.class) {
            if f.rule.allowable() && allowlist.allows(f.rule, &f.path) {
                continue;
            }
            findings.push(f);
        }
    }
    findings.extend(allowlist.unused_findings(allow_origin));
    findings
        .sort_by(|a, b| (a.path.as_str(), a.line, a.rule).cmp(&(b.path.as_str(), b.line, b.rule)));
    findings
}
