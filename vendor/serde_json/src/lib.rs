//! Offline stand-in for `serde_json`, paired with the vendored `serde`.
//!
//! Provides the three entry points the workspace uses — [`to_string`],
//! [`to_string_pretty`], and [`from_str`] — over the vendored
//! [`serde::Value`] tree. The emitted JSON is standard; files written by the
//! real serde_json parse back and vice versa (for the derived data shapes
//! this repository uses).

use serde::{Deserialize, Serialize, Value};

/// Error for both directions; carries a human-readable message and, for
/// parse errors, the byte offset where parsing failed.
#[derive(Debug, Clone)]
pub struct Error(String);

impl Error {
    fn parse(offset: usize, message: impl Into<String>) -> Self {
        Error(format!("at byte {offset}: {}", message.into()))
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for Error {}

impl From<serde::Error> for Error {
    fn from(e: serde::Error) -> Self {
        Error(e.to_string())
    }
}

/// Serializes a value to compact JSON.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), None, 0);
    Ok(out)
}

/// Serializes a value to two-space-indented JSON.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), Some(2), 0);
    Ok(out)
}

/// Parses JSON text into any [`Deserialize`] type.
pub fn from_str<T: Deserialize>(text: &str) -> Result<T, Error> {
    let mut parser = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    parser.skip_ws();
    let value = parser.value()?;
    parser.skip_ws();
    if parser.pos != parser.bytes.len() {
        return Err(Error::parse(
            parser.pos,
            "trailing characters after JSON value",
        ));
    }
    Ok(T::from_value(&value)?)
}

// ---------------------------------------------------------------- writing

fn write_value(out: &mut String, value: &Value, indent: Option<usize>, depth: usize) {
    match value {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::U64(n) => out.push_str(&n.to_string()),
        Value::I64(n) => out.push_str(&n.to_string()),
        Value::F64(f) => {
            if f.is_finite() {
                // `{}` on f64 always produces a valid JSON number and
                // round-trips exactly (shortest representation).
                out.push_str(&f.to_string());
            } else {
                out.push_str("null");
            }
        }
        Value::Str(s) => write_string(out, s),
        Value::Arr(items) => write_seq(
            out,
            items.iter(),
            items.len(),
            indent,
            depth,
            |out, v, d| write_value(out, v, indent, d),
            '[',
            ']',
        ),
        Value::Obj(entries) => write_seq(
            out,
            entries.iter(),
            entries.len(),
            indent,
            depth,
            |out, (k, v), d| {
                write_string(out, k);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, v, indent, d);
            },
            '{',
            '}',
        ),
    }
}

#[allow(clippy::too_many_arguments)]
fn write_seq<I: Iterator<Item = T>, T>(
    out: &mut String,
    items: I,
    len: usize,
    indent: Option<usize>,
    depth: usize,
    mut write_item: impl FnMut(&mut String, T, usize),
    open: char,
    close: char,
) {
    out.push(open);
    if len == 0 {
        out.push(close);
        return;
    }
    for (i, item) in items.enumerate() {
        if i > 0 {
            out.push(',');
        }
        if let Some(width) = indent {
            out.push('\n');
            out.push_str(&" ".repeat(width * (depth + 1)));
        }
        write_item(out, item, depth + 1);
    }
    if let Some(width) = indent {
        out.push('\n');
        out.push_str(&" ".repeat(width * depth));
    }
    out.push(close);
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------- parsing

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, byte: u8) -> Result<(), Error> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::parse(
                self.pos,
                format!("expected `{}`", byte as char),
            ))
        }
    }

    fn eat_literal(&mut self, literal: &str) -> bool {
        if self.bytes[self.pos..].starts_with(literal.as_bytes()) {
            self.pos += literal.len();
            true
        } else {
            false
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'n') if self.eat_literal("null") => Ok(Value::Null),
            Some(b't') if self.eat_literal("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.eat_literal("false") => Ok(Value::Bool(false)),
            Some(b'"') => self.string().map(Value::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b) if b == b'-' || b.is_ascii_digit() => self.number(),
            Some(b) => Err(Error::parse(
                self.pos,
                format!("unexpected `{}`", b as char),
            )),
            None => Err(Error::parse(self.pos, "unexpected end of input")),
        }
    }

    fn array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Arr(items));
                }
                _ => return Err(Error::parse(self.pos, "expected `,` or `]` in array")),
            }
        }
    }

    fn object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Obj(entries));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            entries.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Obj(entries));
                }
                _ => return Err(Error::parse(self.pos, "expected `,` or `}` in object")),
            }
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            // Fast path: copy unescaped UTF-8 runs wholesale.
            while let Some(b) = self.peek() {
                if b == b'"' || b == b'\\' {
                    break;
                }
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| Error::parse(start, "invalid UTF-8 in string"))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self
                        .peek()
                        .ok_or_else(|| Error::parse(self.pos, "unterminated escape sequence"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{0008}'),
                        b'f' => out.push('\u{000c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let high = self.hex4()?;
                            let code = if (0xD800..0xDC00).contains(&high) {
                                // Surrogate pair: expect `\uXXXX` low half.
                                if !(self.eat_literal("\\u")) {
                                    return Err(Error::parse(self.pos, "lone high surrogate"));
                                }
                                let low = self.hex4()?;
                                0x10000 + ((high - 0xD800) << 10) + (low - 0xDC00)
                            } else {
                                high
                            };
                            out.push(
                                char::from_u32(code).ok_or_else(|| {
                                    Error::parse(self.pos, "invalid unicode escape")
                                })?,
                            );
                        }
                        other => {
                            return Err(Error::parse(
                                self.pos - 1,
                                format!("invalid escape `\\{}`", other as char),
                            ))
                        }
                    }
                }
                _ => return Err(Error::parse(self.pos, "unterminated string")),
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, Error> {
        let end = self.pos + 4;
        if end > self.bytes.len() {
            return Err(Error::parse(self.pos, "truncated unicode escape"));
        }
        let hex = std::str::from_utf8(&self.bytes[self.pos..end])
            .map_err(|_| Error::parse(self.pos, "invalid unicode escape"))?;
        let v = u32::from_str_radix(hex, 16)
            .map_err(|_| Error::parse(self.pos, "invalid unicode escape"))?;
        self.pos = end;
        Ok(v)
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::parse(start, "invalid number"))?;
        if !is_float {
            if let Ok(n) = text.parse::<u64>() {
                return Ok(Value::U64(n));
            }
            if let Ok(n) = text.parse::<i64>() {
                return Ok(Value::I64(n));
            }
        }
        text.parse::<f64>()
            .map(Value::F64)
            .map_err(|_| Error::parse(start, format!("invalid number `{text}`")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Debug, PartialEq, Serialize, Deserialize)]
    struct Record {
        name: String,
        count: u64,
        ratio: f64,
        tags: Vec<String>,
        note: Option<String>,
    }

    fn sample() -> Record {
        Record {
            name: "a \"quoted\" name\nwith newline".into(),
            count: 123_456_789_012,
            ratio: 0.125,
            tags: vec!["x".into(), "y".into()],
            note: None,
        }
    }

    #[test]
    fn compact_round_trip() {
        let text = to_string(&sample()).unwrap();
        let back: Record = from_str(&text).unwrap();
        assert_eq!(back, sample());
    }

    #[test]
    fn pretty_round_trip_and_shape() {
        let text = to_string_pretty(&sample()).unwrap();
        assert!(text.contains("\n  \"name\""));
        let back: Record = from_str(&text).unwrap();
        assert_eq!(back, sample());
    }

    #[test]
    fn parses_foreign_json() {
        let v: Vec<f64> = from_str("[1, 2.5, -3e2, 0]").unwrap();
        assert_eq!(v, vec![1.0, 2.5, -300.0, 0.0]);
        let s: String = from_str(r#""Aé 😀""#).unwrap();
        assert_eq!(s, "Aé 😀");
        assert!(from_str::<Vec<f64>>("[1,]").is_err());
        assert!(from_str::<Vec<f64>>("[1] junk").is_err());
    }
}
