//! Hand-rolled `#[derive(Serialize)]` / `#[derive(Deserialize)]` for the
//! vendored `serde` stand-in.
//!
//! This crate deliberately avoids `syn`/`quote` (the build environment is
//! offline), so it parses the item token stream directly. It supports exactly
//! the shapes this workspace uses:
//!
//! - structs with named fields,
//! - newtype structs (one unnamed field),
//! - enums whose variants are unit, newtype, or struct-like.
//!
//! Generics and `#[serde(...)]` attributes are not supported and produce a
//! compile error, which is the honest failure mode for a stand-in.

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let shape = match parse_shape(input) {
        Ok(s) => s,
        Err(e) => return compile_error(&e),
    };
    gen_serialize(&shape)
        .parse()
        .expect("generated Serialize impl parses")
}

#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let shape = match parse_shape(input) {
        Ok(s) => s,
        Err(e) => return compile_error(&e),
    };
    gen_deserialize(&shape)
        .parse()
        .expect("generated Deserialize impl parses")
}

fn compile_error(msg: &str) -> TokenStream {
    format!("compile_error!({msg:?});")
        .parse()
        .expect("compile_error parses")
}

// ---------------------------------------------------------------- parsing

enum Shape {
    NamedStruct {
        name: String,
        fields: Vec<String>,
    },
    NewtypeStruct {
        name: String,
    },
    Enum {
        name: String,
        variants: Vec<Variant>,
    },
}

struct Variant {
    name: String,
    kind: VariantKind,
}

enum VariantKind {
    Unit,
    Newtype,
    Struct(Vec<String>),
}

fn parse_shape(input: TokenStream) -> Result<Shape, String> {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;
    skip_attrs_and_vis(&tokens, &mut i);
    let keyword = ident_at(&tokens, i).ok_or("expected `struct` or `enum`")?;
    i += 1;
    let name = ident_at(&tokens, i).ok_or("expected type name")?;
    i += 1;
    if matches!(&tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        return Err(format!("derive on generic type `{name}` is not supported"));
    }
    match keyword.as_str() {
        "struct" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let fields = parse_named_fields(g.stream())?;
                Ok(Shape::NamedStruct { name, fields })
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let n = count_tuple_fields(g.stream());
                if n != 1 {
                    return Err(format!(
                        "tuple struct `{name}` has {n} fields; only newtype structs are supported"
                    ));
                }
                Ok(Shape::NewtypeStruct { name })
            }
            _ => Err(format!("unsupported struct body for `{name}`")),
        },
        "enum" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let variants = parse_variants(g.stream())?;
                Ok(Shape::Enum { name, variants })
            }
            _ => Err(format!("expected enum body for `{name}`")),
        },
        other => Err(format!("cannot derive for `{other}` items")),
    }
}

fn ident_at(tokens: &[TokenTree], i: usize) -> Option<String> {
    match tokens.get(i) {
        Some(TokenTree::Ident(id)) => Some(id.to_string()),
        _ => None,
    }
}

/// Advances `i` past any `#[...]` attributes and a `pub` / `pub(...)` prefix.
fn skip_attrs_and_vis(tokens: &[TokenTree], i: &mut usize) {
    loop {
        match tokens.get(*i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                *i += 1; // '#'
                if matches!(tokens.get(*i), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Bracket)
                {
                    *i += 1;
                }
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                *i += 1;
                if matches!(tokens.get(*i), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
                {
                    *i += 1;
                }
            }
            _ => return,
        }
    }
}

/// Parses `name: Type, ...` field lists, returning the field names. Types are
/// skipped with angle-bracket depth tracking so `HashMap<K, V>` commas do not
/// split fields.
fn parse_named_fields(stream: TokenStream) -> Result<Vec<String>, String> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        skip_attrs_and_vis(&tokens, &mut i);
        if i >= tokens.len() {
            break;
        }
        let name = ident_at(&tokens, i).ok_or("expected field name")?;
        i += 1;
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => i += 1,
            _ => return Err(format!("expected `:` after field `{name}`")),
        }
        let mut depth = 0i32;
        while i < tokens.len() {
            match &tokens[i] {
                TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => depth -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => {
                    i += 1;
                    break;
                }
                _ => {}
            }
            i += 1;
        }
        fields.push(name);
    }
    Ok(fields)
}

fn count_tuple_fields(stream: TokenStream) -> usize {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    if tokens.is_empty() {
        return 0;
    }
    let mut depth = 0i32;
    let mut fields = 1;
    let mut trailing_comma = false;
    for t in &tokens {
        match t {
            TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => depth -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => {
                fields += 1;
                trailing_comma = true;
                continue;
            }
            _ => {}
        }
        trailing_comma = false;
    }
    if trailing_comma {
        fields -= 1;
    }
    fields
}

fn parse_variants(stream: TokenStream) -> Result<Vec<Variant>, String> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        skip_attrs_and_vis(&tokens, &mut i);
        if i >= tokens.len() {
            break;
        }
        let name = ident_at(&tokens, i).ok_or("expected variant name")?;
        i += 1;
        let kind = match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let n = count_tuple_fields(g.stream());
                if n != 1 {
                    return Err(format!(
                        "variant `{name}` has {n} unnamed fields; only newtype variants are supported"
                    ));
                }
                i += 1;
                VariantKind::Newtype
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let fields = parse_named_fields(g.stream())?;
                i += 1;
                VariantKind::Struct(fields)
            }
            _ => VariantKind::Unit,
        };
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == ',' => i += 1,
            None => {}
            Some(other) => return Err(format!("unexpected token after variant `{name}`: {other}")),
        }
        variants.push(Variant { name, kind });
    }
    Ok(variants)
}

// ---------------------------------------------------------------- codegen

fn gen_serialize(shape: &Shape) -> String {
    match shape {
        Shape::NamedStruct { name, fields } => {
            let entries: String = fields
                .iter()
                .map(|f| {
                    format!(
                        "(::std::string::String::from({f:?}), ::serde::Serialize::to_value(&self.{f})),"
                    )
                })
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::Value {{\n\
                         ::serde::Value::Obj(vec![{entries}])\n\
                     }}\n\
                 }}"
            )
        }
        Shape::NewtypeStruct { name } => format!(
            "impl ::serde::Serialize for {name} {{\n\
                 fn to_value(&self) -> ::serde::Value {{\n\
                     ::serde::Serialize::to_value(&self.0)\n\
                 }}\n\
             }}"
        ),
        Shape::Enum { name, variants } => {
            let arms: String = variants
                .iter()
                .map(|v| {
                    let vname = &v.name;
                    match &v.kind {
                        VariantKind::Unit => format!(
                            "{name}::{vname} => ::serde::Value::Str(::std::string::String::from({vname:?})),"
                        ),
                        VariantKind::Newtype => format!(
                            "{name}::{vname}(__f0) => ::serde::Value::Obj(vec![(\
                                ::std::string::String::from({vname:?}), \
                                ::serde::Serialize::to_value(__f0))]),"
                        ),
                        VariantKind::Struct(fields) => {
                            let binds = fields.join(", ");
                            let entries: String = fields
                                .iter()
                                .map(|f| {
                                    format!(
                                        "(::std::string::String::from({f:?}), ::serde::Serialize::to_value({f})),"
                                    )
                                })
                                .collect();
                            format!(
                                "{name}::{vname} {{ {binds} }} => ::serde::Value::Obj(vec![(\
                                    ::std::string::String::from({vname:?}), \
                                    ::serde::Value::Obj(vec![{entries}]))]),"
                            )
                        }
                    }
                })
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::Value {{\n\
                         match self {{ {arms} }}\n\
                     }}\n\
                 }}"
            )
        }
    }
}

fn field_getter(owner: &str, field: &str) -> String {
    format!(
        "::serde::Deserialize::from_value(__obj.iter()\
             .find(|__e| __e.0 == {field:?})\
             .map(|__e| &__e.1)\
             .unwrap_or(&::serde::Value::Null))\
             .map_err(|__e| __e.context(concat!({owner:?}, \".\", {field:?})))?"
    )
}

fn gen_deserialize(shape: &Shape) -> String {
    match shape {
        Shape::NamedStruct { name, fields } => {
            let inits: String = fields
                .iter()
                .map(|f| format!("{f}: {},", field_getter(name, f)))
                .collect();
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn from_value(__v: &::serde::Value) -> ::std::result::Result<Self, ::serde::Error> {{\n\
                         let __obj = __v.as_obj().ok_or_else(|| \
                             ::serde::Error::custom(concat!(\"expected object for \", {name:?})))?;\n\
                         ::std::result::Result::Ok({name} {{ {inits} }})\n\
                     }}\n\
                 }}"
            )
        }
        Shape::NewtypeStruct { name } => format!(
            "impl ::serde::Deserialize for {name} {{\n\
                 fn from_value(__v: &::serde::Value) -> ::std::result::Result<Self, ::serde::Error> {{\n\
                     ::std::result::Result::Ok({name}(::serde::Deserialize::from_value(__v)?))\n\
                 }}\n\
             }}"
        ),
        Shape::Enum { name, variants } => {
            let unit_arms: String = variants
                .iter()
                .filter(|v| matches!(v.kind, VariantKind::Unit))
                .map(|v| {
                    let vname = &v.name;
                    format!("{vname:?} => ::std::result::Result::Ok({name}::{vname}),")
                })
                .collect();
            let payload_arms: String = variants
                .iter()
                .filter_map(|v| {
                    let vname = &v.name;
                    match &v.kind {
                        VariantKind::Unit => None,
                        VariantKind::Newtype => Some(format!(
                            "{vname:?} => ::std::result::Result::Ok({name}::{vname}(\
                                 ::serde::Deserialize::from_value(__inner)?)),"
                        )),
                        VariantKind::Struct(fields) => {
                            let inits: String = fields
                                .iter()
                                .map(|f| format!("{f}: {},", field_getter(name, f)))
                                .collect();
                            Some(format!(
                                "{vname:?} => {{\n\
                                     let __obj = __inner.as_obj().ok_or_else(|| \
                                         ::serde::Error::custom(concat!(\"expected object payload for \", {name:?}, \"::\", {vname:?})))?;\n\
                                     ::std::result::Result::Ok({name}::{vname} {{ {inits} }})\n\
                                 }},"
                            ))
                        }
                    }
                })
                .collect();
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn from_value(__v: &::serde::Value) -> ::std::result::Result<Self, ::serde::Error> {{\n\
                         match __v {{\n\
                             ::serde::Value::Str(__s) => match __s.as_str() {{\n\
                                 {unit_arms}\n\
                                 __other => ::std::result::Result::Err(::serde::Error::custom(\
                                     format!(concat!(\"unknown \", {name:?}, \" variant `{{}}`\"), __other))),\n\
                             }},\n\
                             ::serde::Value::Obj(__fields) if __fields.len() == 1 => {{\n\
                                 let (__tag, __inner) = (&__fields[0].0, &__fields[0].1);\n\
                                 match __tag.as_str() {{\n\
                                     {payload_arms}\n\
                                     __other => ::std::result::Result::Err(::serde::Error::custom(\
                                         format!(concat!(\"unknown \", {name:?}, \" variant `{{}}`\"), __other))),\n\
                                 }}\n\
                             }},\n\
                             _ => ::std::result::Result::Err(::serde::Error::custom(\
                                 concat!(\"expected \", {name:?}, \" variant\"))),\n\
                         }}\n\
                     }}\n\
                 }}"
            )
        }
    }
}
