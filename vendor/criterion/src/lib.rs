//! Offline stand-in for `criterion`.
//!
//! Provides the API surface the workspace's benches use — `black_box`,
//! `Criterion::bench_function`, `benchmark_group` / `bench_with_input`,
//! `BenchmarkId`, and the `criterion_group!` / `criterion_main!` macros —
//! backed by a simple wall-clock timer: warm up briefly, then run batches
//! until enough time has accumulated and report mean time per iteration.
//! No statistics, plots, or baselines; the point is that `cargo bench`
//! compiles and produces readable numbers offline.

use std::time::{Duration, Instant};

/// Prevents the optimizer from deleting a benchmarked computation.
pub fn black_box<T>(value: T) -> T {
    std::hint::black_box(value)
}

/// Top-level harness handle.
pub struct Criterion {
    measurement_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            measurement_time: Duration::from_millis(400),
        }
    }
}

impl Criterion {
    /// Registers and immediately runs one benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let mut bencher = Bencher {
            measurement_time: self.measurement_time,
            result: None,
        };
        f(&mut bencher);
        report(name, &bencher);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.to_string(),
        }
    }
}

/// A group of benchmarks sharing a name prefix.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API compatibility; the stand-in sizes runs by time, not
    /// by sample count.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Runs one benchmark in the group with an input value.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut bencher = Bencher {
            measurement_time: self.criterion.measurement_time,
            result: None,
        };
        f(&mut bencher, input);
        report(&format!("{}/{}", self.name, id.0), &bencher);
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Identifies one benchmark within a group.
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// An id from a function name and a parameter.
    pub fn new(name: impl std::fmt::Display, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId(format!("{name}/{parameter}"))
    }

    /// An id from just the parameter value.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId(parameter.to_string())
    }
}

/// Runs and times the benchmarked closure.
pub struct Bencher {
    measurement_time: Duration,
    result: Option<(Duration, u64)>,
}

impl Bencher {
    /// Times `f`, accumulating iterations until the measurement budget is
    /// spent (at least 10 iterations, with a short warm-up).
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut f: F) {
        for _ in 0..3 {
            black_box(f());
        }
        let budget = self.measurement_time;
        let start = Instant::now();
        let mut iters = 0u64;
        loop {
            black_box(f());
            iters += 1;
            if (iters >= 10 && start.elapsed() >= budget) || iters >= 10_000_000 {
                break;
            }
        }
        self.result = Some((start.elapsed(), iters));
    }
}

fn report(name: &str, bencher: &Bencher) {
    match bencher.result {
        Some((elapsed, iters)) => {
            let per_iter = elapsed.as_secs_f64() / iters as f64;
            println!(
                "{name:<40} time: [{}]  ({iters} iterations)",
                format_time(per_iter)
            );
        }
        None => println!("{name:<40} (no measurement)"),
    }
}

fn format_time(secs: f64) -> String {
    if secs < 1e-6 {
        format!("{:.2} ns", secs * 1e9)
    } else if secs < 1e-3 {
        format!("{:.2} µs", secs * 1e6)
    } else if secs < 1.0 {
        format!("{:.2} ms", secs * 1e3)
    } else {
        format!("{secs:.3} s")
    }
}

/// Collects benchmark functions into one group runner, like the real crate.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Emits `main` for a `harness = false` bench target.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_and_reports() {
        let mut c = Criterion {
            measurement_time: Duration::from_millis(5),
        };
        c.bench_function("noop", |b| b.iter(|| black_box(1 + 1)));
        let mut group = c.benchmark_group("group");
        group.sample_size(10);
        group.bench_with_input(BenchmarkId::from_parameter("x"), &3u32, |b, &x| {
            b.iter(|| black_box(x * 2))
        });
        group.finish();
    }
}
