//! Offline stand-in for `proptest`.
//!
//! Implements the subset of the proptest surface this workspace's property
//! tests use: the `proptest!` macro (with optional `#![proptest_config]`),
//! `prop_assert!`/`prop_assert_eq!`, `prop_oneof!`, `Just`, `any::<T>()`,
//! range and tuple strategies, `prop::collection::vec`, `.prop_map`, and a
//! tiny `[a-z]{m,n}`-style string strategy.
//!
//! Differences from the real crate: no shrinking (failures report the case
//! number instead of a minimized input — cases are deterministic per test
//! name, so a failure always reproduces), and the default case count is 64
//! (overridable with `PROPTEST_CASES` or `ProptestConfig::with_cases`).

use std::marker::PhantomData;
use std::ops::Range;

/// Re-exports that mirror `proptest::prelude::*`.
pub mod prelude {
    /// Mirrors the real prelude's `prop` module alias (`prop::collection::vec`).
    pub use crate as prop;
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_oneof, proptest, Arbitrary, Just, ProptestConfig,
        Strategy, TestCaseError,
    };
}

/// Module path compatibility: `prop::collection::vec`.
pub mod collection {
    use super::*;

    /// Inclusive-exclusive size specification for [`vec`].
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi: usize, // exclusive; lo + 1 for exact sizes
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n + 1 }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            SizeRange {
                lo: r.start,
                hi: r.end.max(r.start + 1),
            }
        }
    }

    /// Strategy producing `Vec`s whose length is drawn from `size` and whose
    /// elements are drawn from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let span = (self.size.hi - self.size.lo) as u64;
            let len = self.size.lo + rng.below(span.max(1)) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

// ------------------------------------------------------------------ rng

/// Deterministic xoshiro256** generator; seeded per (test name, case index).
pub struct TestRng {
    state: [u64; 4],
}

impl TestRng {
    /// Expands a 64-bit seed into the full state with SplitMix64.
    pub fn new(seed: u64) -> Self {
        let mut sm = seed;
        let mut next = || {
            sm = sm.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        };
        TestRng {
            state: [next(), next(), next(), next()],
        }
    }

    /// The next raw 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        let [s0, s1, s2, s3] = self.state;
        let result = s1.wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = s1 << 17;
        let mut s = [s0, s1, s2, s3];
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        self.state = s;
        result
    }

    /// A uniform f64 in `[0, 1)` using the top 53 bits.
    pub fn uniform(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// A uniform u64 in `[0, n)`; returns 0 when `n == 0`.
    pub fn below(&mut self, n: u64) -> u64 {
        if n == 0 {
            0
        } else {
            self.next_u64() % n
        }
    }
}

// ------------------------------------------------------------- strategies

/// A generator of random values of one type.
pub trait Strategy {
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }

    /// Type-erases the strategy (used by `prop_oneof!`).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

/// A type-erased strategy.
pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

impl<S: Strategy + ?Sized> Strategy for Box<S> {
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;

    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// Strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! range_strategy_uint {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                let span = (self.end as u64).saturating_sub(self.start as u64);
                self.start + rng.below(span.max(1)) as $t
            }
        }
    )*};
}
range_strategy_uint!(u8, u16, u32, u64, usize);

macro_rules! range_strategy_int {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                let span = (self.end as i64).wrapping_sub(self.start as i64) as u64;
                (self.start as i64).wrapping_add(rng.below(span.max(1)) as i64) as $t
            }
        }
    )*};
}
range_strategy_int!(i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> f64 {
        if self.end <= self.start {
            return self.start;
        }
        self.start + rng.uniform() * (self.end - self.start)
    }
}

/// Types with a canonical full-range strategy, for [`any`].
pub trait Arbitrary: Sized {
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! arbitrary_via_u64 {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
arbitrary_via_u64!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        rng.uniform()
    }
}

/// Strategy for [`any`].
pub struct AnyStrategy<T>(PhantomData<T>);

/// The full-range strategy for `T`, e.g. `any::<u64>()`.
pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
    AnyStrategy(PhantomData)
}

impl<T: Arbitrary> Strategy for AnyStrategy<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                #[allow(non_snake_case)]
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}
tuple_strategy!(A, B);
tuple_strategy!(A, B, C);
tuple_strategy!(A, B, C, D);
tuple_strategy!(A, B, C, D, E);
tuple_strategy!(A, B, C, D, E, F);

/// Uniform choice between type-erased alternatives; built by `prop_oneof!`.
pub struct OneOf<T> {
    arms: Vec<BoxedStrategy<T>>,
}

impl<T> OneOf<T> {
    pub fn new(arms: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        OneOf { arms }
    }
}

impl<T> Strategy for OneOf<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        let i = rng.below(self.arms.len() as u64) as usize;
        self.arms[i].generate(rng)
    }
}

/// Minimal pattern strategy so string-literal strategies like
/// `"[a-z]{1,12}"` work: literals, one-level character classes, and
/// `{m}` / `{m,n}` repeat counts.
impl Strategy for &str {
    type Value = String;

    fn generate(&self, rng: &mut TestRng) -> String {
        let mut out = String::new();
        let chars: Vec<char> = self.chars().collect();
        let mut i = 0;
        while i < chars.len() {
            let choices: Vec<char> = if chars[i] == '[' {
                let close = chars[i..]
                    .iter()
                    .position(|&c| c == ']')
                    .map(|p| i + p)
                    .expect("unclosed `[` in pattern strategy");
                let mut set = Vec::new();
                let mut j = i + 1;
                while j < close {
                    if j + 2 < close && chars[j + 1] == '-' {
                        let (lo, hi) = (chars[j] as u32, chars[j + 2] as u32);
                        set.extend((lo..=hi).filter_map(char::from_u32));
                        j += 3;
                    } else {
                        set.push(chars[j]);
                        j += 1;
                    }
                }
                i = close + 1;
                set
            } else {
                let c = chars[i];
                i += 1;
                vec![c]
            };
            let (lo, hi) = if chars.get(i) == Some(&'{') {
                let close = chars[i..]
                    .iter()
                    .position(|&c| c == '}')
                    .map(|p| i + p)
                    .expect("unclosed `{` in pattern strategy");
                let spec: String = chars[i + 1..close].iter().collect();
                i = close + 1;
                match spec.split_once(',') {
                    Some((a, b)) => (
                        a.trim().parse::<usize>().expect("repeat lower bound"),
                        b.trim().parse::<usize>().expect("repeat upper bound"),
                    ),
                    None => {
                        let n = spec.trim().parse::<usize>().expect("repeat count");
                        (n, n)
                    }
                }
            } else {
                (1, 1)
            };
            let n = lo + rng.below((hi - lo + 1) as u64) as usize;
            for _ in 0..n {
                let k = rng.below(choices.len() as u64) as usize;
                out.push(choices[k]);
            }
        }
        out
    }
}

// ----------------------------------------------------------------- runner

/// Per-`proptest!`-block configuration.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases per test.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// A failed property assertion (from `prop_assert!`-family macros or an
/// explicit `Err` return).
#[derive(Debug)]
pub struct TestCaseError(String);

impl TestCaseError {
    /// Creates a failure with the given message.
    pub fn fail(message: impl Into<String>) -> Self {
        TestCaseError(message.into())
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

fn fnv1a(s: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in s.as_bytes() {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Drives one property test: `PROPTEST_CASES`-or-config cases, each with an
/// RNG deterministically seeded from the test name and case index, so any
/// failure reproduces by rerunning the same test.
pub fn run_proptest<F: FnMut(&mut TestRng, u32)>(config: &ProptestConfig, name: &str, mut case: F) {
    let cases = std::env::var("PROPTEST_CASES")
        .ok()
        .and_then(|v| v.parse::<u32>().ok())
        .unwrap_or(config.cases);
    for index in 0..cases {
        let mut rng =
            TestRng::new(fnv1a(name) ^ (u64::from(index)).wrapping_mul(0x9e37_79b9_7f4a_7c15));
        case(&mut rng, index);
    }
}

/// The test-definition macro; mirrors proptest's `arg in strategy` grammar.
#[macro_export]
macro_rules! proptest {
    ( #![proptest_config($config:expr)] $($rest:tt)* ) => {
        $crate::__proptest_impl! { config = ($config); $($rest)* }
    };
    ( $($rest:tt)* ) => {
        $crate::__proptest_impl! { config = ($crate::ProptestConfig::default()); $($rest)* }
    };
}

/// Implementation detail of [`proptest!`]; the config is threaded through
/// explicitly so it can be referenced inside the per-test repetition.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (
        config = ($config:expr);
        $(
            $(#[$meta:meta])*
            fn $name:ident($($arg:pat in $strategy:expr),* $(,)?) $body:block
        )+
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __config = $config;
                $crate::run_proptest(&__config, stringify!($name), |__rng, __case| {
                    $(let $arg = $crate::Strategy::generate(&($strategy), __rng);)*
                    let __result: ::std::result::Result<(), $crate::TestCaseError> = (|| {
                        $body
                        #[allow(unreachable_code)]
                        ::std::result::Result::Ok(())
                    })();
                    if let ::std::result::Result::Err(__e) = __result {
                        panic!("proptest {} failed on case {}: {}", stringify!($name), __case, __e);
                    }
                });
            }
        )+
    };
}

/// Uniform choice among strategies yielding the same type.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::OneOf::new(vec![$($crate::Strategy::boxed($arm)),+])
    };
}

/// Asserts inside a proptest body; failures abort only the current case's
/// closure via an `Err` return, like the real crate.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(
                format!("assertion failed: {}", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// Equality assertion inside a proptest body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        if !(__l == __r) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
                stringify!($left), stringify!($right), __l, __r,
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (__l, __r) = (&$left, &$right);
        if !(__l == __r) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "{}\n  left: {:?}\n right: {:?}",
                format!($($fmt)+), __l, __r,
            )));
        }
    }};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_and_vec_respect_bounds() {
        let mut rng = crate::TestRng::new(1);
        for _ in 0..1000 {
            let v = crate::Strategy::generate(&(5u32..17), &mut rng);
            assert!((5..17).contains(&v));
            let f = crate::Strategy::generate(&(-2.0f64..3.0), &mut rng);
            assert!((-2.0..3.0).contains(&f));
        }
        let xs = crate::Strategy::generate(&prop::collection::vec(0u64..10, 3..6), &mut rng);
        assert!((3..6).contains(&xs.len()));
        let exact = crate::Strategy::generate(&prop::collection::vec(0u64..10, 4), &mut rng);
        assert_eq!(exact.len(), 4);
    }

    #[test]
    fn pattern_strategy_shapes() {
        let mut rng = crate::TestRng::new(2);
        for _ in 0..200 {
            let s = crate::Strategy::generate(&"[a-z]{1,12}", &mut rng);
            assert!((1..=12).contains(&s.len()));
            assert!(s.chars().all(|c| c.is_ascii_lowercase()));
        }
        assert_eq!(crate::Strategy::generate(&"abc", &mut rng), "abc");
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// The macro itself: patterns, maps, oneof, tuples, assertions.
        #[test]
        fn macro_smoke(mut n in 1u64..50, pair in (0u32..4, any::<bool>()), choice in prop_oneof![
            Just(1u8),
            (2u8..4).prop_map(|x| x),
        ]) {
            n += 1;
            prop_assert!(n >= 2, "n was {}", n);
            prop_assert!(pair.0 < 4);
            prop_assert_eq!(u64::from(choice).min(3), u64::from(choice));
            if false {
                return Ok(());
            }
        }
    }
}
