//! Offline stand-in for `serde`.
//!
//! The build environment for this repository has no package registry, so the
//! real `serde` cannot be fetched. This crate provides the subset the
//! workspace uses with the same surface: `Serialize` / `Deserialize` traits,
//! `#[derive(Serialize, Deserialize)]`, and enough impls for the primitive,
//! container, and string types the simulator serializes.
//!
//! Instead of the visitor architecture, both traits go through a concrete
//! JSON-like [`Value`] tree: serializing produces a `Value`, deserializing
//! consumes one. `serde_json` (also vendored) converts between `Value` and
//! text. Derived representations match serde's defaults so any JSON written
//! by the real serde round-trips: unit enum variants serialize as `"Name"`,
//! newtype and struct variants as `{"Name": ...}`, newtype structs as their
//! inner value, and structs as objects in field order.

// Lets the `::serde::...` paths the derive macros emit resolve even when the
// expansion happens inside this crate (e.g. the tests below).
extern crate self as serde;

pub use serde_derive::{Deserialize, Serialize};

/// A JSON value tree: the common currency between the two traits.
///
/// Objects preserve insertion order so derived serialization is stable, which
/// the benchmarks' byte-identical determinism checks rely on.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    Null,
    Bool(bool),
    U64(u64),
    I64(i64),
    F64(f64),
    Str(String),
    Arr(Vec<Value>),
    Obj(Vec<(String, Value)>),
}

impl Value {
    /// The object entries, if this value is an object.
    pub fn as_obj(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Obj(entries) => Some(entries),
            _ => None,
        }
    }

    /// Looks up a field of an object value.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_obj()?
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v)
    }
}

/// Deserialization error: a message plus an outermost-first context path.
#[derive(Debug, Clone)]
pub struct Error {
    message: String,
    path: Vec<String>,
}

impl Error {
    /// Creates an error from a message.
    pub fn custom(message: impl Into<String>) -> Self {
        Error {
            message: message.into(),
            path: Vec::new(),
        }
    }

    /// Prepends a location (e.g. `"Trace.requests"`) to the error path.
    pub fn context(mut self, location: &str) -> Self {
        self.path.insert(0, location.to_string());
        self
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.path.is_empty() {
            write!(f, "{}", self.message)
        } else {
            write!(f, "{}: {}", self.path.join("."), self.message)
        }
    }
}

impl std::error::Error for Error {}

/// Types that can be turned into a [`Value`].
pub trait Serialize {
    /// Converts `self` into a JSON value tree.
    fn to_value(&self) -> Value;
}

/// Types that can be rebuilt from a [`Value`].
pub trait Deserialize: Sized {
    /// Rebuilds `Self` from a JSON value tree.
    fn from_value(value: &Value) -> Result<Self, Error>;
}

// ------------------------------------------------------------- Serialize

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

macro_rules! serialize_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::U64(*self as u64)
            }
        }
    )*};
}
serialize_uint!(u8, u16, u32, u64, usize);

macro_rules! serialize_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::I64(*self as i64)
            }
        }
    )*};
}
serialize_int!(i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::F64(*self)
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::F64(f64::from(*self))
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Arr(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Arr(self.iter().map(Serialize::to_value).collect())
    }
}

macro_rules! serialize_tuple {
    ($(($($name:ident . $idx:tt),+))*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_value(&self) -> Value {
                Value::Arr(vec![$(self.$idx.to_value()),+])
            }
        }
    )*};
}
serialize_tuple! {
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(v) => v.to_value(),
            None => Value::Null,
        }
    }
}

// ----------------------------------------------------------- Deserialize

impl Deserialize for bool {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Bool(b) => Ok(*b),
            other => Err(Error::custom(format!("expected bool, got {other:?}"))),
        }
    }
}

fn value_as_i128(value: &Value) -> Result<i128, Error> {
    match value {
        Value::U64(n) => Ok(*n as i128),
        Value::I64(n) => Ok(*n as i128),
        Value::F64(f) if f.fract() == 0.0 && f.abs() < 2f64.powi(63) => Ok(*f as i128),
        other => Err(Error::custom(format!("expected integer, got {other:?}"))),
    }
}

macro_rules! deserialize_int {
    ($($t:ty),*) => {$(
        impl Deserialize for $t {
            fn from_value(value: &Value) -> Result<Self, Error> {
                let wide = value_as_i128(value)?;
                <$t>::try_from(wide)
                    .map_err(|_| Error::custom(format!(
                        "integer {wide} out of range for {}", stringify!($t))))
            }
        }
    )*};
}
deserialize_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Deserialize for f64 {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::F64(f) => Ok(*f),
            Value::U64(n) => Ok(*n as f64),
            Value::I64(n) => Ok(*n as f64),
            other => Err(Error::custom(format!("expected number, got {other:?}"))),
        }
    }
}

impl Deserialize for f32 {
    fn from_value(value: &Value) -> Result<Self, Error> {
        f64::from_value(value).map(|f| f as f32)
    }
}

impl Deserialize for String {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Str(s) => Ok(s.clone()),
            other => Err(Error::custom(format!("expected string, got {other:?}"))),
        }
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Arr(items) => items
                .iter()
                .enumerate()
                .map(|(i, v)| T::from_value(v).map_err(|e| e.context(&format!("[{i}]"))))
                .collect(),
            other => Err(Error::custom(format!("expected array, got {other:?}"))),
        }
    }
}

macro_rules! deserialize_tuple {
    ($(($($name:ident . $idx:tt),+ ; $len:expr))*) => {$(
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn from_value(value: &Value) -> Result<Self, Error> {
                match value {
                    Value::Arr(items) if items.len() == $len => Ok((
                        $($name::from_value(&items[$idx])
                            .map_err(|e| e.context(&format!("[{}]", $idx)))?,)+
                    )),
                    other => Err(Error::custom(format!(
                        "expected array of length {}, got {other:?}", $len
                    ))),
                }
            }
        }
    )*};
}
deserialize_tuple! {
    (A.0, B.1 ; 2)
    (A.0, B.1, C.2 ; 3)
    (A.0, B.1, C.2, D.3 ; 4)
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        assert_eq!(u64::from_value(&17u32.to_value()).unwrap(), 17);
        assert_eq!(i32::from_value(&Value::I64(-4)).unwrap(), -4);
        assert_eq!(f64::from_value(&Value::U64(3)).unwrap(), 3.0);
        assert!(u8::from_value(&Value::U64(300)).is_err());
        assert_eq!(Option::<u32>::from_value(&Value::Null).unwrap(), None);
        let v = vec!["a".to_string(), "b".to_string()].to_value();
        assert_eq!(Vec::<String>::from_value(&v).unwrap(), vec!["a", "b"]);
    }

    #[test]
    fn derive_named_struct_and_enums() {
        #[derive(Debug, PartialEq, Serialize, Deserialize)]
        struct Point {
            x: u32,
            label: String,
        }
        #[derive(Debug, PartialEq, Serialize, Deserialize)]
        struct Wrapper(u64);
        #[derive(Debug, PartialEq, Serialize, Deserialize)]
        enum Mixed {
            Unit,
            Boxed(Wrapper),
            Both { a: f64, b: bool },
        }

        let p = Point {
            x: 3,
            label: "hi".into(),
        };
        let v = p.to_value();
        assert_eq!(v.get("x"), Some(&Value::U64(3)));
        assert_eq!(Point::from_value(&v).unwrap(), p);

        assert_eq!(Wrapper(9).to_value(), Value::U64(9));
        assert_eq!(Wrapper::from_value(&Value::U64(9)).unwrap(), Wrapper(9));

        for m in [
            Mixed::Unit,
            Mixed::Boxed(Wrapper(5)),
            Mixed::Both { a: 1.5, b: true },
        ] {
            assert_eq!(Mixed::from_value(&m.to_value()).unwrap(), m);
        }
        assert!(Mixed::from_value(&Value::Str("Nope".into())).is_err());
    }
}
