//! `llumnix-cli` — run serving experiments from the command line.
//!
//! ```text
//! llumnix-cli trace-gen --preset M-M --requests 10000 --rate 8 --out trace.json
//! llumnix-cli run --preset M-M --rate 8 --scheduler llumnix --instances 16
//! llumnix-cli run --trace trace.json --scheduler infaas++ --instances 16
//! llumnix-cli compare --preset L-L --rate 4 --instances 16
//! llumnix-cli info
//! ```

use std::collections::HashMap;
use std::process::ExitCode;

use llumnix::metrics::{fmt_secs, sparkline_annotated, to_csv, LatencyReport, Table};
use llumnix::model::{CalibratedCostModel, CostModel, DecodeBatch, InstanceSpec};
use llumnix::prelude::*;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(command) = args.first() else {
        eprintln!("{USAGE}");
        return ExitCode::FAILURE;
    };
    let flags = parse_flags(&args[1..]);
    let result = match command.as_str() {
        "trace-gen" => cmd_trace_gen(&flags),
        "run" => cmd_run(&flags),
        "compare" => cmd_compare(&flags),
        "sweep" => cmd_sweep(&flags),
        "info" => cmd_info(),
        "help" | "--help" | "-h" => {
            println!("{USAGE}");
            Ok(())
        }
        other => Err(format!("unknown command `{other}`\n{USAGE}")),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

const USAGE: &str = "\
llumnix-cli — Llumnix serving experiments

USAGE:
  llumnix-cli trace-gen --preset <NAME> --requests <N> --rate <R> [--cv <CV>]
                        [--high-frac <F>] [--seed <S>] --out <FILE>
  llumnix-cli run       (--preset <NAME> --rate <R> [--requests <N>] [--cv <CV>]
                         [--high-frac <F>] | --trace <FILE>)
                        [--scheduler <KIND>] [--instances <N>] [--autoscale <MAX>]
                        [--seed <S>] [--json <FILE>]
  llumnix-cli compare   --preset <NAME> --rate <R> [--requests <N>] [--instances <N>]
  llumnix-cli sweep     --preset <NAME> --rates <R1,R2,...> [--requests <N>]
                        [--instances <N>] [--csv <FILE>]
  llumnix-cli info

PRESETS:    S-S M-M L-L S-L L-S ShareGPT BurstGPT
SCHEDULERS: round-robin infaas++ llumnix-base llumnix centralized";

fn parse_flags(args: &[String]) -> HashMap<String, String> {
    let mut flags = HashMap::new();
    let mut i = 0;
    while i < args.len() {
        if let Some(key) = args[i].strip_prefix("--") {
            if i + 1 < args.len() && !args[i + 1].starts_with("--") {
                flags.insert(key.to_string(), args[i + 1].clone());
                i += 2;
            } else {
                flags.insert(key.to_string(), String::from("true"));
                i += 1;
            }
        } else {
            i += 1;
        }
    }
    flags
}

fn get<T: std::str::FromStr>(flags: &HashMap<String, String>, key: &str, default: T) -> T {
    flags
        .get(key)
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn scheduler_by_name(name: &str) -> Result<SchedulerKind, String> {
    Ok(match name {
        "round-robin" | "rr" => SchedulerKind::RoundRobin,
        "infaas++" | "infaas" => SchedulerKind::InfaasPlusPlus,
        "llumnix-base" => SchedulerKind::LlumnixBase,
        "llumnix" => SchedulerKind::Llumnix,
        "centralized" => SchedulerKind::Centralized,
        other => return Err(format!("unknown scheduler `{other}`")),
    })
}

fn build_trace_from_flags(flags: &HashMap<String, String>) -> Result<Trace, String> {
    if let Some(path) = flags.get("trace") {
        let body = std::fs::read_to_string(path).map_err(|e| format!("read {path}: {e}"))?;
        return serde_json::from_str(&body).map_err(|e| format!("parse {path}: {e}"));
    }
    let preset = flags
        .get("preset")
        .ok_or("need --preset <NAME> or --trace <FILE>")?;
    let rate: f64 = get(flags, "rate", 0.0);
    if rate <= 0.0 {
        return Err("need --rate <R> with --preset".into());
    }
    let n: usize = get(flags, "requests", 10_000);
    let cv: f64 = get(flags, "cv", 0.0);
    let arrivals = if cv > 0.0 {
        Arrivals::gamma(rate, cv)
    } else {
        Arrivals::poisson(rate)
    };
    let high: f64 = get(flags, "high-frac", 0.0);
    let seed: u64 = get(flags, "seed", 20240710);
    let spec = trace_presets::by_name(preset, n, arrivals)
        .ok_or_else(|| format!("unknown preset `{preset}`"))?
        .with_high_priority_fraction(high);
    Ok(spec.generate(&SimRng::new(seed)))
}

fn cmd_trace_gen(flags: &HashMap<String, String>) -> Result<(), String> {
    let trace = build_trace_from_flags(flags)?;
    let out = flags.get("out").ok_or("need --out <FILE>")?;
    let body = serde_json::to_string(&trace).map_err(|e| e.to_string())?;
    std::fs::write(out, body).map_err(|e| format!("write {out}: {e}"))?;
    println!(
        "wrote {} requests ({:.0}s span, mean in/out {:.0}/{:.0} tokens) to {out}",
        trace.len(),
        trace.span().as_secs_f64(),
        trace.mean_input_len(),
        trace.mean_output_len()
    );
    Ok(())
}

fn report_table(label: &str, report: &LatencyReport, out: &ServingOutput) -> Table {
    let mut t = Table::new(
        format!("{label}: {} requests served", report.e2e.count),
        &["metric", "mean", "p50", "p99"],
    );
    for (name, s) in [
        ("e2e", &report.e2e),
        ("prefill", &report.prefill),
        ("decode/token", &report.decode),
    ] {
        t.row(&[
            name.to_string(),
            fmt_secs(s.mean),
            fmt_secs(s.p50),
            fmt_secs(s.p99),
        ]);
    }
    t.row(&[
        "preemption loss".into(),
        fmt_secs(report.preemption_loss.mean),
        String::new(),
        fmt_secs(report.preemption_loss.p99),
    ]);
    t.row(&[
        "migrations".into(),
        format!("{}", out.migration_stats.committed),
        String::new(),
        String::new(),
    ]);
    t.row(&[
        "avg instances".into(),
        format!("{:.2}", out.avg_instances),
        String::new(),
        String::new(),
    ]);
    t
}

fn cmd_run(flags: &HashMap<String, String>) -> Result<(), String> {
    let trace = build_trace_from_flags(flags)?;
    let kind = scheduler_by_name(
        flags
            .get("scheduler")
            .map(String::as_str)
            .unwrap_or("llumnix"),
    )?;
    let instances: u32 = get(flags, "instances", 16);
    let mut config = ServingConfig::new(kind, instances);
    let autoscale_max: u32 = get(flags, "autoscale", 0);
    if autoscale_max > 0 {
        config = config.with_autoscale(AutoScaleConfig::paper_default(autoscale_max));
    }
    let out = run_serving(config, trace);
    let report = LatencyReport::from_records(&out.records);
    println!("{}", report_table(kind.label(), &report, &out).render());
    println!(
        "fleet size      {}",
        sparkline_annotated(&out.instances, 48)
    );
    println!("queued requests {}", sparkline_annotated(&out.queued, 48));
    println!(
        "fragmentation   {}",
        sparkline_annotated(&out.fragmentation, 48)
    );
    if out.aborted > 0 {
        println!("warning: {} requests aborted", out.aborted);
    }
    if let Some(path) = flags.get("csv") {
        let csv = to_csv(&[
            &out.instances,
            &out.queued,
            &out.fragmentation,
            &out.free_blocks,
        ]);
        std::fs::write(path, csv).map_err(|e| format!("write {path}: {e}"))?;
        println!("wrote timeline CSV to {path}");
    }
    if let Some(path) = flags.get("json") {
        let body = serde_json::to_string_pretty(&report).map_err(|e| e.to_string())?;
        std::fs::write(path, body).map_err(|e| format!("write {path}: {e}"))?;
        println!("wrote JSON report to {path}");
    }
    Ok(())
}

fn cmd_compare(flags: &HashMap<String, String>) -> Result<(), String> {
    let trace = build_trace_from_flags(flags)?;
    let instances: u32 = get(flags, "instances", 16);
    let mut table = Table::new(
        format!(
            "scheduler comparison: {} requests on {instances} instances",
            trace.len()
        ),
        &[
            "scheduler",
            "e2e mean/p99",
            "prefill mean/p99",
            "decode mean/p99",
            "preempt",
            "migr",
        ],
    );
    for kind in [
        SchedulerKind::RoundRobin,
        SchedulerKind::InfaasPlusPlus,
        SchedulerKind::LlumnixBase,
        SchedulerKind::Llumnix,
    ] {
        let out = run_serving(ServingConfig::new(kind, instances), trace.clone());
        let r = LatencyReport::from_records(&out.records);
        table.row(&[
            kind.label().to_string(),
            format!("{} / {}", fmt_secs(r.e2e.mean), fmt_secs(r.e2e.p99)),
            format!("{} / {}", fmt_secs(r.prefill.mean), fmt_secs(r.prefill.p99)),
            format!("{} / {}", fmt_secs(r.decode.mean), fmt_secs(r.decode.p99)),
            format!("{}", r.total_preemptions),
            format!("{}", out.migration_stats.committed),
        ]);
    }
    println!("{}", table.render());
    Ok(())
}

fn cmd_sweep(flags: &HashMap<String, String>) -> Result<(), String> {
    let preset = flags.get("preset").ok_or("need --preset <NAME>")?;
    let rates: Vec<f64> = flags
        .get("rates")
        .ok_or("need --rates <R1,R2,...>")?
        .split(',')
        .filter_map(|s| s.trim().parse().ok())
        .collect();
    if rates.is_empty() {
        return Err("no parsable rates in --rates".into());
    }
    let n: usize = get(flags, "requests", 10_000);
    let instances: u32 = get(flags, "instances", 16);
    let seed: u64 = get(flags, "seed", 20240710);
    let mut table = Table::new(
        format!("rate sweep: {preset}, {n} requests, {instances} instances"),
        &[
            "rate",
            "scheduler",
            "e2e mean",
            "prefill p99",
            "decode p99",
            "preempt",
            "migr",
        ],
    );
    let mut csv = String::from(
        "rate,scheduler,e2e_mean,e2e_p99,prefill_mean,prefill_p99,decode_mean,decode_p99,preemptions,migrations\n",
    );
    for &rate in &rates {
        let spec = trace_presets::by_name(preset, n, Arrivals::poisson(rate))
            .ok_or_else(|| format!("unknown preset `{preset}`"))?;
        let trace = spec.generate(&SimRng::new(seed));
        for kind in [SchedulerKind::InfaasPlusPlus, SchedulerKind::Llumnix] {
            let out = run_serving(ServingConfig::new(kind, instances), trace.clone());
            let r = LatencyReport::from_records(&out.records);
            table.row(&[
                format!("{rate}"),
                kind.label().to_string(),
                fmt_secs(r.e2e.mean),
                fmt_secs(r.prefill.p99),
                fmt_secs(r.decode.p99),
                format!("{}", r.total_preemptions),
                format!("{}", out.migration_stats.committed),
            ]);
            csv.push_str(&format!(
                "{rate},{},{},{},{},{},{},{},{},{}\n",
                kind.label(),
                r.e2e.mean,
                r.e2e.p99,
                r.prefill.mean,
                r.prefill.p99,
                r.decode.mean,
                r.decode.p99,
                r.total_preemptions,
                out.migration_stats.committed
            ));
        }
    }
    println!("{}", table.render());
    if let Some(path) = flags.get("csv") {
        std::fs::write(path, csv).map_err(|e| format!("write {path}: {e}"))?;
        println!("wrote sweep CSV to {path}");
    }
    Ok(())
}

fn cmd_info() -> Result<(), String> {
    let mut t = Table::new(
        "instance types",
        &[
            "model",
            "gpus",
            "kv capacity (tokens)",
            "blocks",
            "lone decode step",
            "full decode step",
        ],
    );
    for spec in [
        InstanceSpec::llama_7b_a10(),
        InstanceSpec::llama_30b_4xa10(),
    ] {
        let cost = CalibratedCostModel::for_model(&spec.model);
        let lone = cost.decode_step(DecodeBatch {
            num_seqs: 1,
            total_tokens: 256,
        });
        let full = cost.decode_step(DecodeBatch {
            num_seqs: 32,
            total_tokens: spec.geometry.capacity_tokens() as u64,
        });
        t.row(&[
            spec.model.name.clone(),
            format!("{}", spec.model.tensor_parallel),
            format!("{}", spec.geometry.capacity_tokens()),
            format!("{}", spec.geometry.total_blocks),
            format!("{lone}"),
            format!("{full}"),
        ]);
    }
    println!("{}", t.render());
    println!("trace presets: S-S M-M L-L S-L L-S ShareGPT BurstGPT (paper Table 1)");
    Ok(())
}
