//! # llumnix-rs
//!
//! A Rust reproduction of **Llumnix: Dynamic Scheduling for Large Language
//! Model Serving** (OSDI 2024). Llumnix reschedules LLM inference requests
//! across serving instances at runtime — like an OS context-switching
//! processes across cores — using a live migration mechanism for requests
//! and their KV-cache state, a distributed scheduling architecture
//! (global scheduler + per-instance llumlets), and a unified dynamic policy
//! built on *virtual usage* and *freeness*.
//!
//! Because no GPUs are available in this environment, the serving substrate
//! (a vLLM-like engine: continuous batching, paged KV blocks, preemption) is
//! a deterministic discrete-event simulation with step latencies calibrated
//! to the paper's measurements — the same substitution the paper itself uses
//! for its scalability study (§6.6). The Llumnix logic on top (Algorithm 1,
//! the Figure 7 migration handshake, dispatch/pairing/auto-scaling) is
//! implemented faithfully.
//!
//! ## Quick start
//!
//! ```
//! use llumnix::prelude::*;
//!
//! // A small trace: 50 requests at 2 req/s, Medium-Medium lengths.
//! let spec = trace_presets::by_name("M-M", 50, Arrivals::poisson(2.0)).unwrap();
//! let trace = spec.generate(&SimRng::new(42));
//!
//! // Serve it with Llumnix on 4 LLaMA-7B instances.
//! let config = ServingConfig::new(SchedulerKind::Llumnix, 4);
//! let out = run_serving(config, trace);
//! let report = LatencyReport::from_records(&out.records);
//! assert_eq!(report.e2e.count, 50);
//! println!("mean e2e latency: {:.2}s", report.e2e.mean);
//! ```
//!
//! ## Crate map
//!
//! | module | contents |
//! |---|---|
//! | [`sim`] | deterministic event kernel: time, queue, RNG |
//! | [`model`] | calibrated cost/memory/transfer models (LLaMA on A10) |
//! | [`engine`] | vLLM-like instance engine |
//! | [`migration`] | live-migration coordinator and baselines |
//! | [`faults`] | seeded fault plans: crashes, stragglers, link outages |
//! | [`core`] | virtual usage, llumlets, global scheduling, serving sim |
//! | [`workload`] | Table 1 length distributions, arrivals, traces |
//! | [`metrics`] | records, percentiles, timelines, reports |

#![forbid(unsafe_code)]
#![deny(rust_2018_idioms)]

pub use llumnix_core as core;
pub use llumnix_engine as engine;
pub use llumnix_faults as faults;
pub use llumnix_metrics as metrics;
pub use llumnix_migration as migration;
pub use llumnix_model as model;
pub use llumnix_sim as sim;
pub use llumnix_workload as workload;

/// The most common imports for building experiments.
pub mod prelude {
    pub use llumnix_core::{
        run_serving, AutoScaleConfig, FailureSpec, FaultPlan, FaultPlanConfig, HeadroomConfig,
        MigrationThresholds, SchedulerKind, ServingConfig, ServingOutput, ServingSim, SimSnapshot,
    };
    pub use llumnix_engine::{EngineConfig, InstanceId, Priority, PriorityPair, RequestId};
    pub use llumnix_metrics::{
        fmt_secs, LatencyReport, RecordPriority, Summary, Table, TimeSeries,
    };
    pub use llumnix_migration::{reschedule_downtime, MigrationConfig, ReschedulePolicy};
    pub use llumnix_model::{CalibratedCostModel, CostModel, InstanceSpec, ModelSpec};
    pub use llumnix_sim::{SimDuration, SimRng, SimTime};
    pub use llumnix_workload::{
        presets as trace_presets, table1, Arrivals, LengthDist, Trace, TraceSpec,
    };
}
