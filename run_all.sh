#!/bin/bash
# Regenerates every table and figure at full scale into results/.
set -e
cd "$(dirname "$0")"
BIN="cargo run --release -q -p llumnix-bench --bin"
$BIN table1_distributions -- --json results/table1.json | tee results/table1.txt
$BIN fig03_preemption -- --json results/fig03.json | tee results/fig03.txt
$BIN fig04_decode_latency -- --json results/fig04.json | tee results/fig04.txt
$BIN fig05_fragmentation_motivation -- --json results/fig05.json | tee results/fig05.txt
$BIN fig10_migration -- --json results/fig10.json | tee results/fig10.txt
$BIN fig11_serving -- --json results/fig11.json | tee results/fig11.txt
$BIN fig12_fragmentation_timeline -- --json results/fig12.json | tee results/fig12.txt
$BIN fig13_priorities -- --json results/fig13.json | tee results/fig13.txt
$BIN fig14_autoscaling -- --json results/fig14.json | tee results/fig14.txt
$BIN fig15_cost_latency -- --json results/fig15.json | tee results/fig15.txt
$BIN fig16_scalability -- --json results/fig16.json | tee results/fig16.txt
# --forked shares each (fleet, scheduler) pair's fault-free warmup across
# its fault profiles via snapshot/fork — byte-identical output (CI-diffed
# against the cold run), ~20 % less wall-clock.
$BIN fig17_churn -- --forked --json results/fig17.json | tee results/fig17.txt
$BIN ablations | tee results/ablations.txt
echo ALL_DONE
