//! Behavioural tests of the serving loop's scheduler mechanics: queue-order
//! policies end-to-end, preemption-mode effects, scale-down redispatch, and
//! the engine knobs' visibility through the serving configuration.

use llumnix::engine::{PreemptionMode, QueueOrder};
use llumnix::prelude::*;

fn capped(name: &str, n: usize, rate: f64, seed: u64) -> Trace {
    trace_presets::by_name(name, n, Arrivals::poisson(rate))
        .expect("preset")
        .with_max_total_tokens(1_800)
        .generate(&SimRng::new(seed))
}

fn tiny(kind: SchedulerKind) -> ServingConfig {
    ServingConfig::new(kind, 3).with_spec(InstanceSpec::tiny_for_tests(2_048))
}

/// Shortest-first local queues cut mean prefill latency under head-of-line
/// pressure (at the cost of delaying the longest prompts).
#[test]
fn shortest_first_reduces_mean_queuing() {
    let trace = capped("L-S", 400, 14.0, 1);
    let mut fcfs = tiny(SchedulerKind::InfaasPlusPlus);
    fcfs.engine.queue_order = QueueOrder::Fcfs;
    let mut sjf = tiny(SchedulerKind::InfaasPlusPlus);
    sjf.engine.queue_order = QueueOrder::ShortestFirst;
    let out_fcfs = run_serving(fcfs, trace.clone());
    let out_sjf = run_serving(sjf, trace);
    let r_fcfs = LatencyReport::from_records(&out_fcfs.records);
    let r_sjf = LatencyReport::from_records(&out_sjf.records);
    // Both conserve requests.
    assert_eq!(out_fcfs.records.len(), 400);
    assert_eq!(out_sjf.records.len(), 400);
    // SJF cannot be meaningfully worse on *mean* prefill; usually better.
    assert!(
        r_sjf.prefill.mean <= r_fcfs.prefill.mean * 1.05,
        "sjf mean prefill {:.3}s vs fcfs {:.3}s",
        r_sjf.prefill.mean,
        r_fcfs.prefill.mean
    );
}

/// Swap-mode preemption conserves tokens end-to-end through a full serving
/// run with migrations in the mix.
#[test]
fn swap_mode_serving_conserves_tokens() {
    let trace = capped("M-M", 300, 8.0, 2);
    let mut config = tiny(SchedulerKind::Llumnix);
    config.engine.preemption_mode = PreemptionMode::Swap;
    let out = run_serving(config, trace.clone());
    assert_eq!(out.records.len() as u64 + out.aborted, 300);
    for r in &out.records {
        let expected = trace
            .requests
            .iter()
            .find(|q| q.id == r.id)
            .expect("in trace");
        assert_eq!(r.output_len, expected.output_len, "request {}", r.id);
    }
}

/// Scale-down redispatches the terminating instance's queued requests rather
/// than stranding them, and the instance disappears once drained.
#[test]
fn scale_down_redispatches_waiting_requests() {
    // A burst fills the queues, then silence forces a scale-down.
    let trace = capped("S-S", 250, 20.0, 3);
    let scale = AutoScaleConfig {
        min_instances: 1,
        max_instances: 3,
        freeness_low: 5.0,
        freeness_high: 40.0,
        sustain: llumnix::sim::SimDuration::from_secs(2),
        startup_delay: llumnix::sim::SimDuration::from_secs(1),
    };
    let config = tiny(SchedulerKind::Llumnix).with_autoscale(scale);
    let out = run_serving(config, trace);
    assert_eq!(out.records.len() as u64 + out.aborted, 250);
    assert_eq!(out.aborted, 0);
    // The fleet shrank at the end.
    let last = out.instances.points().last().expect("samples").1;
    assert!(
        last <= 2.0,
        "fleet should shrink after the burst, got {last}"
    );
}

/// The watermark knob reduces preemptions on a memory-tight cluster.
#[test]
fn watermark_trades_queuing_for_fewer_preemptions() {
    let trace = capped("M-M", 400, 10.0, 4);
    let mut plain = tiny(SchedulerKind::InfaasPlusPlus);
    plain.engine.admission_watermark_blocks = 0;
    let mut guarded = tiny(SchedulerKind::InfaasPlusPlus);
    guarded.engine.admission_watermark_blocks = 16;
    let out_plain = run_serving(plain, trace.clone());
    let out_guarded = run_serving(guarded, trace);
    let p = LatencyReport::from_records(&out_plain.records);
    let g = LatencyReport::from_records(&out_guarded.records);
    assert_eq!(out_plain.records.len(), 400);
    // The watermark shrinks effective capacity: the largest requests can no
    // longer ever fit and abort at admission, by design.
    assert_eq!(out_guarded.records.len() as u64 + out_guarded.aborted, 400);
    assert!(out_guarded.aborted > 0, "oversized requests abort");
    // The watermark defers admission, so queuing can only grow...
    assert!(g.prefill.mean >= p.prefill.mean * 0.5);
    // ...in exchange for no systematic increase in preemptions (timing
    // noise allows a small delta at this scale).
    assert!(
        g.total_preemptions <= p.total_preemptions + 3,
        "watermark should not inflate preemptions: {} vs {}",
        g.total_preemptions,
        p.total_preemptions
    );
}

/// The centralized baseline's stall penalty is visible in per-token decode
/// latencies: the same scheduler with a free central server is strictly
/// faster.
///
/// Uses the Figure 16 workload shape — fixed 64-token inputs and outputs —
/// so the two runs batch near-identically and the comparison isolates the
/// stall penalty instead of length-mix batching noise (with a variable-length
/// trace the ~ms stall signal can be swamped by divergent batch composition).
#[test]
fn centralized_stalls_surface_in_latency() {
    use llumnix::core::CentralSchedulerModel;
    use llumnix::sim::SimDuration;
    use llumnix::workload::{FixedLength, LengthDist, TraceSpec};
    let trace = TraceSpec::new(
        "stall-probe",
        500,
        Arrivals::poisson(25.0),
        LengthDist::Fixed(FixedLength(64)),
        LengthDist::Fixed(FixedLength(64)),
    )
    .generate(&SimRng::new(5));
    let stalled = run_serving(
        ServingConfig::new(SchedulerKind::Centralized, 4)
            .with_spec(InstanceSpec::tiny_for_tests(2_048)),
        trace.clone(),
    );
    let mut free_config = ServingConfig::new(SchedulerKind::Centralized, 4)
        .with_spec(InstanceSpec::tiny_for_tests(2_048));
    free_config.central = CentralSchedulerModel {
        base: SimDuration::ZERO,
        per_request: SimDuration::ZERO,
        amortization_scale: 0,
    };
    let free = run_serving(free_config, trace);
    let rs = LatencyReport::from_records(&stalled.records);
    let rf = LatencyReport::from_records(&free.records);
    assert!(stalled.stalls.mean > 0.0);
    assert_eq!(free.stalls.mean, 0.0);
    assert!(
        rs.decode.mean > rf.decode.mean,
        "stalls should slow decode: {:.4}s vs {:.4}s",
        rs.decode.mean,
        rf.decode.mean
    );
}
