//! Integration tests spanning the whole stack: workload → dispatch →
//! engines → migration → metrics.

use llumnix::prelude::*;

fn trace(name: &str, n: usize, rate: f64, seed: u64, cap: u32) -> Trace {
    trace_presets::by_name(name, n, Arrivals::poisson(rate))
        .expect("preset")
        .with_max_total_tokens(cap)
        .generate(&SimRng::new(seed))
}

fn tiny(kind: SchedulerKind, n: u32) -> ServingConfig {
    ServingConfig::new(kind, n).with_spec(InstanceSpec::tiny_for_tests(2048))
}

/// Every request completes exactly once under every scheduler, and record
/// timestamps are internally consistent.
#[test]
fn completion_conservation_all_schedulers() {
    let t = trace("S-S", 200, 6.0, 1, 2_000);
    for kind in [
        SchedulerKind::RoundRobin,
        SchedulerKind::InfaasPlusPlus,
        SchedulerKind::LlumnixBase,
        SchedulerKind::Llumnix,
        SchedulerKind::Centralized,
    ] {
        let out = run_serving(tiny(kind, 4), t.clone());
        assert_eq!(
            out.records.len() as u64 + out.aborted,
            200,
            "{}: lost or duplicated requests",
            kind.label()
        );
        for r in &out.records {
            assert!(r.arrival <= r.first_token, "{}: time order", kind.label());
            assert!(r.first_token <= r.finish, "{}: time order", kind.label());
            assert!(r.output_len >= 1);
            assert!(r.e2e_latency() >= r.prefill_latency());
        }
    }
}

/// Output lengths in the records match the trace's ground truth: migration
/// and preemption never lose or duplicate tokens.
#[test]
fn token_conservation_through_migration() {
    let t = trace("M-M", 250, 8.0, 2, 2_000);
    let out = run_serving(tiny(SchedulerKind::Llumnix, 4), t.clone());
    assert!(out.migration_stats.committed > 0, "wanted migrations");
    for r in &out.records {
        let expected = t
            .requests
            .iter()
            .find(|q| q.id == r.id)
            .expect("record belongs to the trace");
        assert_eq!(
            r.output_len, expected.output_len,
            "request {} generated a different number of tokens",
            r.id
        );
        assert_eq!(r.input_len, expected.input_len);
    }
}

/// The same seed reproduces byte-identical results; different seeds differ.
#[test]
fn determinism_across_runs() {
    let t = trace("S-S", 150, 6.0, 3, 2_000);
    let a = run_serving(tiny(SchedulerKind::Llumnix, 3), t.clone());
    let b = run_serving(tiny(SchedulerKind::Llumnix, 3), t.clone());
    assert_eq!(a.records.len(), b.records.len());
    for (x, y) in a.records.iter().zip(&b.records) {
        assert_eq!(
            (x.id, x.finish, x.migrations),
            (y.id, y.finish, y.migrations)
        );
    }
    let t2 = trace("S-S", 150, 6.0, 4, 2_000);
    let c = run_serving(tiny(SchedulerKind::Llumnix, 3), t2);
    let fa: Vec<_> = a.records.iter().map(|r| r.finish).collect();
    let fc: Vec<_> = c.records.iter().map(|r| r.finish).collect();
    assert_ne!(fa, fc, "different seeds should differ");
}

/// Llumnix beats round-robin on tail prefill latency on a skewed trace —
/// the paper's headline comparison, at test scale.
#[test]
fn llumnix_beats_round_robin_on_tail_prefill() {
    let t = trace("M-M", 400, 10.0, 5, 2_000);
    let rr = run_serving(tiny(SchedulerKind::RoundRobin, 3), t.clone());
    let lx = run_serving(tiny(SchedulerKind::Llumnix, 3), t);
    let rr_report = LatencyReport::from_records(&rr.records);
    let lx_report = LatencyReport::from_records(&lx.records);
    assert!(
        lx_report.prefill.p99 < rr_report.prefill.p99,
        "llumnix p99 prefill {:.2}s should beat round-robin {:.2}s",
        lx_report.prefill.p99,
        rr_report.prefill.p99
    );
}

/// Higher request rates can only increase mean end-to-end latency for the
/// same scheduler (sanity of the load model).
#[test]
fn latency_monotone_in_load() {
    let mut last = 0.0;
    for rate in [2.0, 6.0, 12.0] {
        let t = trace("S-S", 300, rate, 6, 2_000);
        let out = run_serving(tiny(SchedulerKind::InfaasPlusPlus, 3), t);
        let report = LatencyReport::from_records(&out.records);
        assert!(
            report.e2e.mean >= last * 0.95,
            "mean e2e fell from {last:.2}s to {:.2}s at rate {rate}",
            report.e2e.mean
        );
        last = report.e2e.mean;
    }
}

/// Migration downtimes stay in the paper's constant band even inside a full
/// serving run with real interference.
#[test]
fn migration_downtime_band_in_serving() {
    let t = trace("M-M", 300, 9.0, 7, 2_000);
    let out = run_serving(tiny(SchedulerKind::Llumnix, 4), t);
    assert!(out.migration_stats.committed > 0);
    let mean_downtime =
        out.migration_stats.total_downtime.as_secs_f64() / out.migration_stats.committed as f64;
    assert!(
        (0.015..0.08).contains(&mean_downtime),
        "mean migration downtime {mean_downtime:.3}s outside the constant band"
    );
    // Per-request downtimes recorded on the records agree.
    for r in out.records.iter().filter(|r| r.migrations > 0) {
        let per = r.migration_downtime.as_secs_f64() / r.migrations as f64;
        assert!(per < 0.15, "request {} downtime {per:.3}s", r.id);
    }
}

/// The decode-latency metric includes migration downtime: a migrated
/// request's tokens keep flowing with only the downtime gap.
#[test]
fn records_carry_migration_accounting() {
    let t = trace("M-M", 300, 9.0, 8, 2_000);
    let out = run_serving(tiny(SchedulerKind::Llumnix, 4), t);
    let migrated: Vec<_> = out.records.iter().filter(|r| r.migrations > 0).collect();
    assert!(!migrated.is_empty(), "wanted migrated requests");
    for r in &migrated {
        assert!(!r.migration_downtime.is_zero());
    }
    let total: u64 = migrated.iter().map(|r| r.migrations as u64).sum();
    assert_eq!(total, out.migration_stats.committed);
    // The worst inter-token stall of a migrated request covers (at least)
    // its migration downtime — the stall metric makes migration visible.
    for r in &migrated {
        let per_migration = r.migration_downtime.as_secs_f64() / r.migrations as f64;
        assert!(
            r.max_token_gap.as_secs_f64() + 1e-9 >= per_migration,
            "request {}: max gap {:.4}s < per-migration downtime {:.4}s",
            r.id,
            r.max_token_gap.as_secs_f64(),
            per_migration
        );
    }
}
