//! Regression tests for defects found during development — each encodes a
//! specific interleaving that once leaked a request or stranded state.

use llumnix::prelude::*;
use llumnix::sim::SimTime;

fn capped_trace(n: usize, rate: f64, seed: u64) -> Trace {
    trace_presets::by_name("S-S", n, Arrivals::poisson(rate))
        .expect("preset")
        .with_max_total_tokens(1_500)
        .generate(&SimRng::new(seed))
}

fn tiny(kind: SchedulerKind, n: u32) -> ServingConfig {
    ServingConfig::new(kind, n).with_spec(InstanceSpec::tiny_for_tests(2_048))
}

/// Requests inside an *in-flight prefill step* are in neither the running
/// batch nor the pending list; an instance failure at that instant must
/// still count them as aborted (found by proptest, seed 9194729304982698691).
#[test]
fn failure_counts_requests_inside_prefill_steps() {
    let trace = capped_trace(120, 6.0, 9194729304982698691);
    let mut config = tiny(SchedulerKind::Llumnix, 3);
    config.failures = vec![FailureSpec::Instance {
        instance: InstanceId(2),
        at: SimTime::from_secs(9),
        restart_after: None,
    }];
    let out = run_serving(config, trace);
    assert_eq!(out.records.len() as u64 + out.aborted, 120);
}

/// A migration aborted while awaiting its drain must cancel the pending
/// drain; otherwise the request is drained later with no migration waiting
/// and is stranded in `Draining` forever (found by proptest, seed
/// 7820411515648217046).
#[test]
fn aborted_migration_cancels_pending_drain() {
    let trace = capped_trace(120, 6.0, 7820411515648217046);
    let mut config = tiny(SchedulerKind::Llumnix, 3);
    config.failures = vec![FailureSpec::Instance {
        instance: InstanceId(0),
        at: SimTime::from_secs(17),
        restart_after: None,
    }];
    let out = run_serving(config, trace);
    assert_eq!(out.records.len() as u64 + out.aborted, 120);
    let stats = out.migration_stats;
    assert_eq!(stats.started, stats.committed + stats.aborted);
}

/// A terminating instance must not be torn down while it is the
/// *destination* of an in-flight migration — the commit would dangle and
/// the migrating request would be lost (found by proptest, seed
/// 9674038497135260553).
#[test]
fn termination_waits_for_inbound_migrations() {
    let trace = capped_trace(150, 6.72, 9674038497135260553);
    let scale = AutoScaleConfig {
        min_instances: 1,
        max_instances: 3,
        freeness_low: 10.0,
        freeness_high: 60.0,
        sustain: llumnix::sim::SimDuration::from_secs(2),
        startup_delay: llumnix::sim::SimDuration::from_secs(2),
    };
    let config = tiny(SchedulerKind::Llumnix, 1).with_autoscale(scale);
    let out = run_serving(config, trace);
    assert_eq!(out.records.len() as u64 + out.aborted, 150);
    assert_eq!(out.aborted, 0, "no failures were injected");
}

/// A preempted request whose regrown footprint can never fit the instance
/// again must be aborted exactly once — not double-counted as both a record
/// and an abort (it already emitted tokens before preemption).
#[test]
fn midlife_abort_counts_once() {
    // One tiny instance; a request whose input fits but whose growth
    // exceeds the whole instance.
    let spec = TraceSpec::new(
        "overgrow",
        3,
        Arrivals::poisson(0.2),
        LengthDist::Fixed(llumnix::workload::FixedLength(1_200)),
        LengthDist::Fixed(llumnix::workload::FixedLength(1_500)),
    );
    let trace = spec.generate(&SimRng::new(1));
    let out = run_serving(tiny(SchedulerKind::RoundRobin, 1), trace);
    // Capacity 2,048 < 2,700 final length: every request eventually aborts.
    assert_eq!(out.records.len(), 0);
    assert_eq!(out.aborted, 3);
}

/// Priority-aware dispatch: high-priority arrivals must not be repelled by
/// their own class's headroom (they dispatch by headroom-free freeness).
#[test]
fn high_priority_dispatch_ignores_own_headroom() {
    use llumnix::core::{Dispatcher, LoadReport, SchedulerKind};
    let mut d = Dispatcher::new();
    let reports = vec![
        // Instance 0 hosts a high request: huge headroom makes its unified
        // freeness very negative, but physically it is nearly empty.
        LoadReport {
            id: InstanceId(0),
            freeness: -500.0,
            freeness_physical: 12_000.0,
            memory_load: 0.1,
            num_running: 1,
            num_waiting: 0,
            terminating: false,
            starting: false,
        },
        // Instance 1 is physically busier but has no headroom.
        LoadReport {
            id: InstanceId(1),
            freeness: 300.0,
            freeness_physical: 300.0,
            memory_load: 0.6,
            num_running: 12,
            num_waiting: 0,
            terminating: false,
            starting: false,
        },
    ];
    // A normal request avoids the protected instance...
    assert_eq!(
        d.dispatch_for(SchedulerKind::Llumnix, &reports, false),
        Some(InstanceId(1))
    );
    // ...a high-priority request goes to the physically freest one.
    assert_eq!(
        d.dispatch_for(SchedulerKind::Llumnix, &reports, true),
        Some(InstanceId(0))
    );
}
