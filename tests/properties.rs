//! Whole-system property tests: random workloads and random failure
//! injections through the full serving simulation.

use llumnix::prelude::*;
use llumnix::sim::SimTime;
use proptest::prelude::*;

fn any_scheduler() -> impl Strategy<Value = SchedulerKind> {
    prop_oneof![
        Just(SchedulerKind::RoundRobin),
        Just(SchedulerKind::InfaasPlusPlus),
        Just(SchedulerKind::LlumnixBase),
        Just(SchedulerKind::Llumnix),
        Just(SchedulerKind::Centralized),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Any scheduler over any small random workload conserves requests and
    /// produces well-ordered records.
    #[test]
    fn serving_conserves_requests(
        kind in any_scheduler(),
        seed in any::<u64>(),
        rate in 1.0f64..12.0,
        n in 20usize..120,
        instances in 1u32..5,
        high in 0.0f64..0.5,
    ) {
        let trace = trace_presets::by_name("S-S", n, Arrivals::poisson(rate))
            .expect("preset")
            .with_max_total_tokens(1_500)
            .with_high_priority_fraction(high)
            .generate(&SimRng::new(seed));
        let config = ServingConfig::new(kind, instances)
            .with_spec(InstanceSpec::tiny_for_tests(2_048));
        let out = run_serving(config, trace);
        prop_assert_eq!(out.records.len() as u64 + out.aborted, n as u64);
        prop_assert_eq!(out.aborted, 0, "no request should abort without failures");
        for r in &out.records {
            prop_assert!(r.arrival <= r.first_token && r.first_token <= r.finish);
        }
    }

    /// Failure injection at any time never panics, never loses accounting,
    /// and the service keeps completing the surviving requests.
    #[test]
    fn failures_never_break_accounting(
        seed in any::<u64>(),
        fail_at in 1u64..60,
        fail_instance in 0u32..3,
        restart in any::<bool>(),
        global_fail in any::<bool>(),
    ) {
        let n = 120usize;
        let trace = trace_presets::by_name("S-S", n, Arrivals::poisson(6.0))
            .expect("preset")
            .with_max_total_tokens(1_500)
            .generate(&SimRng::new(seed));
        let mut config = ServingConfig::new(SchedulerKind::Llumnix, 3)
            .with_spec(InstanceSpec::tiny_for_tests(2_048));
        config.failures.push(FailureSpec::Instance {
            instance: InstanceId(fail_instance),
            at: SimTime::from_secs(fail_at),
            restart_after: restart.then(|| llumnix::sim::SimDuration::from_secs(5)),
        });
        if global_fail {
            config.failures.push(FailureSpec::GlobalScheduler {
                at: SimTime::from_secs(fail_at / 2 + 1),
                duration: llumnix::sim::SimDuration::from_secs(15),
            });
        }
        let out = run_serving(config, trace);
        prop_assert_eq!(out.records.len() as u64 + out.aborted, n as u64);
        // Migration accounting stays balanced.
        let stats = out.migration_stats;
        prop_assert_eq!(stats.started, stats.committed + stats.aborted);
    }

    /// Auto-scaling never exceeds its configured bounds.
    #[test]
    fn autoscaling_respects_bounds(
        seed in any::<u64>(),
        rate in 2.0f64..10.0,
        max in 2u32..6,
    ) {
        let trace = trace_presets::by_name("M-M", 150, Arrivals::poisson(rate))
            .expect("preset")
            .with_max_total_tokens(1_500)
            .generate(&SimRng::new(seed));
        let scale = AutoScaleConfig {
            min_instances: 1,
            max_instances: max,
            freeness_low: 10.0,
            freeness_high: 60.0,
            sustain: llumnix::sim::SimDuration::from_secs(2),
            startup_delay: llumnix::sim::SimDuration::from_secs(2),
        };
        let config = ServingConfig::new(SchedulerKind::Llumnix, 1)
            .with_spec(InstanceSpec::tiny_for_tests(2_048))
            .with_autoscale(scale);
        let out = run_serving(config, trace);
        prop_assert!(out.instances.max() <= max as f64 + 1e-9);
        for &(_, v) in out.instances.points() {
            prop_assert!(v >= 1.0);
        }
        prop_assert_eq!(out.records.len() as u64 + out.aborted, 150);
    }
}
