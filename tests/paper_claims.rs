//! Shape checks of the paper's headline claims, at test scale.
//!
//! These do not assert the paper's absolute numbers (the substrate is a
//! calibrated simulator, not the authors' testbed); they assert the *shape*:
//! who wins, in which direction, and that each mechanism moves its metric.

use llumnix::migration::{reschedule_downtime, ReschedulePolicy};
use llumnix::prelude::*;

fn trace(name: &str, n: usize, arrivals: Arrivals, high: f64, seed: u64) -> Trace {
    trace_presets::by_name(name, n, arrivals)
        .expect("preset")
        .with_high_priority_fraction(high)
        .generate(&SimRng::new(seed))
}

/// §6.2 / Figure 10: live-migration downtime is constant in sequence length
/// while the baselines grow linearly.
#[test]
fn migration_downtime_constant_baselines_linear() {
    let spec = InstanceSpec::llama_7b_a10();
    let mig_1k = reschedule_downtime(ReschedulePolicy::LiveMigration, 1024, &spec).as_secs_f64();
    let mig_8k = reschedule_downtime(ReschedulePolicy::LiveMigration, 8192, &spec).as_secs_f64();
    assert!(mig_8k / mig_1k < 1.5, "downtime not constant");
    for policy in [ReschedulePolicy::Recompute, ReschedulePolicy::BlockingCopy] {
        let d1 = reschedule_downtime(policy, 1024, &spec).as_secs_f64();
        let d8 = reschedule_downtime(policy, 8192, &spec).as_secs_f64();
        assert!(d8 > 4.0 * d1, "{} should grow with length", policy.label());
        assert!(
            d8 > 10.0 * mig_8k,
            "{} should dwarf migration",
            policy.label()
        );
    }
}

/// §6.3 / Figure 11: under memory pressure Llumnix reduces preemption loss
/// and P99 decode latency relative to INFaaS++.
#[test]
fn llumnix_reduces_preemptions_vs_infaas() {
    let t = trace("M-M", 1_500, Arrivals::poisson(10.0), 0.0, 1);
    let infaas = run_serving(
        ServingConfig::new(SchedulerKind::InfaasPlusPlus, 16),
        t.clone(),
    );
    let llumnix = run_serving(ServingConfig::new(SchedulerKind::Llumnix, 16), t);
    let ri = LatencyReport::from_records(&infaas.records);
    let rl = LatencyReport::from_records(&llumnix.records);
    assert!(
        rl.total_preemptions * 2 <= ri.total_preemptions.max(2),
        "llumnix preemptions {} vs infaas {}",
        rl.total_preemptions,
        ri.total_preemptions
    );
    assert!(
        rl.decode.p99 <= ri.decode.p99 * 1.05,
        "llumnix decode p99 {:.3}s vs infaas {:.3}s",
        rl.decode.p99,
        ri.decode.p99
    );
}

/// §6.4 / Figure 13: priority support accelerates high-priority requests
/// under bursty load without collapsing normal ones.
#[test]
fn priorities_help_high_class() {
    let t = trace("S-S", 2_000, Arrivals::gamma(20.0, 6.0), 0.10, 2);
    let base = run_serving(
        ServingConfig::new(SchedulerKind::LlumnixBase, 16),
        t.clone(),
    );
    let prio = run_serving(ServingConfig::new(SchedulerKind::Llumnix, 16), t);
    let hb = LatencyReport::for_priority(&base.records, RecordPriority::High);
    let hp = LatencyReport::for_priority(&prio.records, RecordPriority::High);
    assert!(
        hp.e2e.mean < hb.e2e.mean,
        "high-priority mean e2e should improve: {:.2}s -> {:.2}s",
        hb.e2e.mean,
        hp.e2e.mean
    );
    let nb = LatencyReport::for_priority(&base.records, RecordPriority::Normal);
    let np = LatencyReport::for_priority(&prio.records, RecordPriority::Normal);
    assert!(
        np.e2e.mean < nb.e2e.mean * 1.25,
        "normal requests should not collapse: {:.2}s -> {:.2}s",
        nb.e2e.mean,
        np.e2e.mean
    );
}

/// §6.5 / Figures 14–15: at equal scaling thresholds Llumnix serves with
/// fewer instances and better tail prefill than INFaaS++.
#[test]
fn autoscaling_cost_and_latency() {
    let t = trace("L-L", 1_200, Arrivals::gamma(2.0, 4.0), 0.0, 3);
    let scale = AutoScaleConfig::paper_default(16);
    let infaas = run_serving(
        ServingConfig::new(SchedulerKind::InfaasPlusPlus, 1).with_autoscale(scale),
        t.clone(),
    );
    let llumnix = run_serving(
        ServingConfig::new(SchedulerKind::Llumnix, 1).with_autoscale(scale),
        t,
    );
    let ri = LatencyReport::from_records(&infaas.records);
    let rl = LatencyReport::from_records(&llumnix.records);
    assert!(
        llumnix.avg_instances <= infaas.avg_instances,
        "llumnix cost {:.2} vs infaas {:.2}",
        llumnix.avg_instances,
        infaas.avg_instances
    );
    assert!(
        rl.prefill.p99 <= ri.prefill.p99,
        "llumnix prefill p99 {:.2}s vs infaas {:.2}s",
        rl.prefill.p99,
        ri.prefill.p99
    );
}

/// §6.6 / Figure 16: centralized scheduling stalls grow with request rate;
/// Llumnix's distributed scheduling keeps them at zero.
#[test]
fn centralized_stalls_grow_with_rate() {
    use llumnix::workload::{FixedLength, LengthDist, TraceSpec};
    let mut last_stall = 0.0;
    for rate in [100.0, 300.0, 600.0] {
        let spec = TraceSpec::new(
            "stress",
            2_000,
            Arrivals::poisson(rate),
            LengthDist::Fixed(FixedLength(64)),
            LengthDist::Fixed(FixedLength(64)),
        );
        let t = spec.generate(&SimRng::new(4));
        let central = run_serving(
            ServingConfig::new(SchedulerKind::Centralized, 32),
            t.clone(),
        );
        assert!(
            central.stalls.mean >= last_stall * 0.8,
            "stalls should grow"
        );
        last_stall = central.stalls.mean;
        let llumnix = run_serving(ServingConfig::new(SchedulerKind::Llumnix, 32), t);
        assert_eq!(llumnix.stalls.mean, 0.0, "llumnix never stalls");
    }
    assert!(last_stall > 0.0, "centralized scheduler must stall at load");
}

/// §3 / Figure 5: when requests queue under a spreading dispatcher, the
/// cluster's total free memory could usually admit them — fragmentation,
/// not capacity, blocks them.
#[test]
fn fragmentation_blocks_despite_free_memory() {
    let t = trace("M-M", 1_200, Arrivals::poisson(3.2), 0.0, 5);
    let out = run_serving(ServingConfig::new(SchedulerKind::InfaasPlusPlus, 4), t);
    let queue_pts = out.queued.points();
    let hol_pts = out.hol_satisfiable.points();
    let mut queuing = 0usize;
    let mut satisfiable = 0usize;
    for (q, h) in queue_pts.iter().zip(hol_pts) {
        if q.1 > 0.0 {
            queuing += 1;
            if h.1 > 0.0 {
                satisfiable += 1;
            }
        }
    }
    assert!(queuing > 5, "the scenario should produce queuing samples");
    assert!(
        satisfiable as f64 >= 0.6 * queuing as f64,
        "fragmentation: {satisfiable}/{queuing} queuing samples had free memory elsewhere"
    );
}
