//! Seeded fault-injection plans.
//!
//! A [`FaultPlan`] is a precomputed, sorted schedule of faults — instance
//! crashes, transient slowdowns (stragglers), and migration-link failures —
//! generated entirely from an experiment seed before the simulation starts.
//! The serving loop replays the plan as first-class events; nothing about
//! fault timing or targeting is decided at runtime.
//!
//! ## Determinism rules
//!
//! The plan inherits the repo-wide byte-identical-schedule contract:
//!
//! - Generation draws from [`SimRng`] streams split by *label*
//!   (`faults/crash`, `faults/slowdown`, `faults/link`), so adding a fault
//!   class never perturbs the others and the plan depends only on the seed
//!   and the [`FaultPlanConfig`] — never on thread count, wall clock, or
//!   fleet state.
//! - Targets are stored as abstract *ranks* ([`PlannedFault::target_rank`]),
//!   resolved against the live instance roster (insertion-order walk, modulo
//!   fleet size) only at fire time. The plan itself is fleet-agnostic.
//! - [`FaultPlan::fingerprint`] folds every field into a stable 64-bit hash
//!   so tests and benches can assert byte-identical schedules cheaply.
//!
//! Each fault class is an independent Poisson process: inter-arrival gaps are
//! exponential with the configured fleet-wide rate, truncated at the horizon.

#![forbid(unsafe_code)]
#![deny(rust_2018_idioms)]

use llumnix_sim::{SimDuration, SimRng, SimTime};
use llumnix_workload::exponential;
use serde::Serialize;

/// Rates and shapes for generating a [`FaultPlan`].
///
/// Rates are *fleet-wide* events per simulated hour; a rate of `0.0` disables
/// that fault class. The default plan is fault-free.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct FaultPlanConfig {
    /// Instance crashes per simulated hour across the whole fleet.
    pub crash_rate_per_hour: f64,
    /// Delay before a crashed instance rejoins the fleet; `None` means the
    /// instance never restarts (permanent capacity loss).
    pub restart_delay: Option<SimDuration>,
    /// Transient slowdown (straggler) events per simulated hour.
    pub slowdown_rate_per_hour: f64,
    /// Inclusive range of step-latency multipliers for slowdowns.
    pub slowdown_factor: (f64, f64),
    /// How long each slowdown lasts.
    pub slowdown_duration: SimDuration,
    /// Migration-link failures per simulated hour.
    pub link_failure_rate_per_hour: f64,
    /// How long a failed link stays down.
    pub link_down_duration: SimDuration,
    /// Faults are only scheduled in `[start_offset, start_offset + horizon)`.
    pub horizon: SimDuration,
    /// Shifts the whole schedule: no fault fires before this offset. A pure
    /// time translation of the `[0, horizon)` schedule — the inter-arrival
    /// draws, targets, and class independence are untouched — so a sweep can
    /// keep its warmup fault-free and fork fault arms from a shared snapshot
    /// (the serving sim's `activate_faults` requires every fault to fire
    /// after the fork point).
    pub start_offset: SimDuration,
}

impl Default for FaultPlanConfig {
    fn default() -> Self {
        FaultPlanConfig {
            crash_rate_per_hour: 0.0,
            restart_delay: Some(SimDuration::from_secs(10)),
            slowdown_rate_per_hour: 0.0,
            slowdown_factor: (1.5, 3.0),
            slowdown_duration: SimDuration::from_secs(10),
            link_failure_rate_per_hour: 0.0,
            link_down_duration: SimDuration::from_secs(5),
            horizon: SimDuration::from_secs(4 * 3600),
            start_offset: SimDuration::ZERO,
        }
    }
}

impl FaultPlanConfig {
    /// A plan config with every fault class disabled.
    pub fn none() -> Self {
        FaultPlanConfig::default()
    }

    /// Sets the crash rate (per simulated hour, fleet-wide).
    pub fn with_crashes(mut self, rate_per_hour: f64, restart: Option<SimDuration>) -> Self {
        self.crash_rate_per_hour = rate_per_hour;
        self.restart_delay = restart;
        self
    }

    /// Sets the slowdown rate and straggler shape.
    pub fn with_slowdowns(
        mut self,
        rate_per_hour: f64,
        factor: (f64, f64),
        duration: SimDuration,
    ) -> Self {
        self.slowdown_rate_per_hour = rate_per_hour;
        self.slowdown_factor = factor;
        self.slowdown_duration = duration;
        self
    }

    /// Sets the migration-link failure rate and outage length.
    pub fn with_link_failures(mut self, rate_per_hour: f64, down_for: SimDuration) -> Self {
        self.link_failure_rate_per_hour = rate_per_hour;
        self.link_down_duration = down_for;
        self
    }

    /// Sets the scheduling horizon.
    pub fn with_horizon(mut self, horizon: SimDuration) -> Self {
        self.horizon = horizon;
        self
    }

    /// Delays the whole schedule so no fault fires before `offset`.
    pub fn with_start_offset(mut self, offset: SimDuration) -> Self {
        self.start_offset = offset;
        self
    }

    /// True when no fault class has a positive rate.
    pub fn is_fault_free(&self) -> bool {
        self.crash_rate_per_hour <= 0.0
            && self.slowdown_rate_per_hour <= 0.0
            && self.link_failure_rate_per_hour <= 0.0
    }
}

/// What a planned fault does when it fires.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub enum FaultKind {
    /// The target instance dies: in-flight migrations abort, its requests
    /// are lost and must be redispatched. Optionally restarts later.
    Crash {
        /// Delay before the replacement instance comes up, if any.
        restart_after: Option<SimDuration>,
    },
    /// The target instance becomes a straggler: engine steps take
    /// `factor`× their modeled latency until the slowdown expires.
    Slowdown {
        /// Step-latency multiplier (≥ 1.0).
        factor: f64,
        /// How long the straggler phase lasts.
        duration: SimDuration,
    },
    /// The target instance's migration link goes down: new migrations
    /// touching it are refused and in-flight ones abort at the next stage
    /// boundary with `AbortReason::LinkFailed`.
    LinkFailure {
        /// How long the link stays down.
        duration: SimDuration,
    },
}

impl FaultKind {
    fn class_tag(&self) -> u64 {
        match self {
            FaultKind::Crash { .. } => 0,
            FaultKind::Slowdown { .. } => 1,
            FaultKind::LinkFailure { .. } => 2,
        }
    }
}

/// One scheduled fault.
///
/// `target_rank` is resolved against the live roster at fire time
/// (`rank % fleet_size` into the insertion-order walk), which keeps the plan
/// independent of autoscaling decisions while still being fully seeded.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct PlannedFault {
    /// When the fault fires.
    pub at: SimTime,
    /// Abstract target, resolved modulo the live fleet size at fire time.
    pub target_rank: u64,
    /// What happens.
    pub kind: FaultKind,
}

/// A sorted, seeded schedule of faults.
#[derive(Debug, Clone, PartialEq, Default, Serialize)]
pub struct FaultPlan {
    faults: Vec<PlannedFault>,
}

impl FaultPlan {
    /// An empty plan (no faults ever fire).
    pub fn empty() -> Self {
        FaultPlan::default()
    }

    /// Generates the schedule for `cfg` from `rng`.
    ///
    /// Each fault class draws from its own labeled split of `rng`, so the
    /// classes are independent and the result depends only on the seed and
    /// `cfg`. The returned plan is sorted by fire time (stable within a
    /// timestamp: crashes, then slowdowns, then link failures).
    pub fn generate(cfg: &FaultPlanConfig, rng: &SimRng) -> Self {
        let mut faults = Vec::new();
        let mut crash = rng.split("faults/crash");
        Self::poisson_stream(
            cfg.crash_rate_per_hour,
            cfg.start_offset,
            cfg.horizon,
            &mut crash,
            |_| FaultKind::Crash {
                restart_after: cfg.restart_delay,
            },
        )
        .append_to(&mut faults);

        let mut slow = rng.split("faults/slowdown");
        let (lo, hi) = cfg.slowdown_factor;
        Self::poisson_stream(
            cfg.slowdown_rate_per_hour,
            cfg.start_offset,
            cfg.horizon,
            &mut slow,
            |r| FaultKind::Slowdown {
                factor: r.uniform_range(lo, hi),
                duration: cfg.slowdown_duration,
            },
        )
        .append_to(&mut faults);

        let mut link = rng.split("faults/link");
        Self::poisson_stream(
            cfg.link_failure_rate_per_hour,
            cfg.start_offset,
            cfg.horizon,
            &mut link,
            |_| FaultKind::LinkFailure {
                duration: cfg.link_down_duration,
            },
        )
        .append_to(&mut faults);

        // Stable sort: within a timestamp the class order above is preserved,
        // so the merged schedule is a pure function of (seed, cfg).
        faults.sort_by_key(|f| f.at);
        FaultPlan { faults }
    }

    fn poisson_stream(
        rate_per_hour: f64,
        start_offset: SimDuration,
        horizon: SimDuration,
        rng: &mut SimRng,
        mut kind: impl FnMut(&mut SimRng) -> FaultKind,
    ) -> Stream {
        let mut out = Vec::new();
        if rate_per_hour <= 0.0 {
            return Stream(out);
        }
        let rate_per_sec = rate_per_hour / 3600.0;
        // The offset translates the whole window: the same exponential draws
        // produce the same gaps, just starting later.
        let end = SimTime::ZERO + start_offset + horizon;
        let mut t = SimTime::ZERO + start_offset;
        loop {
            t += SimDuration::from_secs_f64(exponential(rng, rate_per_sec));
            if t >= end {
                break;
            }
            let target_rank = rng.next_u64();
            out.push(PlannedFault {
                at: t,
                target_rank,
                kind: kind(rng),
            });
        }
        Stream(out)
    }

    /// Number of scheduled faults.
    pub fn len(&self) -> usize {
        self.faults.len()
    }

    /// True when nothing is scheduled.
    pub fn is_empty(&self) -> bool {
        self.faults.is_empty()
    }

    /// The fault at position `i` (plan order = fire order).
    pub fn get(&self, i: usize) -> Option<&PlannedFault> {
        self.faults.get(i)
    }

    /// Iterates the schedule in fire order.
    pub fn iter(&self) -> impl Iterator<Item = &PlannedFault> {
        self.faults.iter()
    }

    /// Scheduled crashes (used by benches to reconcile observed counts).
    pub fn crash_count(&self) -> usize {
        self.faults
            .iter()
            .filter(|f| matches!(f.kind, FaultKind::Crash { .. }))
            .count()
    }

    /// A stable 64-bit digest of the whole schedule (FNV-1a over every
    /// field). Two plans are byte-identical iff their fingerprints match,
    /// which is how tests assert the seed → schedule contract.
    pub fn fingerprint(&self) -> u64 {
        let mut h = Fnv::new();
        h.write(self.faults.len() as u64);
        for f in &self.faults {
            h.write(f.at.as_micros());
            h.write(f.target_rank);
            h.write(f.kind.class_tag());
            match f.kind {
                FaultKind::Crash { restart_after } => {
                    h.write(restart_after.map_or(u64::MAX, SimDuration::as_micros));
                }
                FaultKind::Slowdown { factor, duration } => {
                    h.write(factor.to_bits());
                    h.write(duration.as_micros());
                }
                FaultKind::LinkFailure { duration } => {
                    h.write(duration.as_micros());
                }
            }
        }
        h.finish()
    }
}

struct Stream(Vec<PlannedFault>);

impl Stream {
    fn append_to(mut self, out: &mut Vec<PlannedFault>) {
        out.append(&mut self.0);
    }
}

/// Minimal FNV-1a over u64 words; explicit constants, no platform hashers.
struct Fnv(u64);

impl Fnv {
    fn new() -> Self {
        Fnv(0xcbf2_9ce4_8422_2325)
    }

    fn write(&mut self, word: u64) {
        for byte in word.to_le_bytes() {
            self.0 ^= u64::from(byte);
            self.0 = self.0.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }

    fn finish(&self) -> u64 {
        self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn churn_cfg() -> FaultPlanConfig {
        FaultPlanConfig::none()
            .with_crashes(60.0, Some(SimDuration::from_secs(10)))
            .with_slowdowns(120.0, (1.5, 3.0), SimDuration::from_secs(10))
            .with_link_failures(60.0, SimDuration::from_secs(5))
            .with_horizon(SimDuration::from_secs(3600))
    }

    #[test]
    fn same_seed_same_schedule() {
        let cfg = churn_cfg();
        let a = FaultPlan::generate(&cfg, &SimRng::new(42));
        let b = FaultPlan::generate(&cfg, &SimRng::new(42));
        assert_eq!(a, b);
        assert_eq!(a.fingerprint(), b.fingerprint());
        assert!(!a.is_empty());
    }

    #[test]
    fn different_seeds_differ() {
        let cfg = churn_cfg();
        let a = FaultPlan::generate(&cfg, &SimRng::new(42));
        let b = FaultPlan::generate(&cfg, &SimRng::new(43));
        assert_ne!(a.fingerprint(), b.fingerprint());
    }

    #[test]
    fn zero_rates_yield_empty_plan() {
        let cfg = FaultPlanConfig::none();
        assert!(cfg.is_fault_free());
        let plan = FaultPlan::generate(&cfg, &SimRng::new(7));
        assert!(plan.is_empty());
        assert_eq!(plan.crash_count(), 0);
    }

    #[test]
    fn schedule_is_sorted_and_within_horizon() {
        let cfg = churn_cfg();
        let plan = FaultPlan::generate(&cfg, &SimRng::new(9));
        let end = SimTime::ZERO + cfg.horizon;
        let mut prev = SimTime::ZERO;
        for f in plan.iter() {
            assert!(f.at >= prev, "plan must be sorted by fire time");
            assert!(f.at < end, "fault scheduled past the horizon");
            prev = f.at;
        }
    }

    #[test]
    fn classes_are_independent_streams() {
        // Turning one class off must not perturb the others' schedules.
        let full = FaultPlan::generate(&churn_cfg(), &SimRng::new(11));
        let mut no_slow = churn_cfg();
        no_slow.slowdown_rate_per_hour = 0.0;
        let partial = FaultPlan::generate(&no_slow, &SimRng::new(11));
        let crashes_full: Vec<_> = full
            .iter()
            .filter(|f| matches!(f.kind, FaultKind::Crash { .. }))
            .collect();
        let crashes_partial: Vec<_> = partial
            .iter()
            .filter(|f| matches!(f.kind, FaultKind::Crash { .. }))
            .collect();
        assert_eq!(crashes_full, crashes_partial);
    }

    #[test]
    fn start_offset_is_a_pure_translation() {
        let base = FaultPlan::generate(&churn_cfg(), &SimRng::new(17));
        let offset = SimDuration::from_secs(450);
        let shifted = FaultPlan::generate(&churn_cfg().with_start_offset(offset), &SimRng::new(17));
        assert_eq!(base.len(), shifted.len());
        assert_eq!(base.crash_count(), shifted.crash_count());
        for (b, s) in base.iter().zip(shifted.iter()) {
            assert_eq!(b.at + offset, s.at, "same schedule, translated");
            assert_eq!(b.target_rank, s.target_rank);
            assert_eq!(b.kind, s.kind);
        }
        // Nothing fires before the offset, nothing at or past offset+horizon.
        let start = SimTime::ZERO + offset;
        let end = start + churn_cfg().horizon;
        for f in shifted.iter() {
            assert!(f.at >= start && f.at < end);
        }
    }

    #[test]
    fn rate_roughly_matches_expectation() {
        let cfg = FaultPlanConfig::none()
            .with_crashes(120.0, None)
            .with_horizon(SimDuration::from_secs(3600));
        let plan = FaultPlan::generate(&cfg, &SimRng::new(3));
        // Poisson(120) over one hour: extremely unlikely to stray this far.
        assert!(
            plan.len() > 60 && plan.len() < 200,
            "got {} crashes for a 120/h rate",
            plan.len()
        );
    }
}
