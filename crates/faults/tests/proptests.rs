//! Property tests for fault-plan generation: the schedule must be a pure,
//! sorted function of (seed, config) for any rates.

use llumnix_faults::{FaultKind, FaultPlan, FaultPlanConfig};
use llumnix_sim::{SimDuration, SimRng, SimTime};
use proptest::prelude::*;

fn cfg(crash: f64, slow: f64, link: f64, horizon_secs: u64) -> FaultPlanConfig {
    FaultPlanConfig::none()
        .with_crashes(crash, Some(SimDuration::from_secs(5)))
        .with_slowdowns(slow, (1.2, 4.0), SimDuration::from_secs(8))
        .with_link_failures(link, SimDuration::from_secs(3))
        .with_horizon(SimDuration::from_secs(horizon_secs))
}

proptest! {
    /// Regenerating with the same seed reproduces the schedule exactly, and
    /// the schedule is sorted and confined to the horizon.
    #[test]
    fn plan_is_pure_sorted_and_bounded(
        seed in 0u64..1_000_000,
        crash in 0.0f64..200.0,
        slow in 0.0f64..200.0,
        link in 0.0f64..200.0,
        horizon_secs in 1u64..7_200,
    ) {
        let c = cfg(crash, slow, link, horizon_secs);
        let a = FaultPlan::generate(&c, &SimRng::new(seed));
        let b = FaultPlan::generate(&c, &SimRng::new(seed));
        prop_assert_eq!(&a, &b);
        prop_assert_eq!(a.fingerprint(), b.fingerprint());

        let end = SimTime::ZERO + c.horizon;
        let mut prev = SimTime::ZERO;
        for f in a.iter() {
            prop_assert!(f.at >= prev);
            prop_assert!(f.at < end);
            prev = f.at;
            if let FaultKind::Slowdown { factor, .. } = f.kind {
                prop_assert!((1.2..=4.0).contains(&factor));
            }
        }
    }

    /// Disabling a class removes exactly that class and nothing else.
    #[test]
    fn disabling_one_class_preserves_the_others(seed in 0u64..100_000) {
        let full = FaultPlan::generate(&cfg(40.0, 40.0, 40.0, 3600), &SimRng::new(seed));
        let no_link = FaultPlan::generate(&cfg(40.0, 40.0, 0.0, 3600), &SimRng::new(seed));
        let keep: Vec<_> = full
            .iter()
            .filter(|f| !matches!(f.kind, FaultKind::LinkFailure { .. }))
            .copied()
            .collect();
        let got: Vec<_> = no_link.iter().copied().collect();
        prop_assert_eq!(keep, got);
    }
}
