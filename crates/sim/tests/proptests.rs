//! Property tests for the simulation kernel.

use llumnix_sim::{EventQueue, SimDuration, SimRng, SimTime};
use proptest::prelude::*;

proptest! {
    /// Events always pop in non-decreasing time order, with FIFO ties.
    #[test]
    fn queue_pops_in_order(times in prop::collection::vec(0u64..10_000, 1..200)) {
        let mut q = EventQueue::new();
        for (i, &t) in times.iter().enumerate() {
            q.push(SimTime::from_micros(t), i);
        }
        let mut last_time = SimTime::ZERO;
        let mut seen_at_time: Vec<usize> = Vec::new();
        while let Some((t, idx)) = q.pop() {
            prop_assert!(t >= last_time);
            if t == last_time {
                if let Some(&prev) = seen_at_time.last() {
                    // FIFO within the same instant: indices ascend only if
                    // they were inserted at the same time.
                    if times[prev] == times[idx] {
                        prop_assert!(idx > prev);
                    }
                }
            } else {
                seen_at_time.clear();
            }
            seen_at_time.push(idx);
            last_time = t;
        }
    }

    /// Time arithmetic never wraps: adding any duration to any time is
    /// monotone, and `since` is the inverse of `+` when it does not clamp.
    #[test]
    fn time_arithmetic_is_monotone(base in 0u64..u64::MAX / 4, delta in 0u64..u64::MAX / 4) {
        let t = SimTime::from_micros(base);
        let d = SimDuration::from_micros(delta);
        let later = t + d;
        prop_assert!(later >= t);
        prop_assert_eq!(later.since(t), d);
        prop_assert_eq!(later - t, d);
    }

    /// Split RNG streams are stable: the same label yields the same stream
    /// regardless of other draws, and different labels differ.
    #[test]
    fn rng_split_stability(seed in any::<u64>(), label in "[a-z]{1,12}") {
        let root = SimRng::new(seed);
        let mut a = root.split(&label);
        let mut other = root.split("noise");
        let _ = other.uniform();
        let mut b = SimRng::new(seed).split(&label);
        for _ in 0..8 {
            prop_assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    /// Uniform samples stay in [0, 1).
    #[test]
    fn uniform_in_range(seed in any::<u64>()) {
        let mut rng = SimRng::new(seed);
        for _ in 0..100 {
            let u = rng.uniform();
            prop_assert!((0.0..1.0).contains(&u));
        }
    }

    /// Routing any subset of pushes through the coalesced calendar tier never
    /// changes the pop sequence: a mixed queue and a plain heap-only queue fed
    /// the same (time, payload) stream, with interleaved pops, stay in
    /// lockstep. Times are drawn from a tiny range so buckets really coalesce.
    #[test]
    fn coalesced_tier_is_pop_order_transparent(
        ops in prop::collection::vec((0u64..16, any::<bool>(), any::<bool>()), 1..400)
    ) {
        let mut mixed = EventQueue::new();
        let mut plain = EventQueue::new();
        for (i, &(t, coalesce, pop_after)) in ops.iter().enumerate() {
            let at = SimTime::from_micros(t);
            if coalesce {
                mixed.push_coalesced(at, i);
            } else {
                mixed.push(at, i);
            }
            plain.push(at, i);
            prop_assert_eq!(mixed.len(), plain.len());
            prop_assert_eq!(mixed.peek_time(), plain.peek_time());
            if pop_after {
                prop_assert_eq!(mixed.pop(), plain.pop());
            }
        }
        loop {
            let (a, b) = (mixed.pop(), plain.pop());
            prop_assert_eq!(a, b);
            if a.is_none() {
                break;
            }
        }
    }
}
