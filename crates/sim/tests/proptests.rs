//! Property tests for the simulation kernel.

use std::collections::BTreeMap;

use llumnix_sim::{merge_windowed, EffectKey, EventQueue, SimDuration, SimRng, SimTime};
use proptest::prelude::*;

/// Pops everything strictly before `end` from one shard queue, tagging each
/// pop with its canonical [`EffectKey`]: the pop time, the entity, and a
/// per-`(time, entity)` emission counter. Mirrors how the serving loop's
/// window drain keys its cross-shard effects.
fn drain_window(
    q: &mut EventQueue<(u64, usize)>,
    end: SimTime,
    seqs: &mut BTreeMap<(SimTime, u64), u32>,
) -> Vec<(EffectKey, usize)> {
    let mut out = Vec::new();
    while q.peek_time().is_some_and(|t| t < end) {
        let (at, (entity, item)) = q.pop().expect("peeked");
        let seq = seqs.entry((at, entity)).or_insert(0);
        out.push((
            EffectKey {
                at,
                entity,
                seq: *seq,
            },
            item,
        ));
        *seq += 1;
    }
    out
}

proptest! {
    /// Events always pop in non-decreasing time order, with FIFO ties.
    #[test]
    fn queue_pops_in_order(times in prop::collection::vec(0u64..10_000, 1..200)) {
        let mut q = EventQueue::new();
        for (i, &t) in times.iter().enumerate() {
            q.push(SimTime::from_micros(t), i);
        }
        let mut last_time = SimTime::ZERO;
        let mut seen_at_time: Vec<usize> = Vec::new();
        while let Some((t, idx)) = q.pop() {
            prop_assert!(t >= last_time);
            if t == last_time {
                if let Some(&prev) = seen_at_time.last() {
                    // FIFO within the same instant: indices ascend only if
                    // they were inserted at the same time.
                    if times[prev] == times[idx] {
                        prop_assert!(idx > prev);
                    }
                }
            } else {
                seen_at_time.clear();
            }
            seen_at_time.push(idx);
            last_time = t;
        }
    }

    /// Time arithmetic never wraps: adding any duration to any time is
    /// monotone, and `since` is the inverse of `+` when it does not clamp.
    #[test]
    fn time_arithmetic_is_monotone(base in 0u64..u64::MAX / 4, delta in 0u64..u64::MAX / 4) {
        let t = SimTime::from_micros(base);
        let d = SimDuration::from_micros(delta);
        let later = t + d;
        prop_assert!(later >= t);
        prop_assert_eq!(later.since(t), d);
        prop_assert_eq!(later - t, d);
    }

    /// Split RNG streams are stable: the same label yields the same stream
    /// regardless of other draws, and different labels differ.
    #[test]
    fn rng_split_stability(seed in any::<u64>(), label in "[a-z]{1,12}") {
        let root = SimRng::new(seed);
        let mut a = root.split(&label);
        let mut other = root.split("noise");
        let _ = other.uniform();
        let mut b = SimRng::new(seed).split(&label);
        for _ in 0..8 {
            prop_assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    /// Uniform samples stay in [0, 1).
    #[test]
    fn uniform_in_range(seed in any::<u64>()) {
        let mut rng = SimRng::new(seed);
        for _ in 0..100 {
            let u = rng.uniform();
            prop_assert!((0.0..1.0).contains(&u));
        }
    }

    /// Routing any subset of pushes through the coalesced calendar tier never
    /// changes the pop sequence: a mixed queue and a plain heap-only queue fed
    /// the same (time, payload) stream, with interleaved pops, stay in
    /// lockstep. Times are drawn from a tiny range so buckets really coalesce.
    #[test]
    fn coalesced_tier_is_pop_order_transparent(
        ops in prop::collection::vec((0u64..16, any::<bool>(), any::<bool>()), 1..400)
    ) {
        let mut mixed = EventQueue::new();
        let mut plain = EventQueue::new();
        for (i, &(t, coalesce, pop_after)) in ops.iter().enumerate() {
            let at = SimTime::from_micros(t);
            if coalesce {
                mixed.push_coalesced(at, i);
            } else {
                mixed.push(at, i);
            }
            plain.push(at, i);
            prop_assert_eq!(mixed.len(), plain.len());
            prop_assert_eq!(mixed.peek_time(), plain.peek_time());
            if pop_after {
                prop_assert_eq!(mixed.pop(), plain.pop());
            }
        }
        loop {
            let (a, b) = (mixed.pop(), plain.pop());
            prop_assert_eq!(a, b);
            if a.is_none() {
                break;
            }
        }
    }

    /// Draining K per-shard queues window by window and merging each window
    /// at the barrier reproduces the single-queue canonical order exactly —
    /// for any shard count, any window length, and any mix of heap and
    /// coalesced-bucket pushes. Times are drawn from a tiny range so
    /// same-timestamp coalesced buckets (the FIFO-tie case that the barrier
    /// sort must canonicalize) occur constantly.
    #[test]
    fn windowed_shard_merge_matches_single_queue(
        events in prop::collection::vec((0u64..48, 0u64..12, any::<bool>()), 1..300),
        shards in 1usize..6,
        window in 1u64..16,
    ) {
        // The same event stream feeds one reference queue and K shard
        // queues routed by entity, preserving per-entity push order.
        let mut single = EventQueue::new();
        let mut sharded: Vec<EventQueue<(u64, usize)>> =
            (0..shards).map(|_| EventQueue::new()).collect();
        for (item, &(t, entity, coalesce)) in events.iter().enumerate() {
            let at = SimTime::from_micros(t);
            let shard = &mut sharded[entity as usize % shards];
            if coalesce {
                single.push_coalesced(at, (entity, item));
                shard.push_coalesced(at, (entity, item));
            } else {
                single.push(at, (entity, item));
                shard.push(at, (entity, item));
            }
        }
        // Drain both through the same fixed window grid; each run assigns
        // its own emission counters. Per-entity pop order is identical in
        // both runs (entities never split across shards), so the counters
        // assign the same key to the same item.
        let mut single_seqs = BTreeMap::new();
        let mut shard_seqs = BTreeMap::new();
        let mut reference: Vec<(EffectKey, usize)> = Vec::new();
        let mut merged: Vec<(EffectKey, usize)> = Vec::new();
        let mut window_start = 0u64;
        while !single.is_empty() || sharded.iter().any(|q| !q.is_empty()) {
            let end = SimTime::from_micros(window_start + window);
            reference.extend(merge_windowed(vec![drain_window(
                &mut single,
                end,
                &mut single_seqs,
            )]));
            let buffers: Vec<_> = sharded
                .iter_mut()
                .map(|q| drain_window(q, end, &mut shard_seqs))
                .collect();
            merged.extend(merge_windowed(buffers));
            window_start += window;
        }
        prop_assert_eq!(reference.len(), events.len());
        prop_assert_eq!(&merged, &reference);
        // The merged stream is sorted by key with no duplicates: a total
        // order, independent of how the windows chopped it.
        prop_assert!(merged.windows(2).all(|w| w[0].0 < w[1].0));
    }
}
