//! Deterministic, splittable random number generation.
//!
//! Every stochastic component in the simulator draws from a [`SimRng`] derived
//! from a single experiment seed. Splitting by a component label produces
//! statistically independent streams whose values do not change when other
//! components are added or reordered, which keeps whole experiments
//! reproducible down to the byte.
//!
//! The generator is a self-contained xoshiro256** whose state is expanded
//! from the 64-bit seed with SplitMix64, so the crate carries no external
//! RNG dependency and the streams are identical on every platform.

/// A seeded RNG with stable, label-based splitting.
pub struct SimRng {
    seed: u64,
    state: [u64; 4],
}

impl SimRng {
    /// Creates a generator from an experiment seed.
    pub fn new(seed: u64) -> Self {
        let mut sm = seed;
        let mut next = || {
            sm = sm.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        };
        SimRng {
            seed,
            state: [next(), next(), next(), next()],
        }
    }

    /// The seed this generator was created from.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Derives an independent child generator for the component `label`.
    ///
    /// The child depends only on this generator's seed and the label, not on
    /// how many values have been drawn, so components can be split in any
    /// order without perturbing each other.
    pub fn split(&self, label: &str) -> SimRng {
        let child_seed = mix(self.seed, hash_label(label));
        SimRng::new(child_seed)
    }

    /// Derives an independent child generator for an indexed component,
    /// e.g. one stream per instance.
    pub fn split_indexed(&self, label: &str, index: u64) -> SimRng {
        let child_seed = mix(mix(self.seed, hash_label(label)), index);
        SimRng::new(child_seed)
    }

    /// The next raw 64-bit output (xoshiro256**).
    pub fn next_u64(&mut self) -> u64 {
        let result = self.state[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.state[1] << 17;
        self.state[2] ^= self.state[0];
        self.state[3] ^= self.state[1];
        self.state[1] ^= self.state[2];
        self.state[0] ^= self.state[3];
        self.state[2] ^= t;
        self.state[3] = self.state[3].rotate_left(45);
        result
    }

    /// The next raw 32-bit output.
    pub fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fills a byte slice with random data.
    pub fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let word = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&word[..chunk.len()]);
        }
    }

    /// A uniform sample in `[0, 1)` using the top 53 bits.
    pub fn uniform(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// A uniform sample in `[lo, hi)`. Returns `lo` when the range is empty.
    pub fn uniform_range(&mut self, lo: f64, hi: f64) -> f64 {
        if hi <= lo {
            return lo;
        }
        lo + (hi - lo) * self.uniform()
    }

    /// A uniform integer in `[0, n)`. Returns 0 when `n == 0`.
    pub fn index(&mut self, n: usize) -> usize {
        if n == 0 {
            return 0;
        }
        (self.next_u64() % n as u64) as usize
    }

    /// A Bernoulli trial with success probability `p` (clamped to `[0, 1]`).
    pub fn chance(&mut self, p: f64) -> bool {
        self.uniform() < p.clamp(0.0, 1.0)
    }
}

/// FNV-1a hash of a label, for stable stream derivation.
fn hash_label(label: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in label.as_bytes() {
        h ^= *b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// SplitMix64-style mixing of two words into a child seed.
fn mix(a: u64, b: u64) -> u64 {
    let mut z = a ^ b.wrapping_mul(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = SimRng::new(42);
        let mut b = SimRng::new(42);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = SimRng::new(1);
        let mut b = SimRng::new(2);
        let va: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        assert_ne!(va, vb);
    }

    #[test]
    fn split_is_order_independent() {
        let root = SimRng::new(7);
        let mut a1 = root.split("arrivals");
        let mut consumed = root.split("lengths");
        let _ = consumed.next_u64();
        // Splitting again after other activity yields the same child stream.
        let mut a2 = SimRng::new(7).split("arrivals");
        for _ in 0..16 {
            assert_eq!(a1.next_u64(), a2.next_u64());
        }
    }

    #[test]
    fn split_labels_are_independent() {
        let root = SimRng::new(7);
        let mut a = root.split("a");
        let mut b = root.split("b");
        assert_ne!(a.next_u64(), b.next_u64());
        let mut i0 = root.split_indexed("inst", 0);
        let mut i1 = root.split_indexed("inst", 1);
        assert_ne!(i0.next_u64(), i1.next_u64());
    }

    #[test]
    fn uniform_bounds() {
        let mut r = SimRng::new(3);
        for _ in 0..1000 {
            let u = r.uniform();
            assert!((0.0..1.0).contains(&u));
        }
        assert_eq!(r.uniform_range(5.0, 5.0), 5.0);
        assert_eq!(r.index(0), 0);
        assert!(!r.chance(0.0));
        assert!(r.chance(1.0));
    }

    #[test]
    fn uniform_mean_is_half() {
        let mut r = SimRng::new(11);
        let n = 20_000;
        let mean: f64 = (0..n).map(|_| r.uniform()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean = {mean}");
    }

    #[test]
    fn fill_bytes_is_deterministic_and_varied() {
        let mut a = SimRng::new(5);
        let mut b = SimRng::new(5);
        let mut buf_a = [0u8; 13];
        let mut buf_b = [0u8; 13];
        a.fill_bytes(&mut buf_a);
        b.fill_bytes(&mut buf_b);
        assert_eq!(buf_a, buf_b);
        assert!(buf_a.iter().any(|&x| x != buf_a[0]));
    }
}
