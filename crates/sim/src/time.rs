//! Simulation time types.
//!
//! The simulator runs on a microsecond-resolution integer clock. Two newtypes
//! keep instants and durations apart at the type level: [`SimTime`] is a point
//! on the simulation timeline and [`SimDuration`] is a span between two points.
//! Arithmetic is saturating so that sentinel values such as
//! [`SimTime::FOREVER`] behave like infinity instead of wrapping.

use core::fmt;
use core::iter::Sum;
use core::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

use serde::{Deserialize, Serialize};

/// A point in simulated time, in microseconds since the simulation epoch.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SimTime(u64);

/// A span of simulated time, in microseconds.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SimDuration(u64);

impl SimTime {
    /// The simulation epoch (t = 0).
    pub const ZERO: SimTime = SimTime(0);

    /// A sentinel instant later than any reachable simulation time.
    pub const FOREVER: SimTime = SimTime(u64::MAX);

    /// Creates an instant from raw microseconds.
    pub const fn from_micros(us: u64) -> Self {
        SimTime(us)
    }

    /// Creates an instant from milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        SimTime(ms.saturating_mul(1_000))
    }

    /// Creates an instant from whole seconds.
    pub const fn from_secs(s: u64) -> Self {
        SimTime(s.saturating_mul(1_000_000))
    }

    /// Creates an instant from fractional seconds.
    ///
    /// Negative and non-finite inputs clamp to zero.
    pub fn from_secs_f64(s: f64) -> Self {
        if !s.is_finite() || s <= 0.0 {
            return SimTime::ZERO;
        }
        SimTime((s * 1e6).round().min(u64::MAX as f64) as u64)
    }

    /// Raw microseconds since the epoch.
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// Time since the epoch as fractional seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Duration elapsed since `earlier`, or zero if `earlier` is later.
    pub fn since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }

    /// Whether this is the [`SimTime::FOREVER`] sentinel.
    pub const fn is_forever(self) -> bool {
        self.0 == u64::MAX
    }
}

impl SimDuration {
    /// The zero-length duration.
    pub const ZERO: SimDuration = SimDuration(0);

    /// A sentinel duration longer than any reachable span.
    pub const FOREVER: SimDuration = SimDuration(u64::MAX);

    /// Creates a duration from raw microseconds.
    pub const fn from_micros(us: u64) -> Self {
        SimDuration(us)
    }

    /// Creates a duration from milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        SimDuration(ms.saturating_mul(1_000))
    }

    /// Creates a duration from whole seconds.
    pub const fn from_secs(s: u64) -> Self {
        SimDuration(s.saturating_mul(1_000_000))
    }

    /// Creates a duration from fractional seconds.
    ///
    /// Negative and non-finite inputs clamp to zero.
    pub fn from_secs_f64(s: f64) -> Self {
        if !s.is_finite() || s <= 0.0 {
            return SimDuration::ZERO;
        }
        SimDuration((s * 1e6).round().min(u64::MAX as f64) as u64)
    }

    /// Creates a duration from fractional milliseconds.
    pub fn from_millis_f64(ms: f64) -> Self {
        SimDuration::from_secs_f64(ms / 1e3)
    }

    /// Raw microseconds.
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// The duration as fractional seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// The duration as fractional milliseconds.
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1e3
    }

    /// Whether the duration is zero.
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Saturating multiplication by an integer factor.
    pub const fn saturating_mul(self, factor: u64) -> Self {
        SimDuration(self.0.saturating_mul(factor))
    }

    /// Scales the duration by a non-negative float factor, rounding to µs.
    pub fn mul_f64(self, factor: f64) -> Self {
        SimDuration::from_secs_f64(self.as_secs_f64() * factor)
    }

    /// The larger of two durations.
    pub fn max(self, other: SimDuration) -> SimDuration {
        if self.0 >= other.0 {
            self
        } else {
            other
        }
    }

    /// The smaller of two durations.
    pub fn min(self, other: SimDuration) -> SimDuration {
        if self.0 <= other.0 {
            self
        } else {
            other
        }
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;

    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 = self.0.saturating_add(rhs.0);
    }
}

impl Sub<SimDuration> for SimTime {
    type Output = SimTime;

    fn sub(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0.saturating_sub(rhs.0))
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;

    fn sub(self, rhs: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

impl Add for SimDuration {
    type Output = SimDuration;

    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 = self.0.saturating_add(rhs.0);
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;

    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

impl SubAssign for SimDuration {
    fn sub_assign(&mut self, rhs: SimDuration) {
        self.0 = self.0.saturating_sub(rhs.0);
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;

    fn mul(self, rhs: u64) -> SimDuration {
        self.saturating_mul(rhs)
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;

    fn div(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 / rhs.max(1))
    }
}

impl Sum for SimDuration {
    fn sum<I: Iterator<Item = SimDuration>>(iter: I) -> SimDuration {
        iter.fold(SimDuration::ZERO, Add::add)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_forever() {
            write!(f, "forever")
        } else {
            write!(f, "{:.6}s", self.as_secs_f64())
        }
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 == u64::MAX {
            write!(f, "forever")
        } else if self.0 >= 1_000_000 {
            write!(f, "{:.3}s", self.as_secs_f64())
        } else if self.0 >= 1_000 {
            write!(f, "{:.3}ms", self.as_millis_f64())
        } else {
            write!(f, "{}us", self.0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn time_arithmetic_roundtrips() {
        let t = SimTime::from_secs(2) + SimDuration::from_millis(500);
        assert_eq!(t.as_micros(), 2_500_000);
        assert_eq!(t - SimTime::from_secs(1), SimDuration::from_millis(1_500));
        assert_eq!(
            t.since(SimTime::from_secs(2)),
            SimDuration::from_millis(500)
        );
    }

    #[test]
    fn since_clamps_to_zero() {
        let early = SimTime::from_secs(1);
        let late = SimTime::from_secs(3);
        assert_eq!(early.since(late), SimDuration::ZERO);
        assert_eq!(early - late, SimDuration::ZERO);
    }

    #[test]
    fn forever_saturates() {
        let t = SimTime::FOREVER + SimDuration::from_secs(1);
        assert!(t.is_forever());
        let d = SimDuration::FOREVER + SimDuration::from_secs(1);
        assert_eq!(d, SimDuration::FOREVER);
    }

    #[test]
    fn float_conversions() {
        let d = SimDuration::from_secs_f64(1.25);
        assert_eq!(d.as_micros(), 1_250_000);
        assert!((d.as_secs_f64() - 1.25).abs() < 1e-9);
        assert_eq!(SimDuration::from_secs_f64(-1.0), SimDuration::ZERO);
        assert_eq!(SimDuration::from_secs_f64(f64::NAN), SimDuration::ZERO);
        assert_eq!(SimTime::from_secs_f64(f64::INFINITY), SimTime::ZERO);
        assert_eq!(SimDuration::from_millis_f64(2.5).as_micros(), 2_500);
    }

    #[test]
    fn duration_scaling() {
        let d = SimDuration::from_millis(100);
        assert_eq!(d.mul_f64(2.5), SimDuration::from_millis(250));
        assert_eq!(d * 3, SimDuration::from_millis(300));
        assert_eq!(d / 4, SimDuration::from_millis(25));
        // Division by zero clamps to division by one rather than panicking.
        assert_eq!(d / 0, d);
    }

    #[test]
    fn display_formats() {
        assert_eq!(format!("{}", SimDuration::from_micros(12)), "12us");
        assert_eq!(format!("{}", SimDuration::from_millis(12)), "12.000ms");
        assert_eq!(format!("{}", SimDuration::from_secs(12)), "12.000s");
        assert_eq!(format!("{}", SimTime::FOREVER), "forever");
    }

    #[test]
    fn duration_sum_and_minmax() {
        let total: SimDuration = [
            SimDuration::from_millis(1),
            SimDuration::from_millis(2),
            SimDuration::from_millis(3),
        ]
        .into_iter()
        .sum();
        assert_eq!(total, SimDuration::from_millis(6));
        let a = SimDuration::from_millis(1);
        let b = SimDuration::from_millis(2);
        assert_eq!(a.max(b), b);
        assert_eq!(a.min(b), a);
    }
}
