//! Deterministic discrete-event simulation kernel for llumnix-rs.
//!
//! This crate provides the minimal machinery the serving simulator is built
//! on: microsecond-resolution [`SimTime`]/[`SimDuration`] types, a
//! FIFO-tie-broken [`EventQueue`], a monotonic [`Clock`], and the splittable
//! seeded [`SimRng`]. Everything is deterministic: a simulation driven from a
//! single seed replays identically across runs and platforms.

#![warn(missing_docs)]
#![forbid(unsafe_code)]
#![deny(rust_2018_idioms)]

mod clock;
mod queue;
mod rng;
pub mod shard;
mod time;

pub use clock::{Clock, ClockError};
pub use queue::EventQueue;
pub use rng::SimRng;
pub use shard::{merge_windowed, EffectKey, ShardPool};
pub use time::{SimDuration, SimTime};
