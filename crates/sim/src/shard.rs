//! Generic machinery for conservative time-windowed sharded simulation.
//!
//! A sharded simulation partitions its state into `K` shards, each draining
//! its own [`EventQueue`](crate::EventQueue) over a bounded time window
//! `[t, t + lookahead)`, then meets at a barrier where buffered cross-shard
//! effects are merged and applied in a canonical order. Two pieces are
//! generic and live here:
//!
//! * [`merge_windowed`] — the barrier merge. Each shard hands back the
//!   effects it emitted during the window, tagged with a totally ordered
//!   key; the merge produces one globally sorted stream. Because the key is
//!   derived from simulation state only (timestamp, then a stable event
//!   key), the merged order — and therefore everything the barrier applies —
//!   is identical for every shard count, including `K = 1`. This is the
//!   byte-identical-schedule contract extended across shards.
//! * [`ShardPool`] — persistent worker threads that window-drain shard
//!   states in parallel. Shard states ping-pong over channels (moved to a
//!   worker for the window, moved back with the window's outbox), so no
//!   locks and no shared mutable state are involved; the pool is pure
//!   plumbing and cannot affect results. With no workers (a one-core
//!   machine, or `K = 1`) the caller runs the same drain function inline
//!   and gets the same bytes.
//!
//! Determinism note: nothing here reads wall-clock time or iterates an
//! unordered container; whether a window runs inline or on workers only
//! changes which thread computes it, never what it computes.

use std::sync::mpsc::{channel, Receiver, Sender};
use std::thread::JoinHandle;

use crate::time::SimTime;

/// Canonical ordering key for one cross-shard effect: the simulated instant
/// it was emitted, a stable entity key (e.g. the emitting instance id), and
/// the emission index within that `(time, entity)` episode.
///
/// The key deliberately contains nothing shard-dependent: two runs of the
/// same simulation at different shard counts emit the same effects with the
/// same keys, so the barrier merge applies them in the same order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct EffectKey {
    /// Simulated time the effect was emitted.
    pub at: SimTime,
    /// Stable entity id (shard-count independent), e.g. the instance id.
    pub entity: u64,
    /// Emission sequence within this `(at, entity)` episode.
    pub seq: u32,
}

/// Merges per-shard effect buffers into one stream sorted by key.
///
/// Input buffers arrive in local emission order: time-ordered across pops,
/// but same-time pops within one shard surface in push order, not entity
/// order. The sort canonicalizes both — the output order is a pure function
/// of the union of items, so partitioning the same items differently across
/// buffers (or reordering within a buffer) cannot change it. Debug builds
/// assert the merged keys are globally unique, the property that makes the
/// sorted order total.
pub fn merge_windowed<K: Ord + Copy, T>(mut per_shard: Vec<Vec<(K, T)>>) -> Vec<(K, T)> {
    let total: usize = per_shard.iter().map(Vec::len).sum();
    let mut merged: Vec<(K, T)> = Vec::with_capacity(total);
    for buf in per_shard.iter_mut() {
        merged.append(buf);
    }
    // The concatenation is K nearly-sorted runs; the stdlib mergesort is
    // adaptive and exploits them. Keys never tie across shards (an entity
    // lives on exactly one shard and `seq` orders its emissions), so a
    // stable sort is a total order, not an ordering policy.
    merged.sort_by_key(|item| item.0);
    #[cfg(debug_assertions)]
    debug_assert!(
        merged.windows(2).all(|w| w[0].0 < w[1].0),
        "effect keys must be unique across shards"
    );
    merged
}

/// Message to a pool worker: a shard state to drain up to a window end.
enum Job<S> {
    Run(S, SimTime),
    Stop,
}

/// A persistent pool of window-drain workers.
///
/// Constructed with the number of *worker threads* (typically `K - 1`:
/// the coordinator thread drains one shard itself while workers drain the
/// rest) and the drain function. Each [`ShardPool::dispatch`] moves a shard
/// state to a worker; [`ShardPool::collect`] moves it back together with
/// whatever the drain function returned (the window outbox).
pub struct ShardPool<S, O> {
    to_workers: Vec<Sender<Job<S>>>,
    from_workers: Vec<Receiver<(S, O)>>,
    handles: Vec<JoinHandle<()>>,
}

impl<S: Send + 'static, O: Send + 'static> ShardPool<S, O> {
    /// Spawns `workers` threads, each looping on `drain`.
    pub fn new(workers: usize, drain: fn(&mut S, SimTime) -> O) -> Self {
        let mut to_workers = Vec::with_capacity(workers);
        let mut from_workers = Vec::with_capacity(workers);
        let mut handles = Vec::with_capacity(workers);
        for _ in 0..workers {
            let (tx_job, rx_job) = channel::<Job<S>>();
            let (tx_done, rx_done) = channel::<(S, O)>();
            let handle = std::thread::spawn(move || {
                while let Ok(job) = rx_job.recv() {
                    match job {
                        Job::Run(mut state, window_end) => {
                            let out = drain(&mut state, window_end);
                            if tx_done.send((state, out)).is_err() {
                                break; // Pool dropped mid-window.
                            }
                        }
                        Job::Stop => break,
                    }
                }
            });
            to_workers.push(tx_job);
            from_workers.push(rx_done);
            handles.push(handle);
        }
        ShardPool {
            to_workers,
            from_workers,
            handles,
        }
    }

    /// Number of worker threads.
    pub fn workers(&self) -> usize {
        self.to_workers.len()
    }

    /// Hands `state` to worker `w` to drain up to `window_end`.
    ///
    /// # Panics
    ///
    /// Panics if the worker died (a drain panicked in a previous window).
    pub fn dispatch(&self, w: usize, state: S, window_end: SimTime) {
        self.to_workers[w]
            .send(Job::Run(state, window_end))
            .expect("shard worker died");
    }

    /// Waits for worker `w`'s window to finish and returns the state and
    /// outbox. Must pair with a prior [`ShardPool::dispatch`] to `w`.
    ///
    /// # Panics
    ///
    /// Panics if the worker died (its drain call panicked).
    pub fn collect(&self, w: usize) -> (S, O) {
        self.from_workers[w]
            .recv()
            .expect("shard worker panicked during window drain")
    }
}

impl<S, O> Drop for ShardPool<S, O> {
    fn drop(&mut self) {
        for tx in &self.to_workers {
            // A dead worker already dropped its receiver; ignore.
            let _ = tx.send(Job::Stop);
        }
        for handle in self.handles.drain(..) {
            // Don't double-panic while unwinding: the original panic is the
            // diagnostic that matters.
            let joined = handle.join();
            if !std::thread::panicking() {
                joined.expect("shard worker panicked");
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(at: u64, entity: u64, seq: u32) -> EffectKey {
        EffectKey {
            at: SimTime::from_micros(at),
            entity,
            seq,
        }
    }

    #[test]
    fn merge_is_partition_independent() {
        // The same 6 effects, split two different ways across shards, merge
        // to the same stream.
        let items = [
            (key(1, 10, 0), "a"),
            (key(1, 11, 0), "b"),
            (key(1, 11, 1), "c"),
            (key(2, 10, 0), "d"),
            (key(2, 12, 0), "e"),
            (key(3, 11, 0), "f"),
        ];
        let by_entity_parity: Vec<Vec<_>> = vec![
            items
                .iter()
                .copied()
                .filter(|(k, _)| k.entity % 2 == 0)
                .collect(),
            items
                .iter()
                .copied()
                .filter(|(k, _)| k.entity % 2 == 1)
                .collect(),
        ];
        let all_in_one: Vec<Vec<_>> = vec![items.to_vec(), Vec::new()];
        let a: Vec<&str> = merge_windowed(by_entity_parity)
            .into_iter()
            .map(|(_, v)| v)
            .collect();
        let b: Vec<&str> = merge_windowed(all_in_one)
            .into_iter()
            .map(|(_, v)| v)
            .collect();
        assert_eq!(a, b);
        assert_eq!(a, vec!["a", "b", "c", "d", "e", "f"]);
    }

    #[test]
    fn pool_round_trips_state_and_outbox() {
        // Each drain call appends the window end to the state and reports
        // the count so far.
        fn drain(state: &mut Vec<SimTime>, end: SimTime) -> usize {
            state.push(end);
            state.len()
        }
        let pool: ShardPool<Vec<SimTime>, usize> = ShardPool::new(2, drain);
        assert_eq!(pool.workers(), 2);
        let mut states = vec![vec![], vec![]];
        for round in 1..=3u64 {
            let end = SimTime::from_millis(round);
            for (w, state) in states.iter_mut().enumerate() {
                pool.dispatch(w, std::mem::take(state), end);
            }
            for (w, state) in states.iter_mut().enumerate() {
                let (returned, count) = pool.collect(w);
                assert_eq!(count, round as usize);
                *state = returned;
            }
        }
        for state in &states {
            assert_eq!(state.len(), 3);
        }
    }
}
