//! Deterministic event queue.
//!
//! [`EventQueue`] is a priority queue of `(SimTime, E)` pairs ordered by time.
//! Events scheduled for the same instant pop in insertion order (FIFO), which
//! makes simulation runs reproducible regardless of the payload type.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::time::SimTime;

/// A scheduled event: when it fires, a tie-breaking sequence number, and the
/// caller's payload.
struct Scheduled<E> {
    at: SimTime,
    seq: u64,
    payload: E,
}

impl<E> PartialEq for Scheduled<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}

impl<E> Eq for Scheduled<E> {}

impl<E> PartialOrd for Scheduled<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for Scheduled<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so the earliest event is on top,
        // with the lowest sequence number breaking ties.
        other
            .at
            .cmp(&self.at)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// A deterministic time-ordered event queue.
///
/// # Examples
///
/// ```
/// use llumnix_sim::{EventQueue, SimTime};
///
/// let mut q = EventQueue::new();
/// q.push(SimTime::from_secs(2), "late");
/// q.push(SimTime::from_secs(1), "early");
/// assert_eq!(q.pop(), Some((SimTime::from_secs(1), "early")));
/// assert_eq!(q.pop(), Some((SimTime::from_secs(2), "late")));
/// assert_eq!(q.pop(), None);
/// ```
pub struct EventQueue<E> {
    heap: BinaryHeap<Scheduled<E>>,
    next_seq: u64,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            next_seq: 0,
        }
    }

    /// Schedules `payload` to fire at `at`.
    pub fn push(&mut self, at: SimTime, payload: E) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Scheduled { at, seq, payload });
    }

    /// Removes and returns the earliest event, if any.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        self.heap.pop().map(|s| (s.at, s.payload))
    }

    /// The firing time of the earliest event, if any.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|s| s.at)
    }

    /// The number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Drops all pending events.
    pub fn clear(&mut self) {
        self.heap.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_millis(30), 3);
        q.push(SimTime::from_millis(10), 1);
        q.push(SimTime::from_millis(20), 2);
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, vec![1, 2, 3]);
    }

    #[test]
    fn same_time_is_fifo() {
        let mut q = EventQueue::new();
        let t = SimTime::from_millis(5);
        for i in 0..100 {
            q.push(t, i);
        }
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn peek_and_len() {
        let mut q = EventQueue::new();
        assert!(q.is_empty());
        assert_eq!(q.peek_time(), None);
        q.push(SimTime::from_secs(1), ());
        q.push(SimTime::from_secs(3), ());
        assert_eq!(q.len(), 2);
        assert_eq!(q.peek_time(), Some(SimTime::from_secs(1)));
        q.clear();
        assert!(q.is_empty());
    }

    #[test]
    fn interleaved_push_pop_stays_ordered() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_millis(10), "a");
        q.push(SimTime::from_millis(30), "c");
        assert_eq!(q.pop().map(|(_, e)| e), Some("a"));
        q.push(SimTime::from_millis(20), "b");
        assert_eq!(q.pop().map(|(_, e)| e), Some("b"));
        assert_eq!(q.pop().map(|(_, e)| e), Some("c"));
    }
}
