//! Deterministic event queue.
//!
//! [`EventQueue`] is a priority queue of `(SimTime, E)` pairs ordered by time.
//! Events scheduled for the same instant pop in insertion order (FIFO), which
//! makes simulation runs reproducible regardless of the payload type.
//!
//! # Coalesced tier
//!
//! High-volume periodic events (one engine step completion per instance per
//! step, at 1024+ instances) would each pay an `O(log n)` heap sift. Such
//! events can instead be scheduled through [`EventQueue::push_coalesced`],
//! which appends them to a calendar bucket keyed by firing time: instances
//! whose steps finish at the same instant share one `BTreeMap` node and each
//! append is an amortised `O(1)` `VecDeque` push. Both tiers draw sequence
//! numbers from the same counter and [`EventQueue::pop`] merges them by
//! `(time, seq)`, so the pop order is *exactly* the order a single heap would
//! have produced — coalescing is a representation change, not a scheduling
//! change. Debug builds verify this on every pop against a shadow schedule
//! that records each push the way the unbatched heap would have.

use std::cmp::Ordering;
use std::collections::{BTreeMap, BinaryHeap, VecDeque};

use crate::time::SimTime;

/// A scheduled event: when it fires, a tie-breaking sequence number, and the
/// caller's payload.
#[derive(Clone)]
struct Scheduled<E> {
    at: SimTime,
    seq: u64,
    payload: E,
}

impl<E> PartialEq for Scheduled<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}

impl<E> Eq for Scheduled<E> {}

impl<E> PartialOrd for Scheduled<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for Scheduled<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so the earliest event is on top,
        // with the lowest sequence number breaking ties.
        other
            .at
            .cmp(&self.at)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// A deterministic time-ordered event queue.
///
/// # Examples
///
/// ```
/// use llumnix_sim::{EventQueue, SimTime};
///
/// let mut q = EventQueue::new();
/// q.push(SimTime::from_secs(2), "late");
/// q.push(SimTime::from_secs(1), "early");
/// assert_eq!(q.pop(), Some((SimTime::from_secs(1), "early")));
/// assert_eq!(q.pop(), Some((SimTime::from_secs(2), "late")));
/// assert_eq!(q.pop(), None);
/// ```
///
/// Cloning a queue (for [`crate`]-level snapshot/fork support) copies both
/// tiers, the sequence counter, the coalescing statistics, and — in debug
/// builds — the shadow schedule, so a clone pops the exact same stream as the
/// original and keeps cross-checking it.
#[derive(Clone)]
pub struct EventQueue<E> {
    heap: BinaryHeap<Scheduled<E>>,
    /// Calendar tier: events coalesced into per-instant buckets. Appends
    /// within a bucket are in ascending `seq` order, so the bucket front
    /// always holds the bucket's minimum sequence number.
    buckets: BTreeMap<SimTime, VecDeque<(u64, E)>>,
    bucket_len: usize,
    next_seq: u64,
    coalesced_events: u64,
    coalesced_buckets: u64,
    /// Unbatched reference schedule: every push lands here too, and every pop
    /// must match it. This is the determinism cross-check demanded by the
    /// coalescing contract (DESIGN.md §7.4).
    #[cfg(debug_assertions)]
    shadow: BinaryHeap<std::cmp::Reverse<(SimTime, u64)>>,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            buckets: BTreeMap::new(),
            bucket_len: 0,
            next_seq: 0,
            coalesced_events: 0,
            coalesced_buckets: 0,
            #[cfg(debug_assertions)]
            shadow: BinaryHeap::new(),
        }
    }

    /// Schedules `payload` to fire at `at`.
    pub fn push(&mut self, at: SimTime, payload: E) {
        let seq = self.take_seq(at);
        self.heap.push(Scheduled { at, seq, payload });
    }

    /// Schedules `payload` to fire at `at` through the coalesced calendar
    /// tier.
    ///
    /// Pops interleave with [`EventQueue::push`]-ed events in exact
    /// `(time, insertion)` order; the only difference is cost. Use this for
    /// high-volume event classes where many events share firing instants
    /// (e.g. per-instance engine step completions in a large fleet).
    pub fn push_coalesced(&mut self, at: SimTime, payload: E) {
        let seq = self.take_seq(at);
        let bucket = self.buckets.entry(at).or_insert_with(|| {
            self.coalesced_buckets += 1;
            VecDeque::new()
        });
        bucket.push_back((seq, payload));
        self.bucket_len += 1;
        self.coalesced_events += 1;
    }

    /// Schedules `payload` at `at`, ordered *before* every currently-pending
    /// event in same-instant tie-breaks.
    ///
    /// A plain [`EventQueue::push`] takes the next sequence number, so among
    /// events firing at the same instant it pops *after* everything already
    /// pending. Forking a snapshot sometimes needs the opposite: an event
    /// injected mid-run (e.g. re-activating a fault plan) must occupy the
    /// tie-break slot it would have held had it been scheduled at seed time —
    /// below every pending seed and re-armed event. This inserts with a
    /// sequence number strictly smaller than the pending minimum; if that
    /// minimum is already 0, every pending sequence number (both tiers, the
    /// shadow, and the counter) is first shifted up by one — a uniform shift,
    /// so no relative order changes.
    pub fn push_below_pending(&mut self, at: SimTime, payload: E) {
        let heap_min = self.heap.iter().map(|s| s.seq).min();
        // Within a bucket appends are in ascending seq order, so each front
        // carries its bucket's minimum.
        let bucket_min = self
            .buckets
            .values()
            .map(|dq| dq.front().expect("buckets are never empty").0)
            .min();
        let seq = match heap_min.into_iter().chain(bucket_min).min() {
            // Nothing pending: plain push semantics.
            None => {
                self.push(at, payload);
                return;
            }
            Some(0) => {
                self.shift_pending_seqs_up();
                0
            }
            Some(m) => m - 1,
        };
        #[cfg(debug_assertions)]
        self.shadow.push(std::cmp::Reverse((at, seq)));
        self.heap.push(Scheduled { at, seq, payload });
    }

    /// Adds 1 to every pending sequence number (and the counter). Uniform, so
    /// relative order is untouched; frees seq 0 for [`Self::push_below_pending`].
    fn shift_pending_seqs_up(&mut self) {
        let mut entries = std::mem::take(&mut self.heap).into_vec();
        for s in &mut entries {
            s.seq += 1;
        }
        self.heap = entries.into();
        for dq in self.buckets.values_mut() {
            for (seq, _) in dq.iter_mut() {
                *seq += 1;
            }
        }
        #[cfg(debug_assertions)]
        {
            let entries = std::mem::take(&mut self.shadow).into_vec();
            self.shadow = entries
                .into_iter()
                .map(|std::cmp::Reverse((at, seq))| std::cmp::Reverse((at, seq + 1)))
                .collect();
        }
        self.next_seq += 1;
    }

    fn take_seq(&mut self, _at: SimTime) -> u64 {
        let seq = self.next_seq;
        self.next_seq += 1;
        #[cfg(debug_assertions)]
        self.shadow.push(std::cmp::Reverse((_at, seq)));
        seq
    }

    /// Removes and returns the earliest event, if any.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        // Both tiers order by (time, seq); the bucket front carries its
        // bucket's minimum seq, so comparing the heap top against the first
        // bucket's front picks the global minimum.
        let heap_key = self.heap.peek().map(|s| (s.at, s.seq));
        let bucket_key = self
            .buckets
            .first_key_value()
            .map(|(&at, dq)| (at, dq.front().expect("buckets are never empty").0));
        let from_bucket = match (heap_key, bucket_key) {
            (None, None) => return None,
            (Some(_), None) => false,
            (None, Some(_)) => true,
            (Some(h), Some(b)) => b < h,
        };
        let (at, _seq, payload) = if from_bucket {
            let mut entry = self.buckets.first_entry().expect("checked non-empty");
            let at = *entry.key();
            let (seq, payload) = entry.get_mut().pop_front().expect("non-empty bucket");
            if entry.get().is_empty() {
                entry.remove();
            }
            self.bucket_len -= 1;
            (at, seq, payload)
        } else {
            let s = self.heap.pop().expect("checked non-empty");
            (s.at, s.seq, s.payload)
        };
        #[cfg(debug_assertions)]
        {
            let expected = self.shadow.pop().expect("shadow tracks every push").0;
            debug_assert_eq!(
                (at, _seq),
                expected,
                "coalesced pop diverged from the unbatched schedule"
            );
        }
        Some((at, payload))
    }

    /// The firing time of the earliest event, if any.
    pub fn peek_time(&self) -> Option<SimTime> {
        let heap_at = self.heap.peek().map(|s| s.at);
        let bucket_at = self.buckets.first_key_value().map(|(&at, _)| at);
        match (heap_at, bucket_at) {
            (Some(h), Some(b)) => Some(h.min(b)),
            (h, b) => h.or(b),
        }
    }

    /// The number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len() + self.bucket_len
    }

    /// Whether no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty() && self.bucket_len == 0
    }

    /// Drops all pending events.
    pub fn clear(&mut self) {
        self.heap.clear();
        self.buckets.clear();
        self.bucket_len = 0;
        #[cfg(debug_assertions)]
        self.shadow.clear();
    }

    /// Total events ever scheduled through the coalesced tier.
    pub fn coalesced_events(&self) -> u64 {
        self.coalesced_events
    }

    /// Total calendar buckets ever created by the coalesced tier. The ratio
    /// `coalesced_events / coalesced_buckets` is the mean batch width.
    pub fn coalesced_buckets(&self) -> u64 {
        self.coalesced_buckets
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_millis(30), 3);
        q.push(SimTime::from_millis(10), 1);
        q.push(SimTime::from_millis(20), 2);
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, vec![1, 2, 3]);
    }

    #[test]
    fn same_time_is_fifo() {
        let mut q = EventQueue::new();
        let t = SimTime::from_millis(5);
        for i in 0..100 {
            q.push(t, i);
        }
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn peek_and_len() {
        let mut q = EventQueue::new();
        assert!(q.is_empty());
        assert_eq!(q.peek_time(), None);
        q.push(SimTime::from_secs(1), ());
        q.push(SimTime::from_secs(3), ());
        assert_eq!(q.len(), 2);
        assert_eq!(q.peek_time(), Some(SimTime::from_secs(1)));
        q.clear();
        assert!(q.is_empty());
    }

    #[test]
    fn interleaved_push_pop_stays_ordered() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_millis(10), "a");
        q.push(SimTime::from_millis(30), "c");
        assert_eq!(q.pop().map(|(_, e)| e), Some("a"));
        q.push(SimTime::from_millis(20), "b");
        assert_eq!(q.pop().map(|(_, e)| e), Some("b"));
        assert_eq!(q.pop().map(|(_, e)| e), Some("c"));
    }

    #[test]
    fn coalesced_interleaves_with_heap_in_seq_order() {
        let mut q = EventQueue::new();
        let t = SimTime::from_millis(7);
        q.push(t, 0);
        q.push_coalesced(t, 1);
        q.push(t, 2);
        q.push_coalesced(t, 3);
        q.push_coalesced(SimTime::from_millis(3), 4);
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, vec![4, 0, 1, 2, 3]);
    }

    #[test]
    fn coalesced_counters_track_batch_width() {
        let mut q = EventQueue::new();
        for i in 0..12u64 {
            // Three distinct instants, four events each.
            q.push_coalesced(SimTime::from_millis(i % 3), i);
        }
        assert_eq!(q.coalesced_events(), 12);
        assert_eq!(q.coalesced_buckets(), 3);
        assert_eq!(q.len(), 12);
        // Draining and refilling an instant opens a fresh bucket.
        while q.pop().is_some() {}
        assert!(q.is_empty());
        q.push_coalesced(SimTime::from_millis(1), 99);
        assert_eq!(q.coalesced_buckets(), 4);
    }

    #[test]
    fn peek_len_clear_span_both_tiers() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_millis(20), "heap");
        q.push_coalesced(SimTime::from_millis(10), "bucket");
        assert_eq!(q.len(), 2);
        assert_eq!(q.peek_time(), Some(SimTime::from_millis(10)));
        assert_eq!(q.pop().map(|(_, e)| e), Some("bucket"));
        assert_eq!(q.peek_time(), Some(SimTime::from_millis(20)));
        q.push_coalesced(SimTime::from_millis(30), "later");
        q.clear();
        assert!(q.is_empty());
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn clone_pops_identically_and_keeps_counting() {
        let mut q = EventQueue::new();
        let t = SimTime::from_millis(4);
        q.push(t, 0);
        q.push_coalesced(t, 1);
        q.push(SimTime::from_millis(2), 2);
        q.push_coalesced(t, 3);
        let mut c = q.clone();
        assert_eq!(c.len(), q.len());
        assert_eq!(c.coalesced_events(), q.coalesced_events());
        // Identical pop stream (debug builds also cross-check each clone pop
        // against the cloned shadow).
        loop {
            let (a, b) = (q.pop(), c.pop());
            assert_eq!(a, b);
            if a.is_none() {
                break;
            }
        }
        // The clone's seq counter continues from the original's, so pushes
        // after the fork still order consistently.
        c.push(t, 7);
        c.push(t, 8);
        assert_eq!(c.pop().map(|(_, e)| e), Some(7));
        assert_eq!(c.pop().map(|(_, e)| e), Some(8));
    }

    #[test]
    fn push_below_pending_wins_same_instant_ties() {
        let mut q = EventQueue::new();
        let t = SimTime::from_millis(10);
        q.push(t, 1);
        q.push_coalesced(t, 2);
        // Pops before both pending same-time events despite being pushed last.
        q.push_below_pending(t, 0);
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, vec![0, 1, 2]);
    }

    #[test]
    fn push_below_pending_shifts_when_seq_zero_pending() {
        // The very first push holds seq 0, exercising the uniform-shift path.
        let mut q = EventQueue::new();
        let t = SimTime::from_millis(10);
        q.push(t, 1); // seq 0
        q.push_coalesced(t, 2); // seq 1
        q.push(SimTime::from_millis(5), 3); // seq 2, earlier time
        q.push_below_pending(t, 0); // must take over seq 0 at time t
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, vec![3, 0, 1, 2]);
    }

    #[test]
    fn push_below_pending_on_empty_queue_is_plain_push() {
        let mut q = EventQueue::new();
        let t = SimTime::from_millis(10);
        q.push_below_pending(t, 0);
        q.push(t, 1);
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, vec![0, 1]);
    }

    /// Exhaustive equivalence: a mixed push/push_coalesced stream must pop in
    /// exactly the order a plain single-heap queue produces for the same
    /// stream of (time, payload) pushes.
    #[test]
    fn mixed_stream_matches_plain_queue() {
        let mut mixed = EventQueue::new();
        let mut plain = EventQueue::new();
        // Deterministic pseudo-random stream (xorshift).
        let mut x = 0x9e3779b97f4a7c15u64;
        let mut step = |m: u64| {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            x % m
        };
        for i in 0..2_000u64 {
            let at = SimTime::from_micros(step(64)); // heavy time collisions
            if step(2) == 0 {
                mixed.push_coalesced(at, i);
            } else {
                mixed.push(at, i);
            }
            plain.push(at, i);
            if step(4) == 0 {
                assert_eq!(mixed.pop(), plain.pop());
            }
        }
        loop {
            let (a, b) = (mixed.pop(), plain.pop());
            assert_eq!(a, b);
            if a.is_none() {
                break;
            }
        }
    }

    /// Arrival-shaped stream: an open-loop trace pushes monotone
    /// non-decreasing timestamps with bursts of exact collisions (high-rate
    /// traces at 1024+ instances quantize onto shared microseconds). Arrivals
    /// ride the coalesced tier while step-completion-style events hit the
    /// heap at scattered future times; pops must match a plain single-heap
    /// queue byte for byte. (In debug builds every pop is additionally
    /// cross-checked against the internal shadow heap.)
    #[test]
    fn bursty_arrival_stream_matches_plain_queue() {
        let mut mixed = EventQueue::new();
        let mut plain = EventQueue::new();
        let mut x = 0xdeadbeefcafef00du64;
        let mut step = |m: u64| {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            x % m
        };
        let mut now = 0u64;
        let mut payload = 0u64;
        for _ in 0..500 {
            // A burst of 1–8 arrivals sharing one timestamp.
            now += step(50);
            let at = SimTime::from_micros(now);
            for _ in 0..=step(8) {
                mixed.push_coalesced(at, payload);
                plain.push(at, payload);
                payload += 1;
            }
            // A few step completions at scattered future instants.
            for _ in 0..step(3) {
                let f = SimTime::from_micros(now + 1 + step(100));
                mixed.push(f, payload);
                plain.push(f, payload);
                payload += 1;
            }
            // Drain everything due strictly before the burst's instant, the
            // way the serving loop drains between arrivals.
            while plain.peek_time().is_some_and(|t| t < at) {
                assert_eq!(mixed.pop(), plain.pop());
            }
        }
        loop {
            let (a, b) = (mixed.pop(), plain.pop());
            assert_eq!(a, b);
            if a.is_none() {
                break;
            }
        }
    }
}
