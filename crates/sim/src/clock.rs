//! A monotonic simulation clock.

use crate::time::{SimDuration, SimTime};

/// The simulation clock. Time only moves forward; attempting to move it
/// backwards is a logic error surfaced as [`ClockError::TimeWentBackwards`].
#[derive(Debug, Clone, Copy, Default)]
pub struct Clock {
    now: SimTime,
}

/// Errors from clock manipulation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ClockError {
    /// An advance target earlier than the current time was requested.
    TimeWentBackwards {
        /// The clock's current time.
        now: SimTime,
        /// The requested (earlier) target.
        target: SimTime,
    },
}

impl core::fmt::Display for ClockError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            ClockError::TimeWentBackwards { now, target } => {
                write!(f, "clock at {now} asked to move back to {target}")
            }
        }
    }
}

impl std::error::Error for ClockError {}

impl Clock {
    /// A clock at the simulation epoch.
    pub fn new() -> Self {
        Clock { now: SimTime::ZERO }
    }

    /// The current simulation time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Advances the clock to `target`.
    ///
    /// Advancing to the current time is a no-op; moving backwards is an error.
    pub fn advance_to(&mut self, target: SimTime) -> Result<(), ClockError> {
        if target < self.now {
            return Err(ClockError::TimeWentBackwards {
                now: self.now,
                target,
            });
        }
        self.now = target;
        Ok(())
    }

    /// Advances the clock by `dur`.
    pub fn advance_by(&mut self, dur: SimDuration) {
        self.now += dur;
    }

    /// Time elapsed since `earlier` (zero if `earlier` is in the future).
    pub fn elapsed_since(&self, earlier: SimTime) -> SimDuration {
        self.now.since(earlier)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn advances_forward() {
        let mut c = Clock::new();
        assert_eq!(c.now(), SimTime::ZERO);
        c.advance_to(SimTime::from_secs(5)).unwrap();
        assert_eq!(c.now(), SimTime::from_secs(5));
        c.advance_by(SimDuration::from_secs(1));
        assert_eq!(c.now(), SimTime::from_secs(6));
    }

    #[test]
    fn rejects_backwards() {
        let mut c = Clock::new();
        c.advance_to(SimTime::from_secs(5)).unwrap();
        let err = c.advance_to(SimTime::from_secs(4)).unwrap_err();
        assert!(matches!(err, ClockError::TimeWentBackwards { .. }));
        assert_eq!(c.now(), SimTime::from_secs(5));
        // Same-time advance is allowed.
        c.advance_to(SimTime::from_secs(5)).unwrap();
    }

    #[test]
    fn elapsed_since() {
        let mut c = Clock::new();
        c.advance_to(SimTime::from_secs(10)).unwrap();
        assert_eq!(
            c.elapsed_since(SimTime::from_secs(4)),
            SimDuration::from_secs(6)
        );
        assert_eq!(c.elapsed_since(SimTime::from_secs(11)), SimDuration::ZERO);
    }
}
