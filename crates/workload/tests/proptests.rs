//! Property tests for distributions, arrivals, and trace generation.

use llumnix_sim::SimRng;
use llumnix_workload::{
    gamma, table1, Anchor, AnchoredDistribution, ArrivalProcess, Arrivals, LengthDist,
    LengthSampler, TraceSpec,
};
use proptest::prelude::*;

/// Strategy producing valid anchor sets: strictly increasing quantiles from
/// 0 to 1, non-decreasing lengths.
fn anchors() -> impl Strategy<Value = Vec<Anchor>> {
    (
        prop::collection::vec(0.01f64..0.99, 1..4),
        prop::collection::vec(1.0f64..5_000.0, 6),
    )
        .prop_map(|(mut qs, mut lens)| {
            qs.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
            qs.dedup_by(|a, b| (*a - *b).abs() < 1e-6);
            lens.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
            let mut anchors = vec![Anchor {
                q: 0.0,
                len: lens[0],
            }];
            for (i, q) in qs.iter().enumerate() {
                anchors.push(Anchor {
                    q: *q,
                    len: lens[i + 1],
                });
            }
            anchors.push(Anchor {
                q: 1.0,
                len: *lens.last().expect("non-empty"),
            });
            anchors
        })
}

proptest! {
    /// The fitted inverse CDF is monotone and bounded by its anchors for any
    /// valid anchor set and any target mean.
    #[test]
    fn anchored_quantile_monotone(anchors in anchors(), mean in 1.0f64..4_000.0) {
        let d = AnchoredDistribution::new("prop", anchors.clone(), mean);
        let lo = anchors.first().expect("non-empty").len;
        let hi = anchors.last().expect("non-empty").len;
        let mut prev = f64::NEG_INFINITY;
        for i in 0..=100 {
            let q = i as f64 / 100.0;
            let x = d.quantile(q);
            prop_assert!(x >= prev - 1e-9, "not monotone at q={q}");
            prop_assert!(x >= lo - 1e-9 && x <= hi + 1e-9, "out of bounds at q={q}");
            prev = x;
        }
        // The analytic mean lands within the attainable envelope.
        prop_assert!(d.analytic_mean() >= lo - 1e-9);
        prop_assert!(d.analytic_mean() <= hi + 1e-9);
    }

    /// Samples are always within [1, max].
    #[test]
    fn samples_in_bounds(seed in any::<u64>()) {
        let d = table1::medium();
        let mut rng = SimRng::new(seed);
        for _ in 0..200 {
            let s = d.sample(&mut rng);
            prop_assert!(s >= 1 && s <= d.max_len());
        }
    }

    /// Gamma variates are positive and finite for any valid parameters.
    #[test]
    fn gamma_positive(seed in any::<u64>(), shape in 0.05f64..20.0, scale in 0.01f64..100.0) {
        let mut rng = SimRng::new(seed);
        for _ in 0..50 {
            let x = gamma(&mut rng, shape, scale);
            prop_assert!(x.is_finite() && x >= 0.0);
        }
    }

    /// Arrival gaps are positive; generated traces are sorted with dense ids
    /// and respect the total-length cap.
    #[test]
    fn traces_are_well_formed(
        seed in any::<u64>(),
        rate in 0.2f64..50.0,
        cv in 0.2f64..8.0,
        cap in 128u32..13_616,
        n in 1usize..200,
    ) {
        let arrivals = Arrivals::gamma(rate, cv);
        let mut rng = SimRng::new(seed);
        for _ in 0..20 {
            prop_assert!(arrivals.next_gap(&mut rng).as_micros() < u64::MAX);
        }
        let spec = TraceSpec::new(
            "prop",
            n,
            arrivals,
            LengthDist::Anchored(table1::short()),
            LengthDist::Anchored(table1::long()),
        )
        .with_max_total_tokens(cap)
        .with_high_priority_fraction(0.25);
        let trace = spec.generate(&SimRng::new(seed));
        prop_assert_eq!(trace.len(), n);
        let mut prev = llumnix_sim::SimTime::ZERO;
        for (i, r) in trace.requests.iter().enumerate() {
            prop_assert_eq!(r.id, i as u64);
            prop_assert!(r.arrival >= prev);
            prop_assert!(r.input_len >= 1 && r.output_len >= 1);
            prop_assert!(r.total_len() <= cap);
            prev = r.arrival;
        }
    }
}
