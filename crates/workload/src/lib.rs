//! Workload generation for llumnix-rs experiments.
//!
//! Reproduces the paper's §6.1 trace methodology: sequence-length
//! distributions anchored to Table 1 (the real ShareGPT/BurstGPT datasets and
//! the generated Short/Medium/Long power-law mixes), Poisson and Gamma(CV)
//! arrival processes, and a deterministic trace builder with optional
//! high-priority tagging (§6.4).

#![warn(missing_docs)]
#![forbid(unsafe_code)]
#![deny(rust_2018_idioms)]

mod arrivals;
mod diurnal;
mod lengths;
mod sampling;
mod trace;

pub use arrivals::{ArrivalProcess, Arrivals, GammaArrivals, Poisson};
pub use diurnal::{Phase, PhasedSpec};
pub use lengths::{table1, Anchor, AnchoredDistribution, FixedLength, LengthSampler};
pub use sampling::{exponential, gamma, standard_normal};
pub use trace::{presets, LengthDist, Trace, TraceRequest, TraceSpec};
