//! Trace construction: arrivals × length distributions × priorities.
//!
//! A trace is the full input to one serving experiment: a time-ordered list
//! of requests with arrival instants, prompt/output lengths (the output
//! length is ground truth the schedulers must not peek at), and a
//! high-priority flag (the paper's §6.4 marks a random 10% of requests).

use llumnix_sim::{SimRng, SimTime};
use serde::{Deserialize, Serialize};

use crate::arrivals::{ArrivalProcess, Arrivals};
use crate::lengths::{table1, AnchoredDistribution, FixedLength, LengthSampler};

/// One request in a trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TraceRequest {
    /// Unique id, dense from 0 in arrival order.
    pub id: u64,
    /// Arrival time at the cluster frontend.
    pub arrival: SimTime,
    /// Prompt length in tokens.
    pub input_len: u32,
    /// Output length in tokens — *ground truth*; schedulers must not read it.
    pub output_len: u32,
    /// Whether the request carries high scheduling + execution priority.
    pub high_priority: bool,
}

impl TraceRequest {
    /// Total sequence length at completion.
    pub fn total_len(&self) -> u32 {
        self.input_len + self.output_len
    }
}

/// A length distribution usable in a trace spec.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum LengthDist {
    /// Percentile-anchored distribution (Table 1 rows).
    Anchored(AnchoredDistribution),
    /// Constant length.
    Fixed(FixedLength),
}

impl LengthSampler for LengthDist {
    fn sample(&self, rng: &mut SimRng) -> u32 {
        match self {
            LengthDist::Anchored(d) => d.sample(rng),
            LengthDist::Fixed(d) => d.sample(rng),
        }
    }

    fn mean(&self) -> f64 {
        match self {
            LengthDist::Anchored(d) => d.mean(),
            LengthDist::Fixed(d) => d.mean(),
        }
    }

    fn max_len(&self) -> u32 {
        match self {
            LengthDist::Anchored(d) => d.max_len(),
            LengthDist::Fixed(d) => d.max_len(),
        }
    }
}

/// Specification of a trace to generate.
///
/// # Examples
///
/// ```
/// use llumnix_sim::SimRng;
/// use llumnix_workload::{presets, Arrivals};
///
/// let spec = presets::by_name("M-M", 100, Arrivals::poisson(2.0)).unwrap();
/// let trace = spec.generate(&SimRng::new(7));
/// assert_eq!(trace.len(), 100);
/// assert!(trace.requests.windows(2).all(|w| w[0].arrival <= w[1].arrival));
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TraceSpec {
    /// Trace name, e.g. `"M-M"` or `"ShareGPT"`.
    pub name: String,
    /// Number of requests (the paper uses 10,000 per trace).
    pub num_requests: usize,
    /// Arrival process.
    pub arrivals: Arrivals,
    /// Prompt-length distribution.
    pub input: LengthDist,
    /// Output-length distribution.
    pub output: LengthDist,
    /// Fraction of requests marked high priority (paper §6.4: 0.10).
    pub high_priority_fraction: f64,
    /// Cap on input + output so a request always fits one instance
    /// (13,616 tokens for LLaMA-7B on an A10).
    pub max_total_tokens: u32,
}

impl TraceSpec {
    /// A spec with no high-priority requests and the A10 LLaMA-7B cap.
    pub fn new(
        name: impl Into<String>,
        num_requests: usize,
        arrivals: Arrivals,
        input: LengthDist,
        output: LengthDist,
    ) -> Self {
        TraceSpec {
            name: name.into(),
            num_requests,
            arrivals,
            input,
            output,
            high_priority_fraction: 0.0,
            max_total_tokens: 13_616,
        }
    }

    /// Sets the high-priority fraction.
    pub fn with_high_priority_fraction(mut self, fraction: f64) -> Self {
        self.high_priority_fraction = fraction.clamp(0.0, 1.0);
        self
    }

    /// Sets the total-length cap.
    pub fn with_max_total_tokens(mut self, cap: u32) -> Self {
        assert!(cap >= 2, "cap must allow at least 1 input + 1 output token");
        self.max_total_tokens = cap;
        self
    }

    /// Generates the trace deterministically from `rng`.
    pub fn generate(&self, rng: &SimRng) -> Trace {
        let mut arrival_rng = rng.split("trace/arrivals");
        let mut input_rng = rng.split("trace/input");
        let mut output_rng = rng.split("trace/output");
        let mut priority_rng = rng.split("trace/priority");
        let mut now = SimTime::ZERO;
        let mut requests = Vec::with_capacity(self.num_requests);
        for id in 0..self.num_requests as u64 {
            now += self.arrivals.next_gap(&mut arrival_rng);
            let mut input_len = self.input.sample(&mut input_rng).max(1);
            let mut output_len = self.output.sample(&mut output_rng).max(1);
            // Clamp so the request fits within one instance's KV capacity.
            if input_len >= self.max_total_tokens {
                input_len = self.max_total_tokens - 1;
            }
            if input_len + output_len > self.max_total_tokens {
                output_len = self.max_total_tokens - input_len;
            }
            requests.push(TraceRequest {
                id,
                arrival: now,
                input_len,
                output_len,
                high_priority: priority_rng.chance(self.high_priority_fraction),
            });
        }
        Trace {
            name: self.name.clone(),
            requests,
        }
    }
}

/// A generated trace.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Trace {
    /// Trace name.
    pub name: String,
    /// Requests in arrival order.
    pub requests: Vec<TraceRequest>,
}

impl Trace {
    /// Number of requests.
    pub fn len(&self) -> usize {
        self.requests.len()
    }

    /// Whether the trace is empty.
    pub fn is_empty(&self) -> bool {
        self.requests.is_empty()
    }

    /// The arrival of the last request (ZERO for an empty trace).
    pub fn span(&self) -> SimTime {
        self.requests.last().map_or(SimTime::ZERO, |r| r.arrival)
    }

    /// Mean input length over the trace.
    pub fn mean_input_len(&self) -> f64 {
        if self.requests.is_empty() {
            return 0.0;
        }
        self.requests
            .iter()
            .map(|r| r.input_len as f64)
            .sum::<f64>()
            / self.requests.len() as f64
    }

    /// Mean output length over the trace.
    pub fn mean_output_len(&self) -> f64 {
        if self.requests.is_empty() {
            return 0.0;
        }
        self.requests
            .iter()
            .map(|r| r.output_len as f64)
            .sum::<f64>()
            / self.requests.len() as f64
    }
}

/// The paper's named workload combinations (§6.1): the first letter picks
/// the input distribution, the second the output distribution.
pub mod presets {
    use super::*;

    fn combo(
        name: &str,
        input: AnchoredDistribution,
        output: AnchoredDistribution,
    ) -> (LengthDist, LengthDist, String) {
        (
            LengthDist::Anchored(input),
            LengthDist::Anchored(output),
            name.to_string(),
        )
    }

    /// Builds one of the paper's trace specs by name:
    /// `"S-S"`, `"M-M"`, `"L-L"`, `"S-L"`, `"L-S"`, `"ShareGPT"`, `"BurstGPT"`.
    ///
    /// Returns `None` for unknown names.
    pub fn by_name(name: &str, num_requests: usize, arrivals: Arrivals) -> Option<TraceSpec> {
        let (input, output, label) = match name {
            "S-S" => combo("S-S", table1::short(), table1::short()),
            "M-M" => combo("M-M", table1::medium(), table1::medium()),
            "L-L" => combo("L-L", table1::long(), table1::long()),
            "S-L" => combo("S-L", table1::short(), table1::long()),
            "L-S" => combo("L-S", table1::long(), table1::short()),
            "ShareGPT" => combo(
                "ShareGPT",
                table1::sharegpt_input(),
                table1::sharegpt_output(),
            ),
            "BurstGPT" => combo(
                "BurstGPT",
                table1::burstgpt_input(),
                table1::burstgpt_output(),
            ),
            _ => return None,
        };
        Some(TraceSpec::new(label, num_requests, arrivals, input, output))
    }

    /// All trace names evaluated in Figure 11, in the paper's row order.
    pub const FIGURE11_TRACES: [&str; 7] =
        ["ShareGPT", "BurstGPT", "S-S", "M-M", "L-L", "S-L", "L-S"];
}

#[cfg(test)]
mod tests {
    use super::*;

    fn medium_spec(n: usize) -> TraceSpec {
        presets::by_name("M-M", n, Arrivals::poisson(2.0)).expect("known")
    }

    #[test]
    fn generates_requested_count_in_order() {
        let trace = medium_spec(500).generate(&SimRng::new(1));
        assert_eq!(trace.len(), 500);
        assert!(trace
            .requests
            .windows(2)
            .all(|w| w[0].arrival <= w[1].arrival));
        assert!(trace
            .requests
            .iter()
            .enumerate()
            .all(|(i, r)| r.id == i as u64));
    }

    #[test]
    fn deterministic_per_seed() {
        let a = medium_spec(200).generate(&SimRng::new(7));
        let b = medium_spec(200).generate(&SimRng::new(7));
        assert_eq!(a, b);
        let c = medium_spec(200).generate(&SimRng::new(8));
        assert_ne!(a, c);
    }

    #[test]
    fn lengths_respect_cap() {
        let spec = medium_spec(2_000).with_max_total_tokens(4_096);
        let trace = spec.generate(&SimRng::new(3));
        for r in &trace.requests {
            assert!(r.input_len >= 1 && r.output_len >= 1);
            assert!(r.total_len() <= 4_096, "request {} too long", r.id);
        }
    }

    #[test]
    fn high_priority_fraction_approximate() {
        let spec = medium_spec(10_000).with_high_priority_fraction(0.10);
        let trace = spec.generate(&SimRng::new(4));
        let high = trace.requests.iter().filter(|r| r.high_priority).count();
        let frac = high as f64 / trace.len() as f64;
        assert!((frac - 0.10).abs() < 0.02, "high fraction {frac}");
    }

    #[test]
    fn arrival_rate_matches_process() {
        let spec = medium_spec(5_000);
        let trace = spec.generate(&SimRng::new(5));
        let rate = (trace.len() - 1) as f64 / trace.span().as_secs_f64();
        assert!((rate - 2.0).abs() < 0.1, "empirical rate {rate}");
    }

    #[test]
    fn all_figure11_presets_exist() {
        for name in presets::FIGURE11_TRACES {
            let spec = presets::by_name(name, 10, Arrivals::poisson(1.0));
            assert!(spec.is_some(), "missing preset {name}");
        }
        assert!(presets::by_name("X-X", 10, Arrivals::poisson(1.0)).is_none());
    }

    #[test]
    fn mean_lengths_track_distributions() {
        let trace = medium_spec(20_000).generate(&SimRng::new(11));
        // Medium mean is 256; the cap trims a little tail mass.
        assert!(
            (200.0..300.0).contains(&trace.mean_input_len()),
            "mean in {}",
            trace.mean_input_len()
        );
        assert!(
            (200.0..300.0).contains(&trace.mean_output_len()),
            "mean out {}",
            trace.mean_output_len()
        );
    }

    #[test]
    fn empty_trace_helpers() {
        let t = Trace {
            name: "empty".into(),
            requests: vec![],
        };
        assert!(t.is_empty());
        assert_eq!(t.span(), SimTime::ZERO);
        assert_eq!(t.mean_input_len(), 0.0);
    }
}
