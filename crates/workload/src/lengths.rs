//! Sequence-length distributions matching the paper's Table 1.
//!
//! The paper evaluates on two real conversation datasets (ShareGPT-GPT4 and
//! BurstGPT) and three generated power-law distributions (Short/Medium/Long,
//! means 128/256/512, max 6k). The datasets themselves are not shipped here;
//! Table 1 publishes their mean and P50/P80/P95/P99 token counts, which is
//! the full workload description the scheduling results depend on. We
//! therefore model every length distribution as an [`AnchoredDistribution`]:
//! a monotone inverse CDF through the published percentile anchors, with a
//! per-segment power-law interpolation whose single exponent is solved (by
//! bisection) so the distribution's mean matches the published mean.

use llumnix_sim::SimRng;
use serde::{Deserialize, Serialize};

/// A sequence-length distribution.
pub trait LengthSampler {
    /// Draws one length in tokens (always ≥ 1).
    fn sample(&self, rng: &mut SimRng) -> u32;

    /// The distribution's design mean, for reporting.
    fn mean(&self) -> f64;

    /// Hard upper bound on sampled lengths.
    fn max_len(&self) -> u32;
}

/// A percentile anchor: the value of the inverse CDF at quantile `q`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Anchor {
    /// Quantile in `[0, 1]`.
    pub q: f64,
    /// Length in tokens at that quantile.
    pub len: f64,
}

/// A distribution defined by its percentile anchors and target mean.
///
/// Between consecutive anchors `(q_i, x_i)` and `(q_{i+1}, x_{i+1})` the
/// inverse CDF is `x_i + (x_{i+1} − x_i) · t^γ` with
/// `t = (q − q_i)/(q_{i+1} − q_i)`. A single global exponent `γ > 0` keeps
/// the curve monotone; the closed-form mean `Σ w_i · (x_i + Δx_i/(γ+1))` is
/// monotone decreasing in `γ`, so bisection pins the published mean exactly
/// whenever it is attainable.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AnchoredDistribution {
    /// Distribution name (e.g. `"Medium"`, `"ShareGPT-in"`).
    pub name: String,
    anchors: Vec<Anchor>,
    target_mean: f64,
    gamma: f64,
}

impl AnchoredDistribution {
    /// Builds a distribution through `anchors` with the given target mean.
    ///
    /// # Panics
    ///
    /// Panics if fewer than two anchors are given, if anchors are not
    /// strictly increasing in `q` and non-decreasing in `len`, or if the
    /// anchors do not span `q = 0` to `q = 1`.
    pub fn new(name: impl Into<String>, anchors: Vec<Anchor>, target_mean: f64) -> Self {
        assert!(anchors.len() >= 2, "need at least two anchors");
        assert!(
            anchors.windows(2).all(|w| w[0].q < w[1].q),
            "anchor quantiles must be strictly increasing"
        );
        assert!(
            anchors.windows(2).all(|w| w[0].len <= w[1].len),
            "anchor lengths must be non-decreasing"
        );
        let first = anchors.first().expect("non-empty");
        let last = anchors.last().expect("non-empty");
        assert!(first.q == 0.0 && last.q == 1.0, "anchors must span q=0..=1");
        assert!(target_mean > 0.0, "target mean must be positive");
        let gamma = solve_gamma(&anchors, target_mean);
        AnchoredDistribution {
            name: name.into(),
            anchors,
            target_mean,
            gamma,
        }
    }

    /// The inverse CDF at quantile `q`.
    pub fn quantile(&self, q: f64) -> f64 {
        let q = q.clamp(0.0, 1.0);
        let idx = self
            .anchors
            .windows(2)
            .position(|w| q <= w[1].q)
            .unwrap_or(self.anchors.len() - 2);
        let a = self.anchors[idx];
        let b = *self
            .anchors
            .get(idx + 1)
            .expect("windows(2) position is at most len - 2");
        let t = (q - a.q) / (b.q - a.q);
        a.len + (b.len - a.len) * t.powf(self.gamma)
    }

    /// The analytic mean implied by the fitted exponent.
    pub fn analytic_mean(&self) -> f64 {
        mean_for_gamma(&self.anchors, self.gamma)
    }

    /// The fitted interpolation exponent.
    pub fn gamma(&self) -> f64 {
        self.gamma
    }
}

impl LengthSampler for AnchoredDistribution {
    fn sample(&self, rng: &mut SimRng) -> u32 {
        let q = rng.uniform();
        (self.quantile(q).round() as u32).max(1)
    }

    fn mean(&self) -> f64 {
        self.target_mean
    }

    fn max_len(&self) -> u32 {
        self.anchors.last().expect("non-empty").len as u32
    }
}

/// A degenerate distribution: every request has the same length (used by the
/// paper's §6.6 stress test, which issues 64-token inputs and outputs).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct FixedLength(pub u32);

impl LengthSampler for FixedLength {
    fn sample(&self, _rng: &mut SimRng) -> u32 {
        self.0.max(1)
    }

    fn mean(&self) -> f64 {
        self.0 as f64
    }

    fn max_len(&self) -> u32 {
        self.0.max(1)
    }
}

/// Mean of the anchored inverse CDF for a given exponent.
fn mean_for_gamma(anchors: &[Anchor], gamma: f64) -> f64 {
    anchors
        .windows(2)
        .map(|w| {
            let width = w[1].q - w[0].q;
            width * (w[0].len + (w[1].len - w[0].len) / (gamma + 1.0))
        })
        .sum()
}

/// Solves for the exponent matching `target_mean`, clamping to the
/// attainable range when the anchors cannot reach it.
fn solve_gamma(anchors: &[Anchor], target_mean: f64) -> f64 {
    const LO: f64 = 1e-3;
    const HI: f64 = 1e3;
    // mean_for_gamma is strictly decreasing in gamma.
    if target_mean >= mean_for_gamma(anchors, LO) {
        return LO;
    }
    if target_mean <= mean_for_gamma(anchors, HI) {
        return HI;
    }
    let (mut lo, mut hi) = (LO, HI);
    for _ in 0..200 {
        let mid = 0.5 * (lo + hi);
        if mean_for_gamma(anchors, mid) > target_mean {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    0.5 * (lo + hi)
}

/// Convenience constructor from the paper's Table 1 row format.
fn from_table1(
    name: &str,
    mean: f64,
    p50: f64,
    p80: f64,
    p95: f64,
    p99: f64,
    max: f64,
) -> AnchoredDistribution {
    AnchoredDistribution::new(
        name,
        vec![
            Anchor { q: 0.0, len: 1.0 },
            Anchor { q: 0.50, len: p50 },
            Anchor { q: 0.80, len: p80 },
            Anchor { q: 0.95, len: p95 },
            Anchor { q: 0.99, len: p99 },
            Anchor { q: 1.0, len: max },
        ],
        mean,
    )
}

/// Table 1 presets.
pub mod table1 {
    use super::{from_table1, AnchoredDistribution};

    /// Generated distributions share the paper's 6k maximum length so that
    /// input + output never exceeds the 13,616-token A10 capacity.
    pub const GENERATED_MAX_LEN: f64 = 6144.0;

    /// ShareGPT (GPT4) input lengths: mean 306, P50 74, P80 348, P95 1484, P99 3388.
    pub fn sharegpt_input() -> AnchoredDistribution {
        from_table1("ShareGPT-in", 306.0, 74.0, 348.0, 1484.0, 3388.0, 6144.0)
    }

    /// ShareGPT (GPT4) output lengths: mean 500, P50 487, P80 781, P95 988, P99 1234.
    pub fn sharegpt_output() -> AnchoredDistribution {
        from_table1("ShareGPT-out", 500.0, 487.0, 781.0, 988.0, 1234.0, 2048.0)
    }

    /// BurstGPT (GPT4-Conversation) input lengths: mean 830, P50 582, P80 1427, P95 2345, P99 3549.
    pub fn burstgpt_input() -> AnchoredDistribution {
        from_table1("BurstGPT-in", 830.0, 582.0, 1427.0, 2345.0, 3549.0, 6144.0)
    }

    /// BurstGPT output lengths: mean 271, P50 243, P80 434, P95 669, P99 964.
    pub fn burstgpt_output() -> AnchoredDistribution {
        from_table1("BurstGPT-out", 271.0, 243.0, 434.0, 669.0, 964.0, 2048.0)
    }

    /// Generated Short distribution: mean 128, P50 38, P80 113, P95 413, P99 1464.
    pub fn short() -> AnchoredDistribution {
        from_table1(
            "Short",
            128.0,
            38.0,
            113.0,
            413.0,
            1464.0,
            GENERATED_MAX_LEN,
        )
    }

    /// Generated Medium distribution: mean 256, P50 32, P80 173, P95 1288, P99 4208.
    pub fn medium() -> AnchoredDistribution {
        from_table1(
            "Medium",
            256.0,
            32.0,
            173.0,
            1288.0,
            4208.0,
            GENERATED_MAX_LEN,
        )
    }

    /// Generated Long distribution: mean 512, P50 55, P80 582, P95 3113, P99 5166.
    pub fn long() -> AnchoredDistribution {
        from_table1(
            "Long",
            512.0,
            55.0,
            582.0,
            3113.0,
            5166.0,
            GENERATED_MAX_LEN,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quantile_hits_anchors_exactly() {
        let d = table1::medium();
        assert!((d.quantile(0.50) - 32.0).abs() < 1e-9);
        assert!((d.quantile(0.80) - 173.0).abs() < 1e-9);
        assert!((d.quantile(0.95) - 1288.0).abs() < 1e-9);
        assert!((d.quantile(0.99) - 4208.0).abs() < 1e-9);
        assert!((d.quantile(1.0) - table1::GENERATED_MAX_LEN).abs() < 1e-9);
    }

    #[test]
    fn analytic_mean_matches_table1() {
        for d in [
            table1::short(),
            table1::medium(),
            table1::long(),
            table1::sharegpt_input(),
            table1::sharegpt_output(),
            table1::burstgpt_input(),
            table1::burstgpt_output(),
        ] {
            let err = (d.analytic_mean() - d.mean()).abs() / d.mean();
            assert!(
                err < 0.01,
                "{}: analytic mean {:.1} vs target {:.1}",
                d.name,
                d.analytic_mean(),
                d.mean()
            );
        }
    }

    #[test]
    fn sampled_percentiles_match_anchors() {
        let d = table1::long();
        let mut rng = SimRng::new(77);
        let mut samples: Vec<f64> = (0..100_000).map(|_| d.sample(&mut rng) as f64).collect();
        samples.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
        let p = |q: f64| samples[((samples.len() - 1) as f64 * q) as usize];
        assert!((p(0.5) - 55.0).abs() / 55.0 < 0.1, "p50 = {}", p(0.5));
        assert!(
            (p(0.95) - 3113.0).abs() / 3113.0 < 0.05,
            "p95 = {}",
            p(0.95)
        );
        assert!(
            (p(0.99) - 5166.0).abs() / 5166.0 < 0.05,
            "p99 = {}",
            p(0.99)
        );
        let mean = samples.iter().sum::<f64>() / samples.len() as f64;
        assert!((mean - 512.0).abs() / 512.0 < 0.05, "mean = {mean}");
    }

    #[test]
    fn quantile_is_monotone() {
        let d = table1::short();
        let mut prev = 0.0;
        for i in 0..=1000 {
            let q = i as f64 / 1000.0;
            let x = d.quantile(q);
            assert!(x >= prev, "quantile not monotone at q={q}");
            prev = x;
        }
    }

    #[test]
    fn samples_respect_bounds() {
        let d = table1::medium();
        let mut rng = SimRng::new(5);
        for _ in 0..10_000 {
            let s = d.sample(&mut rng);
            assert!(s >= 1 && s <= d.max_len());
        }
    }

    #[test]
    fn fixed_length_is_constant() {
        let d = FixedLength(64);
        let mut rng = SimRng::new(9);
        assert_eq!(d.sample(&mut rng), 64);
        assert_eq!(d.mean(), 64.0);
        assert_eq!(FixedLength(0).sample(&mut rng), 1);
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn rejects_duplicate_quantiles() {
        let _ = AnchoredDistribution::new(
            "bad",
            vec![
                Anchor { q: 0.0, len: 1.0 },
                Anchor { q: 0.5, len: 10.0 },
                Anchor { q: 0.5, len: 20.0 },
                Anchor { q: 1.0, len: 30.0 },
            ],
            15.0,
        );
    }

    #[test]
    fn unattainable_mean_clamps() {
        // Target far above the anchors' upper bound: gamma clamps, mean is
        // the closest attainable.
        let d = AnchoredDistribution::new(
            "clamped",
            vec![Anchor { q: 0.0, len: 1.0 }, Anchor { q: 1.0, len: 10.0 }],
            1000.0,
        );
        assert!(d.analytic_mean() < 10.0 + 1e-6);
    }
}
