//! Request arrival processes.
//!
//! The paper's traces (§6.1) draw arrivals from a Poisson process at a given
//! request rate, or from a Gamma renewal process whose coefficient of
//! variation (CV) controls burstiness (CV = 1 recovers Poisson; higher CVs
//! produce the load spikes Figures 13 and 14 sweep over).

use llumnix_sim::{SimDuration, SimRng};
use serde::{Deserialize, Serialize};

use crate::sampling::{exponential, gamma};

/// A renewal arrival process generating inter-arrival gaps.
pub trait ArrivalProcess {
    /// Draws the next inter-arrival gap.
    fn next_gap(&self, rng: &mut SimRng) -> SimDuration;

    /// The process's mean request rate (requests per second).
    fn rate(&self) -> f64;
}

/// Poisson arrivals at `rate` requests/second.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Poisson {
    /// Mean request rate, req/s.
    pub rate: f64,
}

impl Poisson {
    /// Creates a Poisson process.
    ///
    /// # Panics
    ///
    /// Panics if `rate` is not positive and finite.
    pub fn new(rate: f64) -> Self {
        assert!(rate.is_finite() && rate > 0.0, "rate must be positive");
        Poisson { rate }
    }
}

impl ArrivalProcess for Poisson {
    fn next_gap(&self, rng: &mut SimRng) -> SimDuration {
        SimDuration::from_secs_f64(exponential(rng, self.rate))
    }

    fn rate(&self) -> f64 {
        self.rate
    }
}

/// Gamma-renewal arrivals: mean rate `rate`, burstiness set by `cv`.
///
/// Inter-arrival gaps are Gamma distributed with shape `1/cv²` and scale
/// `cv²/rate`, giving mean `1/rate` and coefficient of variation `cv`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GammaArrivals {
    /// Mean request rate, req/s.
    pub rate: f64,
    /// Coefficient of variation of inter-arrival gaps.
    pub cv: f64,
}

impl GammaArrivals {
    /// Creates a Gamma arrival process.
    ///
    /// # Panics
    ///
    /// Panics if `rate` or `cv` is not positive and finite.
    pub fn new(rate: f64, cv: f64) -> Self {
        assert!(rate.is_finite() && rate > 0.0, "rate must be positive");
        assert!(cv.is_finite() && cv > 0.0, "cv must be positive");
        GammaArrivals { rate, cv }
    }

    /// The Gamma shape parameter `1/cv²`.
    pub fn shape(&self) -> f64 {
        1.0 / (self.cv * self.cv)
    }

    /// The Gamma scale parameter `cv²/rate`.
    pub fn scale(&self) -> f64 {
        self.cv * self.cv / self.rate
    }
}

impl ArrivalProcess for GammaArrivals {
    fn next_gap(&self, rng: &mut SimRng) -> SimDuration {
        SimDuration::from_secs_f64(gamma(rng, self.shape(), self.scale()))
    }

    fn rate(&self) -> f64 {
        self.rate
    }
}

/// Type-erased arrival process, for trace specs.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Arrivals {
    /// Poisson arrivals.
    Poisson(Poisson),
    /// Gamma-renewal arrivals.
    Gamma(GammaArrivals),
}

impl Arrivals {
    /// Poisson at `rate` req/s.
    pub fn poisson(rate: f64) -> Self {
        Arrivals::Poisson(Poisson::new(rate))
    }

    /// Gamma at `rate` req/s with coefficient of variation `cv`.
    pub fn gamma(rate: f64, cv: f64) -> Self {
        Arrivals::Gamma(GammaArrivals::new(rate, cv))
    }
}

impl ArrivalProcess for Arrivals {
    fn next_gap(&self, rng: &mut SimRng) -> SimDuration {
        match self {
            Arrivals::Poisson(p) => p.next_gap(rng),
            Arrivals::Gamma(g) => g.next_gap(rng),
        }
    }

    fn rate(&self) -> f64 {
        match self {
            Arrivals::Poisson(p) => p.rate(),
            Arrivals::Gamma(g) => g.rate(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn gaps(process: &impl ArrivalProcess, n: usize, seed: u64) -> Vec<f64> {
        let mut rng = SimRng::new(seed);
        (0..n)
            .map(|_| process.next_gap(&mut rng).as_secs_f64())
            .collect()
    }

    fn cv_of(samples: &[f64]) -> f64 {
        let n = samples.len() as f64;
        let mean = samples.iter().sum::<f64>() / n;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n;
        var.sqrt() / mean
    }

    #[test]
    fn poisson_mean_gap_matches_rate() {
        let p = Poisson::new(2.0);
        let g = gaps(&p, 50_000, 1);
        let mean = g.iter().sum::<f64>() / g.len() as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean gap {mean}");
        // Poisson CV is 1.
        assert!((cv_of(&g) - 1.0).abs() < 0.05);
    }

    #[test]
    fn gamma_cv_controls_burstiness() {
        for cv in [0.5, 1.0, 2.0, 4.0] {
            let g = GammaArrivals::new(2.0, cv);
            let samples = gaps(&g, 80_000, 42);
            let mean = samples.iter().sum::<f64>() / samples.len() as f64;
            assert!((mean - 0.5).abs() < 0.02, "cv {cv}: mean gap {mean}");
            let measured = cv_of(&samples);
            assert!(
                (measured - cv).abs() / cv < 0.08,
                "cv {cv}: measured {measured}"
            );
        }
    }

    #[test]
    fn gamma_cv1_close_to_poisson() {
        let g = GammaArrivals::new(1.0, 1.0);
        assert!((g.shape() - 1.0).abs() < 1e-12);
        assert!((g.scale() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn erased_dispatch() {
        let mut rng = SimRng::new(3);
        let a = Arrivals::poisson(1.0);
        let b = Arrivals::gamma(1.0, 2.0);
        assert_eq!(a.rate(), 1.0);
        assert_eq!(b.rate(), 1.0);
        assert!(!a.next_gap(&mut rng).is_zero());
        assert!(!b.next_gap(&mut rng).is_zero());
    }

    #[test]
    #[should_panic(expected = "rate must be positive")]
    fn rejects_zero_rate() {
        let _ = Poisson::new(0.0);
    }

    #[test]
    #[should_panic(expected = "cv must be positive")]
    fn rejects_zero_cv() {
        let _ = GammaArrivals::new(1.0, 0.0);
    }
}
