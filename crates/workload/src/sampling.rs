//! Low-level samplers: standard normal and gamma variates.
//!
//! The allowed dependency set deliberately excludes `rand_distr`, so the two
//! non-uniform samplers the workloads need are implemented here and verified
//! by moment tests: a polar-method standard normal and Marsaglia–Tsang gamma
//! (with the Johnk-style boost for shape < 1).

use llumnix_sim::SimRng;

/// Samples a standard normal variate via the Marsaglia polar method.
pub fn standard_normal(rng: &mut SimRng) -> f64 {
    loop {
        let u = 2.0 * rng.uniform() - 1.0;
        let v = 2.0 * rng.uniform() - 1.0;
        let s = u * u + v * v;
        if s > 0.0 && s < 1.0 {
            return u * (-2.0 * s.ln() / s).sqrt();
        }
    }
}

/// Samples a Gamma(shape, scale) variate.
///
/// Uses Marsaglia–Tsang squeeze for `shape >= 1` and the standard
/// `Gamma(shape + 1) · U^(1/shape)` boost for `shape < 1`.
///
/// # Panics
///
/// Panics if `shape` or `scale` is not positive and finite.
pub fn gamma(rng: &mut SimRng, shape: f64, scale: f64) -> f64 {
    assert!(
        shape.is_finite() && shape > 0.0,
        "gamma shape must be positive, got {shape}"
    );
    assert!(
        scale.is_finite() && scale > 0.0,
        "gamma scale must be positive, got {scale}"
    );
    if shape < 1.0 {
        // Boost: if X ~ Gamma(shape+1) and U ~ Uniform(0,1), then
        // X·U^(1/shape) ~ Gamma(shape).
        let x = gamma_shape_ge1(rng, shape + 1.0);
        let u: f64 = rng.uniform().max(f64::MIN_POSITIVE);
        return x * u.powf(1.0 / shape) * scale;
    }
    gamma_shape_ge1(rng, shape) * scale
}

/// Marsaglia–Tsang for shape ≥ 1, unit scale.
fn gamma_shape_ge1(rng: &mut SimRng, shape: f64) -> f64 {
    let d = shape - 1.0 / 3.0;
    let c = 1.0 / (9.0 * d).sqrt();
    loop {
        let x = standard_normal(rng);
        let v = 1.0 + c * x;
        if v <= 0.0 {
            continue;
        }
        let v3 = v * v * v;
        let u: f64 = rng.uniform();
        // Squeeze test followed by the full acceptance test.
        if u < 1.0 - 0.0331 * x.powi(4) {
            return d * v3;
        }
        if u.ln() < 0.5 * x * x + d * (1.0 - v3 + v3.ln()) {
            return d * v3;
        }
    }
}

/// Samples an exponential variate with the given rate (mean `1/rate`).
///
/// # Panics
///
/// Panics if `rate` is not positive and finite.
pub fn exponential(rng: &mut SimRng, rate: f64) -> f64 {
    assert!(
        rate.is_finite() && rate > 0.0,
        "exponential rate must be positive, got {rate}"
    );
    let u: f64 = rng.uniform();
    -(1.0 - u).max(f64::MIN_POSITIVE).ln() / rate
}

#[cfg(test)]
mod tests {
    use super::*;

    fn moments(samples: &[f64]) -> (f64, f64) {
        let n = samples.len() as f64;
        let mean = samples.iter().sum::<f64>() / n;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n;
        (mean, var)
    }

    #[test]
    fn normal_moments() {
        let mut rng = SimRng::new(1);
        let samples: Vec<f64> = (0..50_000).map(|_| standard_normal(&mut rng)).collect();
        let (mean, var) = moments(&samples);
        assert!(mean.abs() < 0.02, "normal mean {mean}");
        assert!((var - 1.0).abs() < 0.03, "normal var {var}");
    }

    #[test]
    fn gamma_moments_shape_ge1() {
        let mut rng = SimRng::new(2);
        let (shape, scale) = (4.0, 2.5);
        let samples: Vec<f64> = (0..50_000).map(|_| gamma(&mut rng, shape, scale)).collect();
        let (mean, var) = moments(&samples);
        assert!(
            (mean - shape * scale).abs() / (shape * scale) < 0.03,
            "mean {mean}"
        );
        let expect_var = shape * scale * scale;
        assert!((var - expect_var).abs() / expect_var < 0.08, "var {var}");
    }

    #[test]
    fn gamma_moments_shape_lt1() {
        let mut rng = SimRng::new(3);
        let (shape, scale) = (0.25, 3.0);
        let samples: Vec<f64> = (0..80_000).map(|_| gamma(&mut rng, shape, scale)).collect();
        let (mean, var) = moments(&samples);
        assert!(
            (mean - shape * scale).abs() / (shape * scale) < 0.05,
            "mean {mean}"
        );
        let expect_var = shape * scale * scale;
        assert!((var - expect_var).abs() / expect_var < 0.10, "var {var}");
        assert!(samples.iter().all(|&x| x >= 0.0));
    }

    #[test]
    fn exponential_moments() {
        let mut rng = SimRng::new(4);
        let rate = 0.42;
        let samples: Vec<f64> = (0..50_000).map(|_| exponential(&mut rng, rate)).collect();
        let (mean, var) = moments(&samples);
        assert!((mean - 1.0 / rate).abs() * rate < 0.03, "mean {mean}");
        assert!(
            (var - 1.0 / (rate * rate)).abs() * rate * rate < 0.10,
            "var {var}"
        );
    }

    #[test]
    #[should_panic(expected = "gamma shape must be positive")]
    fn gamma_rejects_bad_shape() {
        let mut rng = SimRng::new(5);
        let _ = gamma(&mut rng, 0.0, 1.0);
    }

    #[test]
    #[should_panic(expected = "exponential rate must be positive")]
    fn exponential_rejects_bad_rate() {
        let mut rng = SimRng::new(6);
        let _ = exponential(&mut rng, -1.0);
    }
}
