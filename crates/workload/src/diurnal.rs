//! Multi-phase (diurnal) workloads for auto-scaling experiments.
//!
//! Production request rates swing over the day; the paper's auto-scaling
//! experiments (§6.5) use stationary Gamma burstiness, but evaluating the
//! scaler against an explicit ramp (quiet → peak → quiet) exposes the
//! saturate/drain behaviours of Figure 1(d) directly. A [`PhasedSpec`] is a
//! sequence of constant-rate phases stitched into one trace.

use llumnix_sim::{SimRng, SimTime};
use serde::{Deserialize, Serialize};

use crate::lengths::LengthSampler;
use crate::sampling::exponential;
use crate::trace::{LengthDist, Trace, TraceRequest};

/// One constant-rate phase.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Phase {
    /// Poisson request rate during the phase, req/s.
    pub rate: f64,
    /// Phase duration in seconds.
    pub duration_secs: f64,
}

/// A trace specification made of consecutive constant-rate phases.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PhasedSpec {
    /// Trace name.
    pub name: String,
    /// The phases, in order.
    pub phases: Vec<Phase>,
    /// Prompt-length distribution.
    pub input: LengthDist,
    /// Output-length distribution.
    pub output: LengthDist,
    /// Fraction of requests marked high priority.
    pub high_priority_fraction: f64,
    /// Cap on input + output tokens.
    pub max_total_tokens: u32,
}

impl PhasedSpec {
    /// Creates a phased spec with no priorities and the LLaMA-7B cap.
    pub fn new(
        name: impl Into<String>,
        phases: Vec<Phase>,
        input: LengthDist,
        output: LengthDist,
    ) -> Self {
        assert!(!phases.is_empty(), "need at least one phase");
        assert!(
            phases.iter().all(|p| p.rate > 0.0 && p.duration_secs > 0.0),
            "phases need positive rate and duration"
        );
        PhasedSpec {
            name: name.into(),
            phases,
            input,
            output,
            high_priority_fraction: 0.0,
            max_total_tokens: 13_616,
        }
    }

    /// Sets the high-priority fraction.
    pub fn with_high_priority_fraction(mut self, fraction: f64) -> Self {
        self.high_priority_fraction = fraction.clamp(0.0, 1.0);
        self
    }

    /// Total trace duration over all phases.
    pub fn total_secs(&self) -> f64 {
        self.phases.iter().map(|p| p.duration_secs).sum()
    }

    /// Expected number of requests.
    pub fn expected_requests(&self) -> f64 {
        self.phases.iter().map(|p| p.rate * p.duration_secs).sum()
    }

    /// Generates the trace deterministically from `rng`.
    pub fn generate(&self, rng: &SimRng) -> Trace {
        let mut arrivals = rng.split("phased/arrivals");
        let mut input_rng = rng.split("phased/input");
        let mut output_rng = rng.split("phased/output");
        let mut priority_rng = rng.split("phased/priority");
        let mut requests = Vec::with_capacity(self.expected_requests() as usize + 16);
        let mut now = 0.0f64;
        let mut phase_end = 0.0f64;
        let mut id = 0u64;
        for phase in &self.phases {
            phase_end += phase.duration_secs;
            loop {
                let gap = exponential(&mut arrivals, phase.rate);
                if now + gap >= phase_end {
                    // The leftover gap does not carry across phases; the
                    // next phase restarts its exponential clock at the
                    // boundary (a standard piecewise-Poisson construction).
                    now = phase_end;
                    break;
                }
                now += gap;
                let mut input_len = self.input.sample(&mut input_rng).max(1);
                let mut output_len = self.output.sample(&mut output_rng).max(1);
                if input_len >= self.max_total_tokens {
                    input_len = self.max_total_tokens - 1;
                }
                if input_len + output_len > self.max_total_tokens {
                    output_len = self.max_total_tokens - input_len;
                }
                requests.push(TraceRequest {
                    id,
                    arrival: SimTime::from_secs_f64(now),
                    input_len,
                    output_len,
                    high_priority: priority_rng.chance(self.high_priority_fraction),
                });
                id += 1;
            }
        }
        Trace {
            name: self.name.clone(),
            requests,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lengths::{table1, FixedLength};

    fn spec() -> PhasedSpec {
        PhasedSpec::new(
            "day",
            vec![
                Phase {
                    rate: 1.0,
                    duration_secs: 100.0,
                },
                Phase {
                    rate: 10.0,
                    duration_secs: 200.0,
                },
                Phase {
                    rate: 1.0,
                    duration_secs: 100.0,
                },
            ],
            LengthDist::Anchored(table1::short()),
            LengthDist::Anchored(table1::short()),
        )
    }

    #[test]
    fn phases_shape_the_rate() {
        let trace = spec().generate(&SimRng::new(1));
        let count_in = |lo: f64, hi: f64| {
            trace
                .requests
                .iter()
                .filter(|r| {
                    let t = r.arrival.as_secs_f64();
                    t >= lo && t < hi
                })
                .count() as f64
        };
        let quiet = count_in(0.0, 100.0) / 100.0;
        let peak = count_in(100.0, 300.0) / 200.0;
        let tail = count_in(300.0, 400.0) / 100.0;
        assert!((0.5..2.0).contains(&quiet), "quiet rate {quiet}");
        assert!((8.0..12.0).contains(&peak), "peak rate {peak}");
        assert!((0.5..2.0).contains(&tail), "tail rate {tail}");
        // Total close to the expectation.
        let expected = spec().expected_requests();
        assert!((trace.len() as f64 - expected).abs() < expected * 0.15);
    }

    #[test]
    fn arrivals_sorted_and_bounded() {
        let trace = spec().generate(&SimRng::new(2));
        assert!(trace
            .requests
            .windows(2)
            .all(|w| w[0].arrival <= w[1].arrival));
        assert!(trace.span().as_secs_f64() <= spec().total_secs());
        assert!(trace
            .requests
            .iter()
            .enumerate()
            .all(|(i, r)| r.id == i as u64));
    }

    #[test]
    fn deterministic() {
        let a = spec().generate(&SimRng::new(3));
        let b = spec().generate(&SimRng::new(3));
        assert_eq!(a, b);
    }

    #[test]
    fn respects_cap_and_priorities() {
        let s = PhasedSpec::new(
            "capped",
            vec![Phase {
                rate: 20.0,
                duration_secs: 50.0,
            }],
            LengthDist::Fixed(FixedLength(900)),
            LengthDist::Fixed(FixedLength(900)),
        )
        .with_high_priority_fraction(0.5);
        let mut s = s;
        s.max_total_tokens = 1_000;
        let trace = s.generate(&SimRng::new(4));
        for r in &trace.requests {
            assert!(r.total_len() <= 1_000);
        }
        let high = trace.requests.iter().filter(|r| r.high_priority).count();
        let frac = high as f64 / trace.len() as f64;
        assert!((frac - 0.5).abs() < 0.1, "high fraction {frac}");
    }

    #[test]
    #[should_panic(expected = "positive rate")]
    fn rejects_zero_rate_phase() {
        let _ = PhasedSpec::new(
            "bad",
            vec![Phase {
                rate: 0.0,
                duration_secs: 10.0,
            }],
            LengthDist::Fixed(FixedLength(10)),
            LengthDist::Fixed(FixedLength(10)),
        );
    }
}
