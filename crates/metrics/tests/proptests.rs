//! Property tests for percentile and summary computation.

use llumnix_metrics::{percentile, Summary};
use proptest::prelude::*;

proptest! {
    /// Percentiles are monotone in q and bounded by min/max of the data.
    #[test]
    fn percentiles_monotone_and_bounded(mut samples in prop::collection::vec(-1e6f64..1e6, 1..300)) {
        samples.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
        let lo = samples[0];
        let hi = *samples.last().expect("non-empty");
        let mut prev = f64::NEG_INFINITY;
        for i in 0..=20 {
            let q = i as f64 / 20.0;
            let p = percentile(&samples, q);
            prop_assert!(p >= prev - 1e-9);
            prop_assert!(p >= lo - 1e-9 && p <= hi + 1e-9);
            prev = p;
        }
        prop_assert!((percentile(&samples, 0.0) - lo).abs() < 1e-9);
        prop_assert!((percentile(&samples, 1.0) - hi).abs() < 1e-9);
    }

    /// Summary statistics are internally consistent for any sample set.
    #[test]
    fn summary_consistency(samples in prop::collection::vec(0.0f64..1e6, 1..300)) {
        let s = Summary::from_samples(samples.clone());
        prop_assert_eq!(s.count, samples.len());
        prop_assert!(s.p50 <= s.p80 + 1e-9);
        prop_assert!(s.p80 <= s.p95 + 1e-9);
        prop_assert!(s.p95 <= s.p99 + 1e-9);
        prop_assert!(s.p99 <= s.max + 1e-9);
        prop_assert!(s.mean <= s.max + 1e-9);
        let min = samples.iter().cloned().fold(f64::INFINITY, f64::min);
        prop_assert!(s.mean >= min - 1e-9);
    }

    /// Scaling all samples scales the summary linearly.
    #[test]
    fn summary_scales_linearly(samples in prop::collection::vec(0.1f64..1e3, 2..100), k in 0.1f64..100.0) {
        let a = Summary::from_samples(samples.clone());
        let b = Summary::from_samples(samples.iter().map(|x| x * k).collect());
        prop_assert!((b.mean - a.mean * k).abs() < a.mean * k * 1e-9 + 1e-9);
        prop_assert!((b.p99 - a.p99 * k).abs() < a.p99 * k * 1e-9 + 1e-9);
    }
}
