//! Plain-text tables and JSON emission for the benchmark harness.
//!
//! Every `figNN_*` binary prints a fixed-width table mirroring the paper's
//! figure series and can also dump the raw rows as JSON for post-processing.

use std::fmt::Write as _;

use serde::Serialize;

/// A simple fixed-width table builder.
#[derive(Debug, Clone, Default)]
pub struct Table {
    title: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with a title and column headers.
    pub fn new(title: impl Into<String>, headers: &[&str]) -> Self {
        Table {
            title: title.into(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row; missing cells render empty, extra cells are kept.
    pub fn row(&mut self, cells: &[String]) -> &mut Self {
        self.rows.push(cells.to_vec());
        self
    }

    /// Convenience: appends a row of displayable cells.
    pub fn row_display<D: std::fmt::Display>(&mut self, cells: &[D]) -> &mut Self {
        self.rows
            .push(cells.iter().map(|c| c.to_string()).collect());
        self
    }

    /// Number of data rows.
    pub fn num_rows(&self) -> usize {
        self.rows.len()
    }

    /// Renders the table as aligned plain text.
    pub fn render(&self) -> String {
        let cols = self
            .headers
            .len()
            .max(self.rows.iter().map(Vec::len).max().unwrap_or(0));
        let mut widths = vec![0usize; cols];
        for (i, h) in self.headers.iter().enumerate() {
            widths[i] = widths[i].max(h.len());
        }
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        if !self.title.is_empty() {
            let _ = writeln!(out, "## {}", self.title);
        }
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            let mut line = String::new();
            for (i, w) in widths.iter().enumerate() {
                let empty = String::new();
                let cell = cells.get(i).unwrap_or(&empty);
                let _ = write!(line, "{:>width$}  ", cell, width = w);
            }
            line.trim_end().to_string()
        };
        let _ = writeln!(out, "{}", fmt_row(&self.headers, &widths));
        let total: usize = widths
            .iter()
            .map(|w| w + 2)
            .sum::<usize>()
            .saturating_sub(2);
        let _ = writeln!(out, "{}", "-".repeat(total));
        for row in &self.rows {
            let _ = writeln!(out, "{}", fmt_row(row, &widths));
        }
        out
    }
}

/// Serializes `value` as pretty JSON, for machine-readable experiment output.
pub fn to_json<T: Serialize>(value: &T) -> String {
    serde_json::to_string_pretty(value).unwrap_or_else(|e| format!("{{\"error\":\"{e}\"}}"))
}

/// Formats a seconds value with adaptive precision (µs–s scale).
pub fn fmt_secs(secs: f64) -> String {
    if secs >= 100.0 {
        format!("{secs:.0}s")
    } else if secs >= 1.0 {
        format!("{secs:.2}s")
    } else if secs >= 1e-3 {
        format!("{:.1}ms", secs * 1e3)
    } else {
        format!("{:.0}us", secs * 1e6)
    }
}

/// Formats a ratio like `3.1x`.
pub fn fmt_ratio(r: f64) -> String {
    format!("{r:.2}x")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_table() {
        let mut t = Table::new("Demo", &["trace", "mean", "p99"]);
        t.row(&["S-S".into(), "1.2".into(), "14.0".into()]);
        t.row(&["M-M".into(), "2.0".into(), "9.5".into()]);
        let s = t.render();
        assert!(s.contains("## Demo"));
        assert!(s.contains("trace"));
        assert!(s.contains("S-S"));
        assert_eq!(t.num_rows(), 2);
        // Every data line is aligned to the same width.
        let lines: Vec<&str> = s.lines().skip(1).collect();
        assert!(lines[1].starts_with('-'));
    }

    #[test]
    fn handles_ragged_rows() {
        let mut t = Table::new("", &["a", "b"]);
        t.row(&["1".into()]);
        t.row(&["1".into(), "2".into(), "3".into()]);
        let s = t.render();
        assert!(s.contains('3'));
    }

    #[test]
    fn fmt_secs_scales() {
        assert_eq!(fmt_secs(123.4), "123s");
        assert_eq!(fmt_secs(1.5), "1.50s");
        assert_eq!(fmt_secs(0.0123), "12.3ms");
        assert_eq!(fmt_secs(42e-6), "42us");
        assert_eq!(fmt_ratio(3.456), "3.46x");
    }

    #[test]
    fn json_roundtrip() {
        #[derive(Serialize)]
        struct Row {
            name: &'static str,
            value: f64,
        }
        let j = to_json(&Row {
            name: "x",
            value: 1.0,
        });
        assert!(j.contains("\"name\": \"x\""));
    }
}
