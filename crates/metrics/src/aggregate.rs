//! Aggregation of request records into the paper's reported metrics.

use serde::{Deserialize, Serialize};

use crate::percentile::Summary;
use crate::request::{RecordPriority, RequestRecord};

/// The full latency report for one experiment arm (one scheduler × one trace
/// × one request rate) — the columns of Figure 11/13/14.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct LatencyReport {
    /// End-to-end request latency (s).
    pub e2e: Summary,
    /// Prefill latency / time-to-first-token (s).
    pub prefill: Summary,
    /// Per-token decode latency (s), averaged per request first.
    pub decode: Summary,
    /// Per-token decode compute time (s), stall-free.
    pub decode_compute: Summary,
    /// Per-request preemption loss (s).
    pub preemption_loss: Summary,
    /// Total preemptions across requests.
    pub total_preemptions: u64,
    /// Total completed migrations across requests.
    pub total_migrations: u64,
    /// Per-migrated-request total downtime (s).
    pub migration_downtime: Summary,
    /// Per-request worst inter-token stall (s): preemptions, migration
    /// downtime, and interference all surface here.
    pub max_token_gap: Summary,
}

impl LatencyReport {
    /// Aggregates all records.
    pub fn from_records(records: &[RequestRecord]) -> Self {
        Self::from_filtered(records, |_| true)
    }

    /// Aggregates only records of the given priority class (Figure 13's
    /// separate high-priority and normal rows).
    pub fn for_priority(records: &[RequestRecord], priority: RecordPriority) -> Self {
        Self::from_filtered(records, |r| r.priority == priority)
    }

    fn from_filtered(records: &[RequestRecord], keep: impl Fn(&RequestRecord) -> bool) -> Self {
        let kept: Vec<&RequestRecord> = records.iter().filter(|r| keep(r)).collect();
        let decode_samples: Vec<f64> = kept
            .iter()
            .filter(|r| r.output_len > 1)
            .map(|r| r.decode_latency_per_token())
            .collect();
        let downtime_samples: Vec<f64> = kept
            .iter()
            .filter(|r| r.migrations > 0)
            .map(|r| r.migration_downtime.as_secs_f64())
            .collect();
        LatencyReport {
            e2e: Summary::from_samples(kept.iter().map(|r| r.e2e_latency()).collect()),
            prefill: Summary::from_samples(kept.iter().map(|r| r.prefill_latency()).collect()),
            decode: Summary::from_samples(decode_samples),
            decode_compute: Summary::from_samples(
                kept.iter().map(|r| r.decode_compute_per_token()).collect(),
            ),
            preemption_loss: Summary::from_samples(
                kept.iter().map(|r| r.preemption_loss_secs()).collect(),
            ),
            total_preemptions: kept.iter().map(|r| r.preemptions as u64).sum(),
            total_migrations: kept.iter().map(|r| r.migrations as u64).sum(),
            migration_downtime: Summary::from_samples(downtime_samples),
            max_token_gap: Summary::from_samples(
                kept.iter()
                    .filter(|r| r.output_len > 1)
                    .map(|r| r.max_token_gap.as_secs_f64())
                    .collect(),
            ),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use llumnix_sim::{SimDuration, SimTime};

    fn rec(id: u64, priority: RecordPriority, e2e_secs: u64, preempted: bool) -> RequestRecord {
        RequestRecord {
            id,
            priority,
            input_len: 32,
            output_len: 8,
            arrival: SimTime::ZERO,
            first_token: SimTime::from_secs(1),
            finish: SimTime::from_secs(e2e_secs),
            preemptions: preempted as u32,
            preemption_loss: if preempted {
                SimDuration::from_secs(2)
            } else {
                SimDuration::ZERO
            },
            migrations: 0,
            migration_downtime: SimDuration::ZERO,
            decode_compute: SimDuration::from_millis(8 * 25),
            max_token_gap: SimDuration::from_millis(500),
        }
    }

    #[test]
    fn aggregates_basic_stats() {
        let records = vec![
            rec(1, RecordPriority::Normal, 5, false),
            rec(2, RecordPriority::Normal, 10, true),
            rec(3, RecordPriority::High, 3, false),
        ];
        let report = LatencyReport::from_records(&records);
        assert_eq!(report.e2e.count, 3);
        assert!((report.e2e.mean - 6.0).abs() < 1e-9);
        assert_eq!(report.total_preemptions, 1);
        assert!((report.preemption_loss.mean - 2.0 / 3.0).abs() < 1e-9);
    }

    #[test]
    fn filters_by_priority() {
        let records = vec![
            rec(1, RecordPriority::Normal, 5, false),
            rec(2, RecordPriority::High, 3, false),
            rec(3, RecordPriority::High, 4, false),
        ];
        let high = LatencyReport::for_priority(&records, RecordPriority::High);
        assert_eq!(high.e2e.count, 2);
        assert!((high.e2e.mean - 3.5).abs() < 1e-9);
        let normal = LatencyReport::for_priority(&records, RecordPriority::Normal);
        assert_eq!(normal.e2e.count, 1);
    }

    #[test]
    fn decode_excludes_single_token_outputs() {
        let mut a = rec(1, RecordPriority::Normal, 5, false);
        a.output_len = 1;
        let b = rec(2, RecordPriority::Normal, 5, false);
        let report = LatencyReport::from_records(&[a, b]);
        assert_eq!(report.decode.count, 1);
    }

    #[test]
    fn migration_downtime_only_counts_migrated() {
        let mut a = rec(1, RecordPriority::Normal, 5, false);
        a.migrations = 2;
        a.migration_downtime = SimDuration::from_millis(50);
        let b = rec(2, RecordPriority::Normal, 5, false);
        let report = LatencyReport::from_records(&[a, b]);
        assert_eq!(report.total_migrations, 2);
        assert_eq!(report.migration_downtime.count, 1);
        assert!((report.migration_downtime.mean - 0.05).abs() < 1e-9);
    }
}
