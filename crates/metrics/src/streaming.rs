//! Streaming (constant-memory) summary statistics.
//!
//! [`Summary::from_samples`] needs every sample resident to sort it, which is
//! fine for per-request latencies but not for per-engine-step signals: a
//! long serving run takes millions of steps, and buffering one `f64` per
//! step per signal grows without bound. [`SummaryAccumulator`] ingests the
//! same stream in O(1) memory: count, sum, min and max are exact, and the
//! percentiles come from a fixed log-scale histogram (16 buckets per octave,
//! ≲ 2.2 % relative error for values in `[2⁻³⁰, 2³⁴)`). Non-positive samples
//! share one bucket — the common all-zeros stream (e.g. stall samples of a
//! scheduler that never stalls) stays exact and never even allocates the
//! histogram.

use crate::percentile::Summary;

/// Buckets per factor-of-two range.
const PER_OCTAVE: f64 = 16.0;
/// `log2` of the smallest resolvable positive value.
const LO_EXP: f64 = -30.0;
/// Octaves covered by the histogram.
const OCTAVES: usize = 64;
/// Total histogram buckets.
const NUM_BUCKETS: usize = OCTAVES * PER_OCTAVE as usize;

/// Constant-memory accumulator producing a [`Summary`].
///
/// `count` and `max` match [`Summary::from_samples`] exactly and `mean`
/// matches up to floating-point summation order (`from_samples` sorts before
/// summing; the accumulator sums in arrival order); the percentile fields
/// are histogram approximations. Non-finite samples are ignored, as
/// `from_samples` drops them.
///
/// # Examples
///
/// ```
/// use llumnix_metrics::SummaryAccumulator;
///
/// let mut acc = SummaryAccumulator::new();
/// for i in 1..=100 {
///     acc.observe(f64::from(i));
/// }
/// let s = acc.finish();
/// assert_eq!(s.count, 100);
/// assert!((s.mean - 50.5).abs() < 1e-9);
/// assert_eq!(s.max, 100.0);
/// assert!((s.p99 - 99.01).abs() / 99.01 < 0.03);
/// ```
#[derive(Debug, Clone, Default)]
pub struct SummaryAccumulator {
    count: usize,
    sum: f64,
    min: f64,
    max: f64,
    /// Samples `<= 0.0` (kept out of the log-scale histogram).
    nonpos: u64,
    /// Samples `< 0.0` — the strictly-negative prefix of `nonpos`, so
    /// `quantile` can tell ranks landing on a negative sample apart from
    /// ranks landing on an exact zero.
    neg: u64,
    /// Log-scale histogram of positive samples; empty until one arrives.
    buckets: Vec<u64>,
}

impl SummaryAccumulator {
    /// An empty accumulator.
    pub fn new() -> Self {
        SummaryAccumulator::default()
    }

    /// Number of (finite) samples observed.
    pub fn count(&self) -> usize {
        self.count
    }

    /// Whether no finite sample has been observed.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Ingests one sample. Non-finite values are dropped.
    pub fn observe(&mut self, x: f64) {
        if !x.is_finite() {
            return;
        }
        if self.count == 0 {
            self.min = x;
            self.max = x;
        } else {
            self.min = self.min.min(x);
            self.max = self.max.max(x);
        }
        self.count += 1;
        self.sum += x;
        if x <= 0.0 {
            self.nonpos += 1;
            if x < 0.0 {
                self.neg += 1;
            }
        } else {
            if self.buckets.is_empty() {
                self.buckets = vec![0; NUM_BUCKETS];
            }
            self.buckets[bucket_of(x)] += 1;
        }
    }

    /// Histogram estimate of the `q`-quantile, clamped to the exact sample
    /// range. Exact when all samples are equal (so in particular for the
    /// all-zeros stream).
    pub fn quantile(&self, q: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        if self.min == self.max {
            return self.min;
        }
        // Rank convention of `percentile`: position q·(n−1) in sort order.
        let rank = q.clamp(0.0, 1.0) * (self.count - 1) as f64;
        let mut cum = self.nonpos as f64;
        if rank < cum {
            // Non-positive samples collapse into one histogram bucket, but
            // the strictly-negative count is tracked separately: in sort
            // order every negative precedes every zero, so only ranks inside
            // the negative prefix may report the (negative) min — ranks on
            // the zero run are exactly 0. (A single min for all negatives is
            // still an approximation, matching the histogram's error model.)
            return if rank < self.neg as f64 {
                self.min
            } else {
                0.0
            };
        }
        for (i, &n) in self.buckets.iter().enumerate() {
            if n == 0 {
                continue;
            }
            cum += n as f64;
            if rank < cum {
                let rep = bucket_midpoint(i);
                return rep.clamp(self.min.max(0.0), self.max);
            }
        }
        self.max
    }

    /// The accumulated [`Summary`].
    pub fn finish(&self) -> Summary {
        if self.count == 0 {
            return Summary::default();
        }
        Summary {
            count: self.count,
            mean: self.sum / self.count as f64,
            p50: self.quantile(0.50),
            p80: self.quantile(0.80),
            p95: self.quantile(0.95),
            p99: self.quantile(0.99),
            max: self.max,
        }
    }
}

fn bucket_of(x: f64) -> usize {
    debug_assert!(x > 0.0);
    let t = (x.log2() - LO_EXP) * PER_OCTAVE;
    (t.floor().max(0.0) as usize).min(NUM_BUCKETS - 1)
}

fn bucket_midpoint(i: usize) -> f64 {
    // Geometric midpoint of the bucket's value range.
    (LO_EXP + (i as f64 + 0.5) / PER_OCTAVE).exp2()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn exact(samples: &[f64]) -> Summary {
        Summary::from_samples(samples.to_vec())
    }

    fn streamed(samples: &[f64]) -> Summary {
        let mut acc = SummaryAccumulator::new();
        for &x in samples {
            acc.observe(x);
        }
        acc.finish()
    }

    fn assert_close_quantiles(samples: &[f64]) {
        let e = exact(samples);
        let s = streamed(samples);
        assert_eq!(s.count, e.count);
        assert_eq!(s.max, e.max);
        assert!((s.mean - e.mean).abs() <= 1e-12 * e.mean.abs().max(1.0));
        for (got, want) in [
            (s.p50, e.p50),
            (s.p80, e.p80),
            (s.p95, e.p95),
            (s.p99, e.p99),
        ] {
            let tol = 0.03 * want.abs().max(1e-9);
            assert!(
                (got - want).abs() <= tol,
                "quantile {got} vs exact {want} over {} samples",
                samples.len()
            );
        }
    }

    #[test]
    fn empty_matches_default() {
        assert_eq!(streamed(&[]), Summary::default());
        assert!(SummaryAccumulator::new().is_empty());
    }

    #[test]
    fn all_zeros_is_exact() {
        let zeros = vec![0.0; 10_000];
        let s = streamed(&zeros);
        assert_eq!(s, exact(&zeros));
        assert_eq!(s.p99, 0.0);
        assert_eq!(s.mean, 0.0);
    }

    #[test]
    fn constant_stream_is_exact() {
        let xs = vec![3.25; 1000];
        assert_eq!(streamed(&xs), exact(&xs));
    }

    #[test]
    fn uniform_ramp_quantiles_close() {
        let xs: Vec<f64> = (1..=5000).map(|i| i as f64 * 0.01).collect();
        assert_close_quantiles(&xs);
    }

    #[test]
    fn heavy_tail_quantiles_close() {
        // Mostly zeros with a sparse tail — the stall-sample shape.
        let mut xs = vec![0.0; 9000];
        xs.extend((1..=1000).map(|i| (i * i) as f64 * 1e-4));
        assert_close_quantiles(&xs);
    }

    #[test]
    fn wide_dynamic_range_brackets_rank() {
        // Samples a factor of 2 apart: linear interpolation between ranks
        // spans a huge gap no histogram representative can match, but the
        // estimate must land between the samples bracketing the rank.
        let xs: Vec<f64> = (0..40).map(|i| 2f64.powi(i - 20) * 1.3).collect();
        let mut acc = SummaryAccumulator::new();
        for &x in &xs {
            acc.observe(x);
        }
        for q in [0.5, 0.8, 0.95, 0.99] {
            let rank = q * (xs.len() - 1) as f64;
            let (lo, hi) = (xs[rank.floor() as usize], xs[rank.ceil() as usize]);
            let got = acc.quantile(q);
            assert!(
                got >= lo / 1.05 && got <= hi * 1.05,
                "q={q}: {got} outside [{lo}, {hi}]"
            );
        }
    }

    #[test]
    fn one_negative_among_zeros_keeps_median_zero() {
        // Regression: a single negative sample used to drag *every* rank in
        // the non-positive bucket down to `min`, reporting P50 = −1.0 for a
        // stream that is 9,999 parts zero.
        let mut xs = vec![0.0; 9_999];
        xs.push(-1.0);
        let s = streamed(&xs);
        assert_eq!(s.p50, 0.0);
        assert_eq!(s.p99, 0.0);
        let mut acc = SummaryAccumulator::new();
        for &x in &xs {
            acc.observe(x);
        }
        // Rank 0 lands on the one negative sample.
        assert_eq!(acc.quantile(0.0), -1.0);
    }

    #[test]
    fn negative_prefix_ranks_report_min() {
        // 40% negatives, 40% zeros, 20% positives: quantiles on each side of
        // the prefix boundaries must match the exact sorted answer.
        let mut xs = vec![-2.5; 400];
        xs.extend(vec![0.0; 400]);
        xs.extend((1..=200).map(f64::from));
        let mut acc = SummaryAccumulator::new();
        for &x in &xs {
            acc.observe(x);
        }
        // Ranks strictly inside the negative prefix.
        assert_eq!(acc.quantile(0.0), -2.5);
        assert_eq!(acc.quantile(0.30), -2.5);
        // Ranks on the zero run.
        assert_eq!(acc.quantile(0.50), 0.0);
        assert_eq!(acc.quantile(0.75), 0.0);
        // Ranks in the positive tail still go through the histogram.
        let e = exact(&xs);
        let s = acc.finish();
        assert!((s.p95 - e.p95).abs() <= 0.03 * e.p95);
    }

    #[test]
    fn non_finite_samples_dropped() {
        let mut acc = SummaryAccumulator::new();
        acc.observe(f64::NAN);
        acc.observe(f64::INFINITY);
        acc.observe(2.0);
        let s = acc.finish();
        assert_eq!(s.count, 1);
        assert_eq!(s.mean, 2.0);
    }

    #[test]
    fn mean_close_despite_summation_order() {
        // `from_samples` sums sorted samples, the accumulator sums in
        // arrival order — equal up to floating-point associativity.
        let xs: Vec<f64> = (0..997).map(|i| (i as f64).sin() + 1.0).collect();
        let (a, b) = (streamed(&xs).mean, exact(&xs).mean);
        assert!((a - b).abs() <= 1e-12 * b.abs());
    }
}
