//! Failure and recovery accounting for fault-injection runs.
//!
//! The serving loop fills a [`FaultStats`] while replaying a seeded fault
//! plan: how many faults of each class actually fired, what happened to the
//! requests a crashed instance was holding, how its in-flight migrations
//! were aborted, and how long lost requests took to produce their first
//! token after the crash (recovery latency).

use serde::Serialize;

use crate::percentile::Summary;

/// Counters and recovery percentiles for one fault-injection run.
///
/// Invariant (checked by [`FaultStats::consistent`]): every request lost to
/// a crash is either redispatched through the main dispatcher or aborted
/// because no dispatch target existed, exactly once:
/// `requests_lost == requests_redispatched + requests_lost_aborted`.
#[derive(Debug, Clone, Default, PartialEq, Serialize)]
pub struct FaultStats {
    /// Instance crashes that fired (a live target existed).
    pub crashes: u64,
    /// Planned crashes skipped because the fleet had ≤ 1 live instance.
    pub crashes_skipped: u64,
    /// Transient slowdown (straggler) faults applied.
    pub slowdowns: u64,
    /// Migration-link failures applied.
    pub link_failures: u64,
    /// Requests resident on crashed instances (queued + running + draining).
    pub requests_lost: u64,
    /// Lost requests successfully re-dispatched to a surviving instance.
    pub requests_redispatched: u64,
    /// Lost requests aborted because no dispatch target existed.
    pub requests_lost_aborted: u64,
    /// Migration aborts attributed to a crashed source instance.
    pub aborts_source_failed: u64,
    /// Migration aborts attributed to a crashed destination instance.
    pub aborts_destination_failed: u64,
    /// Migration aborts attributed to a downed migration link.
    pub aborts_link_failed: u64,
    /// First-token latency measured from the crash that lost the request
    /// (seconds): queueing after redispatch + the fresh prefill.
    pub recovery_latency: Summary,
}

impl FaultStats {
    /// True when the lost-request ledger balances (see type docs).
    pub fn consistent(&self) -> bool {
        self.requests_lost == self.requests_redispatched + self.requests_lost_aborted
    }

    /// Total migration aborts caused by injected failures (any reason).
    pub fn failure_aborts(&self) -> u64 {
        self.aborts_source_failed + self.aborts_destination_failed + self.aborts_link_failed
    }

    /// True when no fault of any class fired.
    pub fn quiet(&self) -> bool {
        self.crashes == 0
            && self.crashes_skipped == 0
            && self.slowdowns == 0
            && self.link_failures == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ledger_consistency() {
        let mut s = FaultStats::default();
        assert!(s.consistent());
        assert!(s.quiet());
        s.crashes = 2;
        s.requests_lost = 5;
        s.requests_redispatched = 4;
        assert!(!s.consistent());
        assert!(!s.quiet());
        s.requests_lost_aborted = 1;
        assert!(s.consistent());
        assert_eq!(s.failure_aborts(), 0);
        s.aborts_source_failed = 3;
        s.aborts_link_failed = 1;
        assert_eq!(s.failure_aborts(), 4);
    }
}
