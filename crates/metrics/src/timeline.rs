//! Time-series collection for cluster-level metrics.
//!
//! Figures 5 and 12 plot cluster quantities over time (free memory vs
//! head-of-line demand, fragmented-memory proportion); Figures 14/15 need the
//! time-averaged instance count as the cost metric. [`TimeSeries`] records
//! `(time, value)` samples and provides those aggregations.

use llumnix_sim::SimTime;
use serde::{Deserialize, Serialize};

/// A named series of `(time, value)` samples, appended in time order.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TimeSeries {
    /// Series name (used as a column header in reports).
    pub name: String,
    points: Vec<(SimTime, f64)>,
}

impl TimeSeries {
    /// Creates an empty series.
    pub fn new(name: impl Into<String>) -> Self {
        TimeSeries {
            name: name.into(),
            points: Vec::new(),
        }
    }

    /// Appends a sample. Out-of-order samples are rejected (logic error).
    pub fn push(&mut self, at: SimTime, value: f64) {
        if let Some(&(last, _)) = self.points.last() {
            assert!(
                at >= last,
                "time series '{}' sample at {at} precedes {last}",
                self.name
            );
        }
        self.points.push((at, value));
    }

    /// All samples in time order.
    pub fn points(&self) -> &[(SimTime, f64)] {
        &self.points
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// Whether the series is empty.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Simple arithmetic mean over sample values.
    pub fn mean(&self) -> f64 {
        if self.points.is_empty() {
            return 0.0;
        }
        self.points.iter().map(|&(_, v)| v).sum::<f64>() / self.points.len() as f64
    }

    /// Time-weighted average: each sample's value holds until the next
    /// sample. Equals `mean()` only for evenly spaced samples.
    pub fn time_weighted_mean(&self) -> f64 {
        if self.points.len() < 2 {
            return self.points.first().map_or(0.0, |&(_, v)| v);
        }
        let mut weighted = 0.0;
        let mut total = 0.0;
        for w in self.points.windows(2) {
            let dt = w[1].0.since(w[0].0).as_secs_f64();
            weighted += w[0].1 * dt;
            total += dt;
        }
        if total == 0.0 {
            self.mean()
        } else {
            weighted / total
        }
    }

    /// Maximum sample value (0.0 if empty).
    pub fn max(&self) -> f64 {
        self.points.iter().map(|&(_, v)| v).fold(0.0, f64::max)
    }

    /// Fraction of samples strictly above `threshold`.
    pub fn fraction_above(&self, threshold: f64) -> f64 {
        if self.points.is_empty() {
            return 0.0;
        }
        let above = self.points.iter().filter(|&&(_, v)| v > threshold).count();
        above as f64 / self.points.len() as f64
    }

    /// Restricts to samples in `[from, to)`, returning a new series.
    pub fn window(&self, from: SimTime, to: SimTime) -> TimeSeries {
        TimeSeries {
            name: self.name.clone(),
            points: self
                .points
                .iter()
                .filter(|&&(t, _)| t >= from && t < to)
                .copied()
                .collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_and_max() {
        let mut ts = TimeSeries::new("load");
        ts.push(SimTime::from_secs(0), 1.0);
        ts.push(SimTime::from_secs(1), 3.0);
        ts.push(SimTime::from_secs(2), 2.0);
        assert_eq!(ts.len(), 3);
        assert!((ts.mean() - 2.0).abs() < 1e-9);
        assert_eq!(ts.max(), 3.0);
    }

    #[test]
    fn time_weighted_mean_respects_spacing() {
        let mut ts = TimeSeries::new("instances");
        // Value 2 for 9 s, then value 10 for 1 s.
        ts.push(SimTime::from_secs(0), 2.0);
        ts.push(SimTime::from_secs(9), 10.0);
        ts.push(SimTime::from_secs(10), 10.0);
        let twm = ts.time_weighted_mean();
        assert!((twm - 2.8).abs() < 1e-9, "time-weighted mean {twm}");
        // Plain mean would be badly skewed.
        assert!((ts.mean() - 22.0 / 3.0).abs() < 1e-9);
    }

    #[test]
    fn fraction_above() {
        let mut ts = TimeSeries::new("frag");
        for (i, v) in [0.0, 0.05, 0.2, 0.15, 0.0].iter().enumerate() {
            ts.push(SimTime::from_secs(i as u64), *v);
        }
        assert!((ts.fraction_above(0.1) - 0.4).abs() < 1e-9);
    }

    #[test]
    fn window_filters_samples() {
        let mut ts = TimeSeries::new("x");
        for i in 0..10 {
            ts.push(SimTime::from_secs(i), i as f64);
        }
        let w = ts.window(SimTime::from_secs(3), SimTime::from_secs(7));
        assert_eq!(w.len(), 4);
        assert_eq!(w.points()[0].1, 3.0);
    }

    #[test]
    #[should_panic(expected = "precedes")]
    fn rejects_out_of_order() {
        let mut ts = TimeSeries::new("x");
        ts.push(SimTime::from_secs(5), 1.0);
        ts.push(SimTime::from_secs(4), 1.0);
    }

    #[test]
    fn empty_series_defaults() {
        let ts = TimeSeries::new("e");
        assert!(ts.is_empty());
        assert_eq!(ts.mean(), 0.0);
        assert_eq!(ts.time_weighted_mean(), 0.0);
        assert_eq!(ts.fraction_above(0.0), 0.0);
    }
}
