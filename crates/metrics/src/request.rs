//! Per-request measurement records and their derived latencies.
//!
//! The paper's key metrics (§6.1) are request latency end-to-end, *prefill*
//! (time to first generated token, dominated by queuing delay), and *decode*
//! (time from first to last token, averaged over generated tokens), plus the
//! *preemption loss* — extra queuing and recompute time caused by
//! preemptions (§3, Figure 3).

use llumnix_sim::{SimDuration, SimTime};
use serde::{Deserialize, Serialize};

/// Priority class of a request as recorded for reporting.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum RecordPriority {
    /// Normal-priority request.
    Normal,
    /// High-priority request (scheduling and/or execution priority).
    High,
}

/// Everything measured about one served request.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RequestRecord {
    /// Request id (engine-assigned, unique per trace).
    pub id: u64,
    /// Priority class for per-class reporting.
    pub priority: RecordPriority,
    /// Prompt length in tokens.
    pub input_len: u32,
    /// Generated length in tokens.
    pub output_len: u32,
    /// Arrival at the cluster frontend.
    pub arrival: SimTime,
    /// First token emitted (prefill completed).
    pub first_token: SimTime,
    /// Last token emitted (request finished).
    pub finish: SimTime,
    /// Number of times the request was preempted.
    pub preemptions: u32,
    /// Extra latency caused by preemptions: re-queuing plus KV recompute.
    pub preemption_loss: SimDuration,
    /// Number of completed live migrations of this request.
    pub migrations: u32,
    /// Total downtime the request observed across its migrations.
    pub migration_downtime: SimDuration,
    /// Pure decode compute time summed over generated tokens (excludes
    /// queuing/stall time) — Figure 13's "decode computation" column.
    pub decode_compute: SimDuration,
    /// The longest gap between consecutive emitted tokens — the worst
    /// user-visible stall this request experienced.
    pub max_token_gap: SimDuration,
}

impl RequestRecord {
    /// End-to-end latency in seconds.
    pub fn e2e_latency(&self) -> f64 {
        self.finish.since(self.arrival).as_secs_f64()
    }

    /// Prefill latency (time to first token, including queuing) in seconds.
    pub fn prefill_latency(&self) -> f64 {
        self.first_token.since(self.arrival).as_secs_f64()
    }

    /// Mean per-token decode latency in seconds, averaged over all decode
    /// iterations (paper §3). Zero when only one token was generated.
    pub fn decode_latency_per_token(&self) -> f64 {
        if self.output_len <= 1 {
            return 0.0;
        }
        self.finish.since(self.first_token).as_secs_f64() / (self.output_len - 1) as f64
    }

    /// Mean per-token decode *compute* time in seconds (no stalls).
    pub fn decode_compute_per_token(&self) -> f64 {
        if self.output_len == 0 {
            return 0.0;
        }
        self.decode_compute.as_secs_f64() / self.output_len as f64
    }

    /// Preemption loss in seconds.
    pub fn preemption_loss_secs(&self) -> f64 {
        self.preemption_loss.as_secs_f64()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record() -> RequestRecord {
        RequestRecord {
            id: 1,
            priority: RecordPriority::Normal,
            input_len: 100,
            output_len: 11,
            arrival: SimTime::from_secs(10),
            first_token: SimTime::from_secs(12),
            finish: SimTime::from_secs(17),
            preemptions: 1,
            preemption_loss: SimDuration::from_millis(1500),
            migrations: 2,
            migration_downtime: SimDuration::from_millis(50),
            decode_compute: SimDuration::from_millis(330),
            max_token_gap: SimDuration::from_millis(700),
        }
    }

    #[test]
    fn derived_latencies() {
        let r = record();
        assert!((r.e2e_latency() - 7.0).abs() < 1e-9);
        assert!((r.prefill_latency() - 2.0).abs() < 1e-9);
        // 5 s of decode over 10 decode iterations.
        assert!((r.decode_latency_per_token() - 0.5).abs() < 1e-9);
        assert!((r.decode_compute_per_token() - 0.03).abs() < 1e-9);
        assert!((r.preemption_loss_secs() - 1.5).abs() < 1e-9);
    }

    #[test]
    fn single_token_output_has_zero_decode() {
        let mut r = record();
        r.output_len = 1;
        assert_eq!(r.decode_latency_per_token(), 0.0);
        r.output_len = 0;
        assert_eq!(r.decode_compute_per_token(), 0.0);
    }
}
