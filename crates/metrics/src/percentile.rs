//! Exact percentile computation and latency summaries.
//!
//! The paper reports mean and P99 latencies (plus P50/P80/P95 for the Table 1
//! length distributions), so the summary type carries exactly those
//! statistics. Percentiles use the standard linear-interpolation definition
//! over sorted samples.

use serde::{Deserialize, Serialize};

/// Computes the `q`-quantile (`0.0 ..= 1.0`) of `sorted` samples with linear
/// interpolation. Returns 0.0 for an empty slice.
///
/// # Panics
///
/// Panics in debug builds if `sorted` is not sorted ascending.
pub fn percentile(sorted: &[f64], q: f64) -> f64 {
    debug_assert!(
        sorted.windows(2).all(|w| w[0] <= w[1]),
        "percentile input must be sorted"
    );
    if sorted.is_empty() {
        return 0.0;
    }
    let q = q.clamp(0.0, 1.0);
    let pos = q * (sorted.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    if lo == hi {
        sorted[lo]
    } else {
        let frac = pos - lo as f64;
        sorted[lo] * (1.0 - frac) + sorted[hi] * frac
    }
}

/// Summary statistics over a set of latency (or other scalar) samples.
///
/// # Examples
///
/// ```
/// use llumnix_metrics::Summary;
///
/// let s = Summary::from_samples((1..=100).map(f64::from).collect());
/// assert_eq!(s.count, 100);
/// assert!((s.mean - 50.5).abs() < 1e-9);
/// assert!((s.p99 - 99.01).abs() < 1e-9);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct Summary {
    /// Number of samples.
    pub count: usize,
    /// Arithmetic mean.
    pub mean: f64,
    /// Median.
    pub p50: f64,
    /// 80th percentile.
    pub p80: f64,
    /// 95th percentile.
    pub p95: f64,
    /// 99th percentile.
    pub p99: f64,
    /// Maximum sample.
    pub max: f64,
}

impl Summary {
    /// Builds a summary from unsorted samples.
    pub fn from_samples(mut samples: Vec<f64>) -> Self {
        samples.retain(|x| x.is_finite());
        if samples.is_empty() {
            return Summary::default();
        }
        samples.sort_by(|a, b| a.partial_cmp(b).expect("finite samples compare"));
        let count = samples.len();
        let mean = samples.iter().sum::<f64>() / count as f64;
        Summary {
            count,
            mean,
            p50: percentile(&samples, 0.50),
            p80: percentile(&samples, 0.80),
            p95: percentile(&samples, 0.95),
            p99: percentile(&samples, 0.99),
            max: *samples.last().expect("non-empty"),
        }
    }

    /// Whether the summary holds no samples.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_is_zero() {
        assert_eq!(percentile(&[], 0.5), 0.0);
        let s = Summary::from_samples(vec![]);
        assert!(s.is_empty());
        assert_eq!(s.mean, 0.0);
    }

    #[test]
    fn single_sample() {
        let s = Summary::from_samples(vec![7.0]);
        assert_eq!(s.count, 1);
        assert_eq!(s.mean, 7.0);
        assert_eq!(s.p50, 7.0);
        assert_eq!(s.p99, 7.0);
        assert_eq!(s.max, 7.0);
    }

    #[test]
    fn interpolates_between_samples() {
        let sorted = [0.0, 10.0];
        assert_eq!(percentile(&sorted, 0.5), 5.0);
        assert_eq!(percentile(&sorted, 0.0), 0.0);
        assert_eq!(percentile(&sorted, 1.0), 10.0);
        assert_eq!(percentile(&sorted, 0.25), 2.5);
    }

    #[test]
    fn known_distribution() {
        // 1..=100 — percentiles are easy to check by hand.
        let samples: Vec<f64> = (1..=100).map(|i| i as f64).collect();
        let s = Summary::from_samples(samples);
        assert_eq!(s.count, 100);
        assert!((s.mean - 50.5).abs() < 1e-9);
        assert!((s.p50 - 50.5).abs() < 1e-9);
        assert!((s.p99 - 99.01).abs() < 1e-9);
        assert_eq!(s.max, 100.0);
    }

    #[test]
    fn nan_samples_are_dropped() {
        let s = Summary::from_samples(vec![1.0, f64::NAN, 3.0]);
        assert_eq!(s.count, 2);
        assert_eq!(s.mean, 2.0);
    }

    #[test]
    fn quantiles_monotone() {
        let samples: Vec<f64> = (0..57).map(|i| (i * i) as f64).collect();
        let s = Summary::from_samples(samples);
        assert!(s.p50 <= s.p80);
        assert!(s.p80 <= s.p95);
        assert!(s.p95 <= s.p99);
        assert!(s.p99 <= s.max);
    }
}
