//! Measurement, aggregation, and reporting for llumnix-rs experiments.
//!
//! * [`RequestRecord`] — per-request timestamps, preemption loss, migration
//!   downtime, and the derived latencies the paper reports (§6.1);
//! * [`Summary`] / [`percentile`] — mean and P50/P80/P95/P99 statistics;
//! * [`LatencyReport`] — one experiment arm's full latency table;
//! * [`TimeSeries`] — cluster metrics over time (fragmentation, instance
//!   count) for Figures 5, 12, 14 and 15;
//! * [`FaultStats`] — failure/recovery counters for fault-injection runs;
//! * [`Table`] and JSON helpers for the benchmark binaries' output.

#![warn(missing_docs)]
#![forbid(unsafe_code)]
#![deny(rust_2018_idioms)]

mod aggregate;
mod faults;
mod percentile;
mod plot;
mod report;
mod request;
mod streaming;
mod timeline;

pub use aggregate::LatencyReport;
pub use faults::FaultStats;
pub use percentile::{percentile, Summary};
pub use plot::{sparkline, sparkline_annotated, to_csv};
pub use report::{fmt_ratio, fmt_secs, to_json, Table};
pub use request::{RecordPriority, RequestRecord};
pub use streaming::SummaryAccumulator;
pub use timeline::TimeSeries;
