//! Terminal plotting and CSV export for time series.
//!
//! The benchmark binaries and CLI are terminal-first; a braille-free ASCII
//! sparkline is enough to see a fleet scaling up or fragmentation spiking
//! without leaving the shell, and CSV export feeds external plotting.

use std::fmt::Write as _;

use crate::timeline::TimeSeries;

const LEVELS: [char; 8] = ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];

/// Renders samples as a unicode sparkline, resampled to `width` buckets
/// (mean per bucket). Returns an empty string for an empty series.
pub fn sparkline(series: &TimeSeries, width: usize) -> String {
    let points = series.points();
    if points.is_empty() || width == 0 {
        return String::new();
    }
    let values = resample(points.iter().map(|&(_, v)| v), points.len(), width);
    let lo = values.iter().cloned().fold(f64::INFINITY, f64::min);
    let hi = values.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    let span = (hi - lo).max(1e-12);
    values
        .iter()
        .map(|v| {
            let idx = (((v - lo) / span) * (LEVELS.len() - 1) as f64).round() as usize;
            LEVELS[idx.min(LEVELS.len() - 1)]
        })
        .collect()
}

/// A sparkline with a `min..max` annotation, e.g. `▁▂▅█▃ (1..16)`.
pub fn sparkline_annotated(series: &TimeSeries, width: usize) -> String {
    if series.is_empty() {
        return String::from("(empty)");
    }
    let lo = series
        .points()
        .iter()
        .map(|&(_, v)| v)
        .fold(f64::INFINITY, f64::min);
    format!(
        "{} ({}..{})",
        sparkline(series, width),
        trim_float(lo),
        trim_float(series.max())
    )
}

fn trim_float(v: f64) -> f64 {
    // Round to 3 significant-ish decimals for the annotation.
    (v * 1000.0).round() / 1000.0
}

/// Mean-resamples `n` values into `width` buckets.
fn resample(values: impl Iterator<Item = f64>, n: usize, width: usize) -> Vec<f64> {
    let values: Vec<f64> = values.collect();
    if n <= width {
        return values;
    }
    let mut out = Vec::with_capacity(width);
    for b in 0..width {
        let start = b * n / width;
        let end = (((b + 1) * n) / width).max(start + 1);
        let bucket = &values[start..end.min(n)];
        out.push(bucket.iter().sum::<f64>() / bucket.len() as f64);
    }
    out
}

/// Serializes one or more aligned time series as CSV (`time_s,<name>...`).
/// Series are joined on sample index; shorter series leave blanks.
pub fn to_csv(series: &[&TimeSeries]) -> String {
    let mut out = String::from("time_s");
    for s in series {
        let _ = write!(out, ",{}", s.name);
    }
    out.push('\n');
    let rows = series.iter().map(|s| s.len()).max().unwrap_or(0);
    for i in 0..rows {
        let t = series
            .iter()
            .find_map(|s| s.points().get(i).map(|&(t, _)| t))
            .map(|t| t.as_secs_f64())
            .unwrap_or(0.0);
        let _ = write!(out, "{t:.3}");
        for s in series {
            match s.points().get(i) {
                Some(&(_, v)) => {
                    let _ = write!(out, ",{v}");
                }
                None => out.push(','),
            }
        }
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use llumnix_sim::SimTime;

    fn series(values: &[f64]) -> TimeSeries {
        let mut ts = TimeSeries::new("s");
        for (i, &v) in values.iter().enumerate() {
            ts.push(SimTime::from_secs(i as u64), v);
        }
        ts
    }

    #[test]
    fn sparkline_shows_shape() {
        let s = sparkline(&series(&[0.0, 1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0]), 8);
        assert_eq!(s, "▁▂▃▄▅▆▇█");
    }

    #[test]
    fn sparkline_resamples_down() {
        let values: Vec<f64> = (0..100).map(f64::from).collect();
        let s = sparkline(&series(&values), 10);
        assert_eq!(s.chars().count(), 10);
        // Monotone input stays monotone after resampling.
        let glyphs: Vec<usize> = s
            .chars()
            .map(|c| LEVELS.iter().position(|&l| l == c).expect("level"))
            .collect();
        assert!(glyphs.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn sparkline_flat_series() {
        let s = sparkline(&series(&[5.0, 5.0, 5.0]), 3);
        assert_eq!(s.chars().count(), 3);
        // All the same glyph.
        assert_eq!(s.chars().collect::<std::collections::HashSet<_>>().len(), 1);
    }

    #[test]
    fn sparkline_empty() {
        assert_eq!(sparkline(&TimeSeries::new("e"), 10), "");
        assert_eq!(sparkline_annotated(&TimeSeries::new("e"), 10), "(empty)");
    }

    #[test]
    fn annotated_includes_range() {
        let s = sparkline_annotated(&series(&[1.0, 16.0]), 2);
        assert!(s.contains("(1..16)"), "{s}");
    }

    #[test]
    fn csv_joins_series() {
        let a = series(&[1.0, 2.0]);
        let mut b = TimeSeries::new("other");
        b.push(SimTime::from_secs(0), 9.0);
        let csv = to_csv(&[&a, &b]);
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines[0], "time_s,s,other");
        assert_eq!(lines[1], "0.000,1,9");
        assert_eq!(lines[2], "1.000,2,");
    }
}
