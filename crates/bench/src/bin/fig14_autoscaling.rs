//! Figure 14: auto-scaling of LLaMA-7B instances.
//!
//! Paper setup (§6.5): L-L lengths, up to 16 instances, scaling threshold
//! range [10, 60] on the average freeness for both systems; one sweep over
//! Poisson request rates and one over Gamma CVs at a fixed rate. Reported:
//! latencies and the average number of instances used (cost). The paper
//! measures up to 12.2×/11× P99 prefill gains and 16%/18% cost savings.

use llumnix_bench::{build_trace, mean_p99, run_arms, ArmResult, ArmSpec, BenchOpts};
use llumnix_core::{AutoScaleConfig, SchedulerKind, ServingConfig};
use llumnix_metrics::Table;
use llumnix_workload::Arrivals;

fn scaled_config(kind: SchedulerKind) -> ServingConfig {
    // Both systems share the same scaling strategy and aggressiveness
    // (paper §6.5); start from one instance and let load drive growth.
    ServingConfig::new(kind, 1).with_autoscale(AutoScaleConfig::paper_default(16))
}

fn main() {
    let opts = BenchOpts::from_args();
    let n = opts.scaled(10_000);

    // Both sweeps fan out together; the rate sweep occupies the first
    // `rate_arms` result slots, the CV sweep the rest.
    let mut arms: Vec<ArmSpec> = Vec::new();
    for rate in [1.5, 2.0, 2.5, 3.0, 3.5] {
        for kind in [SchedulerKind::InfaasPlusPlus, SchedulerKind::Llumnix] {
            arms.push(ArmSpec {
                config: scaled_config(kind),
                trace: build_trace("L-L", n, Arrivals::poisson(rate), 0.0, opts.seed),
                rate,
                cv: 1.0,
            });
        }
    }
    let rate_arms = arms.len();
    for cv in [2.0, 4.0, 6.0, 8.0] {
        for kind in [SchedulerKind::InfaasPlusPlus, SchedulerKind::Llumnix] {
            arms.push(ArmSpec {
                config: scaled_config(kind),
                trace: build_trace("L-L", n, Arrivals::gamma(2.0, cv), 0.0, opts.seed),
                rate: 2.0,
                cv,
            });
        }
    }
    let all: Vec<ArmResult> = run_arms(arms).into_iter().map(|(arm, _)| arm).collect();

    let mut table = Table::new(
        "Figure 14 (top): auto-scaling vs request rate (Poisson, L-L)",
        &[
            "rate",
            "scheduler",
            "e2e mean/p99",
            "prefill mean/p99",
            "decode mean/p99",
            "avg inst",
        ],
    );
    for arm in &all[..rate_arms] {
        table.row(&[
            format!("{}", arm.rate),
            arm.scheduler.clone(),
            mean_p99(&arm.report.e2e),
            mean_p99(&arm.report.prefill),
            mean_p99(&arm.report.decode),
            format!("{:.2}", arm.avg_instances),
        ]);
    }
    println!("{}", table.render());

    let mut table = Table::new(
        "Figure 14 (bottom): auto-scaling vs burstiness (Gamma, L-L, rate 2)",
        &[
            "cv",
            "scheduler",
            "e2e mean/p99",
            "prefill mean/p99",
            "decode mean/p99",
            "avg inst",
        ],
    );
    for arm in &all[rate_arms..] {
        table.row(&[
            format!("{}", arm.cv),
            arm.scheduler.clone(),
            mean_p99(&arm.report.e2e),
            mean_p99(&arm.report.prefill),
            mean_p99(&arm.report.decode),
            format!("{:.2}", arm.avg_instances),
        ]);
    }
    println!("{}", table.render());

    // Headline: best P99 prefill gain, and the average cost saving over the
    // arms where Llumnix also delivered at-least-as-good tail prefill
    // latency (cost savings bought by worse latency do not count).
    let mut best_prefill: f64 = 0.0;
    let mut savings = Vec::new();
    for arm in all.iter().filter(|a| a.scheduler == "llumnix") {
        if let Some(base) = all
            .iter()
            .find(|b| b.scheduler == "infaas++" && b.rate == arm.rate && b.cv == arm.cv)
        {
            if arm.report.prefill.p99 > 1e-6 {
                best_prefill = best_prefill.max(base.report.prefill.p99 / arm.report.prefill.p99);
            }
            if base.avg_instances > 0.0 && arm.report.prefill.p99 <= base.report.prefill.p99 {
                savings.push(1.0 - arm.avg_instances / base.avg_instances);
            }
        }
    }
    let avg_saving = if savings.is_empty() {
        0.0
    } else {
        savings.iter().sum::<f64>() / savings.len() as f64
    };
    println!("best P99 prefill gain: {best_prefill:.1}x (paper: up to 12.2x)");
    println!(
        "average cost saving at no-worse tail latency: {:.0}% (paper: 16-18%)",
        avg_saving * 100.0
    );
    opts.maybe_write_json(&all);
}
