//! Figure 16: scheduling scalability with 64 instances.
//!
//! Paper setup (§6.6): 64 LLaMA-7B instances (GPU execution replaced by
//! measured sleeps — exactly this repo's cost model), requests with 64-token
//! inputs and outputs at increasing rates. The centralized baseline extends
//! the vLLM scheduler to track every request and synchronizes per iteration,
//! producing scheduling stalls that reach ≈40 ms per iteration (a 1.7×
//! per-token slowdown); Llumnix's llumlets decide locally and report only
//! instance-level metrics, so its stalls stay near zero.

use llumnix_bench::{run_arms, ArmResult, ArmSpec, BenchOpts};
use llumnix_core::{SchedulerKind, ServingConfig};
use llumnix_metrics::Table;
use llumnix_sim::SimRng;
use llumnix_workload::{Arrivals, FixedLength, LengthDist, TraceSpec};

fn main() {
    let opts = BenchOpts::from_args();
    let n = opts.scaled(20_000);
    let mut arms: Vec<ArmSpec> = Vec::new();
    for rate in [150.0, 300.0, 450.0, 550.0] {
        for kind in [SchedulerKind::Centralized, SchedulerKind::Llumnix] {
            let spec = TraceSpec::new(
                "64x64",
                n,
                Arrivals::poisson(rate),
                LengthDist::Fixed(FixedLength(64)),
                LengthDist::Fixed(FixedLength(64)),
            );
            arms.push(ArmSpec {
                config: ServingConfig::new(kind, 64),
                trace: spec.generate(&SimRng::new(opts.seed)),
                rate,
                cv: 1.0,
            });
        }
    }
    let results = run_arms(arms);

    let mut table = Table::new(
        "Figure 16: 64 instances, 64-token inputs/outputs",
        &[
            "rate",
            "scheduler",
            "per-token mean/p99",
            "stall mean",
            "stall p99",
            "stall max",
        ],
    );
    for (arm, out) in &results {
        table.row(&[
            format!("{}", arm.rate),
            arm.scheduler.clone(),
            format!(
                "{:.1}ms / {:.1}ms",
                arm.report.decode.mean * 1e3,
                arm.report.decode.p99 * 1e3
            ),
            format!("{:.2}ms", out.stalls.mean * 1e3),
            format!("{:.2}ms", out.stalls.p99 * 1e3),
            format!("{:.2}ms", out.stalls.max * 1e3),
        ]);
    }
    println!("{}", table.render());
    let all: Vec<ArmResult> = results.into_iter().map(|(arm, _)| arm).collect();

    // Headline: the centralized slowdown at the highest rate.
    let high = all.iter().filter(|a| a.rate == 550.0).collect::<Vec<_>>();
    if let (Some(central), Some(llum)) = (
        high.iter().find(|a| a.scheduler == "centralized"),
        high.iter().find(|a| a.scheduler == "llumnix"),
    ) {
        println!(
            "per-token slowdown of centralized at peak: {:.2}x (paper: up to 1.7x)",
            central.report.decode.mean / llum.report.decode.mean
        );
    }
    opts.maybe_write_json(&all);
}
