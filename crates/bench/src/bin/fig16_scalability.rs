//! Figure 16: scheduling scalability with 64 instances — extended with
//! 128-, 256-, 512- and 1024-instance arms.
//!
//! Paper setup (§6.6): 64 LLaMA-7B instances (GPU execution replaced by
//! measured sleeps — exactly this repo's cost model), requests with 64-token
//! inputs and outputs at increasing rates. The centralized baseline extends
//! the vLLM scheduler to track every request and synchronizes per iteration,
//! producing scheduling stalls that reach ≈40 ms per iteration (a 1.7×
//! per-token slowdown); Llumnix's llumlets decide locally and report only
//! instance-level metrics, so its stalls stay near zero.
//!
//! Beyond the paper, the sweep doubles the fleet four times (128 through
//! 1024 instances) holding the per-instance peak rate fixed (550/64 ≈ 8.6
//! req/s per instance) and scaling the request count with the fleet,
//! probing whether the global scheduler's per-decision cost grows with
//! fleet size. Past 256 instances the simulator coarsens its periodic
//! sampling/migration ticks (2× at 512, 4× at 1024) and coalesces
//! same-microsecond step completions, so wall-clock cost per simulated
//! event stays flat while the schedule below 512 is bit-for-bit unchanged.
//!
//! `--shards N` runs every arm on the conservative time-windowed sharded
//! core (DESIGN.md §10); the output is byte-identical at any `N`. `--huge`
//! appends 4096- and 10 240-instance arms, which are only affordable with
//! sharding on.

use llumnix_bench::{run_arms, run_arms_forked, ArmResult, ArmSpec, BenchOpts, ForkArm, ForkGroup};
use llumnix_core::{FaultPlan, SchedulerKind, ServingConfig};
use llumnix_metrics::Table;
use llumnix_sim::{SimDuration, SimRng, SimTime};
use llumnix_workload::{Arrivals, FixedLength, LengthDist, TraceSpec};

fn main() {
    let opts = BenchOpts::from_args();
    // `--huge` extends the sweep past the doubling ladder to 4096 and 10 240
    // instances. Those fleets only fit the wall-clock budget on the sharded
    // windowed core, so they live behind the flag (pass `--shards` too) and
    // scale the per-fleet request count sub-linearly.
    let huge = std::env::args().any(|a| a == "--huge");
    // `--forked` reruns the sweep through the snapshot/fork harness: each
    // arm runs a quarter of its nominal duration, snapshots, and finishes
    // from the resumed copy. The arms share nothing (they differ from
    // t = 0), so this is the determinism guard for snapshot/resume at
    // sweep scale — CI byte-diffs the JSON against the cold run's.
    let forked = std::env::args().any(|a| a == "--forked");
    // (fleet size, arrival rates): the paper's rate sweep at 64 instances,
    // then the peak per-instance rate (550/64 ≈ 8.6 req/s) carried to the
    // larger fleets.
    let mut sweep: Vec<(usize, Vec<f64>)> = vec![
        (64, vec![150.0, 300.0, 450.0, 550.0]),
        (128, vec![1_100.0]),
        (256, vec![2_200.0]),
        (512, vec![4_400.0]),
        (1024, vec![8_800.0]),
    ];
    if huge {
        sweep.push((4_096, vec![35_200.0]));
        sweep.push((10_240, vec![88_000.0]));
    }
    let mut arms: Vec<ArmSpec> = Vec::new();
    for (instances, rates) in &sweep {
        let instances = *instances;
        // Request counts grow with the fleet up to 1024 (≈ 312 requests per
        // instance, the paper's steady-state shape); the huge arms probe
        // scheduler scaling rather than steady state and hold 32 requests
        // per instance so they fit the nightly budget.
        let n = opts.scaled(if instances > 1024 {
            32 * instances
        } else {
            20_000 * instances / 64
        });
        for &rate in rates {
            for kind in [SchedulerKind::Centralized, SchedulerKind::Llumnix] {
                let spec = TraceSpec::new(
                    format!("{instances}x64"),
                    n,
                    Arrivals::poisson(rate),
                    LengthDist::Fixed(FixedLength(64)),
                    LengthDist::Fixed(FixedLength(64)),
                );
                arms.push(ArmSpec {
                    config: opts.sharded(ServingConfig::new(kind, instances as u32)),
                    trace: spec.generate(&SimRng::new(opts.seed)),
                    rate,
                    cv: 1.0,
                });
            }
        }
    }
    let results = if forked {
        run_arms_forked(
            arms.into_iter()
                .map(|a| {
                    // A quarter of the nominal trace duration (n / rate).
                    let warmup = SimTime::ZERO
                        + SimDuration::from_millis((250.0 * a.trace.len() as f64 / a.rate) as u64);
                    ForkGroup {
                        config: a.config,
                        trace: a.trace,
                        warmup,
                        rate: a.rate,
                        cv: a.cv,
                        arms: vec![ForkArm {
                            plan: FaultPlan::empty(),
                        }],
                    }
                })
                .collect(),
        )
    } else {
        run_arms(arms)
    };

    let mut table = Table::new(
        "Figure 16: 64-1024 instances, 64-token inputs/outputs",
        &[
            "fleet",
            "rate",
            "scheduler",
            "per-token mean/p99",
            "stall mean",
            "stall p99",
            "stall max",
        ],
    );
    for (arm, out) in &results {
        table.row(&[
            arm.trace.trim_end_matches("x64").to_string(),
            format!("{}", arm.rate),
            arm.scheduler.clone(),
            format!(
                "{:.1}ms / {:.1}ms",
                arm.report.decode.mean * 1e3,
                arm.report.decode.p99 * 1e3
            ),
            format!("{:.2}ms", out.stalls.mean * 1e3),
            format!("{:.2}ms", out.stalls.p99 * 1e3),
            format!("{:.2}ms", out.stalls.max * 1e3),
        ]);
    }
    println!("{}", table.render());
    let all: Vec<ArmResult> = results.into_iter().map(|(arm, _)| arm).collect();

    // Headline: the centralized slowdown at the highest rate.
    let high = all.iter().filter(|a| a.rate == 550.0).collect::<Vec<_>>();
    if let (Some(central), Some(llum)) = (
        high.iter().find(|a| a.scheduler == "centralized"),
        high.iter().find(|a| a.scheduler == "llumnix"),
    ) {
        println!(
            "per-token slowdown of centralized at peak: {:.2}x (paper: up to 1.7x)",
            central.report.decode.mean / llum.report.decode.mean
        );
    }
    opts.maybe_write_json(&all);
}
