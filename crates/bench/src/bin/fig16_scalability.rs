//! Figure 16: scheduling scalability with 64 instances — extended with
//! 128-, 256-, 512- and 1024-instance arms.
//!
//! Paper setup (§6.6): 64 LLaMA-7B instances (GPU execution replaced by
//! measured sleeps — exactly this repo's cost model), requests with 64-token
//! inputs and outputs at increasing rates. The centralized baseline extends
//! the vLLM scheduler to track every request and synchronizes per iteration,
//! producing scheduling stalls that reach ≈40 ms per iteration (a 1.7×
//! per-token slowdown); Llumnix's llumlets decide locally and report only
//! instance-level metrics, so its stalls stay near zero.
//!
//! Beyond the paper, the sweep doubles the fleet four times (128 through
//! 1024 instances) holding the per-instance peak rate fixed (550/64 ≈ 8.6
//! req/s per instance) and scaling the request count with the fleet,
//! probing whether the global scheduler's per-decision cost grows with
//! fleet size. Past 256 instances the simulator coarsens its periodic
//! sampling/migration ticks (2× at 512, 4× at 1024) and coalesces
//! same-microsecond step completions, so wall-clock cost per simulated
//! event stays flat while the schedule below 512 is bit-for-bit unchanged.

use llumnix_bench::{run_arms, ArmResult, ArmSpec, BenchOpts};
use llumnix_core::{SchedulerKind, ServingConfig};
use llumnix_metrics::Table;
use llumnix_sim::SimRng;
use llumnix_workload::{Arrivals, FixedLength, LengthDist, TraceSpec};

fn main() {
    let opts = BenchOpts::from_args();
    // (fleet size, arrival rates): the paper's rate sweep at 64 instances,
    // then the peak per-instance rate carried to doubled fleets.
    let sweep: [(usize, &[f64]); 5] = [
        (64, &[150.0, 300.0, 450.0, 550.0]),
        (128, &[1_100.0]),
        (256, &[2_200.0]),
        (512, &[4_400.0]),
        (1024, &[8_800.0]),
    ];
    let mut arms: Vec<ArmSpec> = Vec::new();
    for (instances, rates) in sweep {
        let n = opts.scaled(20_000 * instances / 64);
        for &rate in rates {
            for kind in [SchedulerKind::Centralized, SchedulerKind::Llumnix] {
                let spec = TraceSpec::new(
                    format!("{instances}x64"),
                    n,
                    Arrivals::poisson(rate),
                    LengthDist::Fixed(FixedLength(64)),
                    LengthDist::Fixed(FixedLength(64)),
                );
                arms.push(ArmSpec {
                    config: ServingConfig::new(kind, instances as u32),
                    trace: spec.generate(&SimRng::new(opts.seed)),
                    rate,
                    cv: 1.0,
                });
            }
        }
    }
    let results = run_arms(arms);

    let mut table = Table::new(
        "Figure 16: 64-1024 instances, 64-token inputs/outputs",
        &[
            "fleet",
            "rate",
            "scheduler",
            "per-token mean/p99",
            "stall mean",
            "stall p99",
            "stall max",
        ],
    );
    for (arm, out) in &results {
        table.row(&[
            arm.trace.trim_end_matches("x64").to_string(),
            format!("{}", arm.rate),
            arm.scheduler.clone(),
            format!(
                "{:.1}ms / {:.1}ms",
                arm.report.decode.mean * 1e3,
                arm.report.decode.p99 * 1e3
            ),
            format!("{:.2}ms", out.stalls.mean * 1e3),
            format!("{:.2}ms", out.stalls.p99 * 1e3),
            format!("{:.2}ms", out.stalls.max * 1e3),
        ]);
    }
    println!("{}", table.render());
    let all: Vec<ArmResult> = results.into_iter().map(|(arm, _)| arm).collect();

    // Headline: the centralized slowdown at the highest rate.
    let high = all.iter().filter(|a| a.rate == 550.0).collect::<Vec<_>>();
    if let (Some(central), Some(llum)) = (
        high.iter().find(|a| a.scheduler == "centralized"),
        high.iter().find(|a| a.scheduler == "llumnix"),
    ) {
        println!(
            "per-token slowdown of centralized at peak: {:.2}x (paper: up to 1.7x)",
            central.report.decode.mean / llum.report.decode.mean
        );
    }
    opts.maybe_write_json(&all);
}
