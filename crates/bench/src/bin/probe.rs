//! Load probe: sweeps request rates and migration thresholds on the full
//! 16-instance cluster to find the operating range matching the paper's
//! criterion (§6.1: nearly no queuing at P50, tens of seconds at P99).
//! Not a paper figure — a calibration tool.

use llumnix_bench::{build_trace, run_arm, BenchOpts};
use llumnix_core::{MigrationThresholds, SchedulerKind, ServingConfig};
use llumnix_metrics::Table;
use llumnix_sim::SimDuration;
use llumnix_workload::Arrivals;

fn main() {
    let opts = BenchOpts::from_args();
    let n = opts.scaled(10_000);
    let mut table = Table::new(
        "Threshold probe: 16×LLaMA-7B, M-M",
        &[
            "rate",
            "sched",
            "src/dst",
            "tick",
            "e2e mean",
            "prefill p50",
            "prefill p99",
            "decode p99",
            "preempt",
            "migr",
            "mem",
            "wall_s",
        ],
    );
    let total_blocks = 851.0 * 16.0;
    for (trace_name, rate) in [("M-M", 10.0), ("L-L", 4.0), ("S-L", 6.0)] {
        let trace = build_trace(trace_name, n, Arrivals::poisson(rate), 0.0, opts.seed);
        // INFaaS++ reference arm.
        let (arm, out) = run_arm(
            ServingConfig::new(SchedulerKind::InfaasPlusPlus, 16),
            trace.clone(),
            rate,
            1.0,
        );
        let mem = 1.0 - out.free_blocks.mean() / total_blocks;
        table.row(&[
            format!("{trace_name}@{rate}"),
            arm.scheduler.clone(),
            "-".into(),
            "-".into(),
            format!("{:.2}", arm.report.e2e.mean),
            format!("{:.3}", arm.report.prefill.p50),
            format!("{:.2}", arm.report.prefill.p99),
            format!("{:.4}", arm.report.decode.p99),
            format!("{}", arm.preemptions),
            format!("{}", arm.migrations),
            format!("{:.0}%", mem * 100.0),
            format!("{:.1}", arm.sim_wall_secs),
        ]);
        let tick_ms = 100u64;
        for (src, dst) in [
            (30.0, 120.0),
            (30.0, 60.0),
            (20.0, 40.0),
            (50.0, 80.0),
            (60.0, 60.0),
        ] {
            {
                let mut config = ServingConfig::new(SchedulerKind::Llumnix, 16);
                config.migration_thresholds = MigrationThresholds {
                    source_below: src,
                    destination_above: dst,
                };
                config.migration_interval = SimDuration::from_millis(tick_ms);
                let (arm, out) = run_arm(config, trace.clone(), rate, 1.0);
                let mem = 1.0 - out.free_blocks.mean() / total_blocks;
                table.row(&[
                    format!("{trace_name}@{rate}"),
                    arm.scheduler.clone(),
                    format!("{src}/{dst}"),
                    format!("{tick_ms}ms"),
                    format!("{:.2}", arm.report.e2e.mean),
                    format!("{:.3}", arm.report.prefill.p50),
                    format!("{:.2}", arm.report.prefill.p99),
                    format!("{:.4}", arm.report.decode.p99),
                    format!("{}", arm.preemptions),
                    format!("{}", arm.migrations),
                    format!("{:.0}%", mem * 100.0),
                    format!("{:.1}", arm.sim_wall_secs),
                ]);
            }
        }
    }
    println!("{}", table.render());
}
