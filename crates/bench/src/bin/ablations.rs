//! Ablations of the design choices DESIGN.md calls out.
//!
//! Not paper figures — these quantify the trade-offs the paper discusses in
//! prose: the queuing virtual-usage rule (§4.4.2 names the gradual
//! alternative), the migration victim policy (§4.4.3), the migration tick
//! interval and pairing thresholds, vLLM's preemption-recovery mode, and the
//! block-fusion transfer optimization (§5).

use llumnix_bench::{build_trace, run_arms, ArmSpec, BenchOpts};
use llumnix_core::{MigrationThresholds, QueuingRule, SchedulerKind, ServingConfig, VictimPolicy};
use llumnix_engine::{PreemptionMode, QueueOrder};
use llumnix_metrics::Table;
use llumnix_model::{InstanceSpec, ModelSpec, TransferMode, TransferModel};
use llumnix_sim::SimDuration;
use llumnix_workload::Arrivals;

fn main() {
    let opts = BenchOpts::from_args();
    let n = opts.scaled(6_000);

    let trace_ll = build_trace("L-L", n, Arrivals::poisson(4.0), 0.0, opts.seed);
    let trace_mm = build_trace("M-M", n, Arrivals::poisson(10.0), 0.0, opts.seed);
    let trace_sl = build_trace("S-L", n, Arrivals::poisson(6.0), 0.0, opts.seed);

    let rules = [
        ("full-demand (paper)", QueuingRule::FullDemand),
        ("gradual 5s", QueuingRule::Gradual { ramp_secs: 5.0 }),
        ("gradual 20s", QueuingRule::Gradual { ramp_secs: 20.0 }),
    ];
    let policies = [
        (
            "low-prio shortest (paper)",
            VictimPolicy::LowPriorityShortest,
        ),
        ("shortest", VictimPolicy::Shortest),
        ("longest", VictimPolicy::Longest),
        ("oldest", VictimPolicy::Oldest),
    ];
    let intervals = [50u64, 100, 250, 500, 1000];
    let thresholds = [(10.0, 60.0), (30.0, 60.0), (30.0, 120.0), (60.0, 120.0)];
    let modes = [
        ("recompute (paper)", PreemptionMode::Recompute),
        ("swap", PreemptionMode::Swap),
    ];
    let orders = [
        ("priority-FCFS (paper)", QueueOrder::Fcfs),
        ("shortest-first", QueueOrder::ShortestFirst),
    ];

    // Every simulation-backed arm (sections A-E and G) fans out through one
    // run_arms call; each section then consumes its results in push order.
    let mut arms: Vec<ArmSpec> = Vec::new();
    for (_, rule) in rules {
        let mut config = ServingConfig::new(SchedulerKind::LlumnixBase, 16);
        config.headroom = config.headroom.with_queuing_rule(rule);
        arms.push(ArmSpec {
            config,
            trace: trace_ll.clone(),
            rate: 4.0,
            cv: 1.0,
        });
    }
    for (_, policy) in policies {
        let mut config = ServingConfig::new(SchedulerKind::LlumnixBase, 16);
        config.victim_policy = policy;
        arms.push(ArmSpec {
            config,
            trace: trace_mm.clone(),
            rate: 10.0,
            cv: 1.0,
        });
    }
    for ms in intervals {
        let mut config = ServingConfig::new(SchedulerKind::LlumnixBase, 16);
        config.migration_interval = SimDuration::from_millis(ms);
        arms.push(ArmSpec {
            config,
            trace: trace_mm.clone(),
            rate: 10.0,
            cv: 1.0,
        });
    }
    for (src, dst) in thresholds {
        let mut config = ServingConfig::new(SchedulerKind::LlumnixBase, 16);
        config.migration_thresholds = MigrationThresholds {
            source_below: src,
            destination_above: dst,
        };
        arms.push(ArmSpec {
            config,
            trace: trace_mm.clone(),
            rate: 10.0,
            cv: 1.0,
        });
    }
    for (_, mode) in modes {
        let mut config = ServingConfig::new(SchedulerKind::InfaasPlusPlus, 16);
        config.engine.preemption_mode = mode;
        arms.push(ArmSpec {
            config,
            trace: trace_sl.clone(),
            rate: 6.0,
            cv: 1.0,
        });
    }
    for (_, order) in orders {
        let mut config = ServingConfig::new(SchedulerKind::LlumnixBase, 16);
        config.engine.queue_order = order;
        arms.push(ArmSpec {
            config,
            trace: trace_ll.clone(),
            rate: 4.0,
            cv: 1.0,
        });
    }
    let mut results = run_arms(arms).into_iter();

    // ---- A: queuing virtual-usage rule --------------------------------
    let mut table = Table::new(
        "Ablation A: queuing-demand rule (L-L @ 4 req/s)",
        &[
            "rule",
            "prefill mean",
            "prefill p99",
            "decode p99",
            "preempt",
            "migr",
        ],
    );
    for (label, _) in rules {
        let (arm, _) = results.next().expect("ablation A arm");
        table.row(&[
            label.to_string(),
            format!("{:.2}s", arm.report.prefill.mean),
            format!("{:.2}s", arm.report.prefill.p99),
            format!("{:.3}s", arm.report.decode.p99),
            format!("{}", arm.preemptions),
            format!("{}", arm.migrations),
        ]);
    }
    println!("{}", table.render());

    // ---- B: migration victim policy ------------------------------------
    let mut table = Table::new(
        "Ablation B: migration victim policy (M-M @ 10 req/s)",
        &[
            "policy",
            "e2e mean",
            "prefill p99",
            "decode p99",
            "preempt",
            "migr",
            "mean downtime",
        ],
    );
    for (label, _) in policies {
        let (arm, out) = results.next().expect("ablation B arm");
        let downtime = out.migration_stats.total_downtime.as_secs_f64()
            / out.migration_stats.committed.max(1) as f64;
        table.row(&[
            label.to_string(),
            format!("{:.2}s", arm.report.e2e.mean),
            format!("{:.2}s", arm.report.prefill.p99),
            format!("{:.3}s", arm.report.decode.p99),
            format!("{}", arm.preemptions),
            format!("{}", arm.migrations),
            format!("{:.1}ms", downtime * 1e3),
        ]);
    }
    println!("{}", table.render());

    // ---- C: migration tick interval -------------------------------------
    let mut table = Table::new(
        "Ablation C: migration tick interval (M-M @ 10 req/s)",
        &["interval", "prefill p99", "decode p99", "preempt", "migr"],
    );
    for ms in intervals {
        let (arm, _) = results.next().expect("ablation C arm");
        table.row(&[
            format!("{ms}ms"),
            format!("{:.2}s", arm.report.prefill.p99),
            format!("{:.3}s", arm.report.decode.p99),
            format!("{}", arm.preemptions),
            format!("{}", arm.migrations),
        ]);
    }
    println!("{}", table.render());

    // ---- D: pairing thresholds ------------------------------------------
    let mut table = Table::new(
        "Ablation D: pairing thresholds (M-M @ 10 req/s)",
        &["src/dst", "prefill p99", "decode p99", "preempt", "migr"],
    );
    for (src, dst) in thresholds {
        let (arm, _) = results.next().expect("ablation D arm");
        table.row(&[
            format!("{src}/{dst}"),
            format!("{:.2}s", arm.report.prefill.p99),
            format!("{:.3}s", arm.report.decode.p99),
            format!("{}", arm.preemptions),
            format!("{}", arm.migrations),
        ]);
    }
    println!("{}", table.render());

    // ---- E: preemption-recovery mode -------------------------------------
    let mut table = Table::new(
        "Ablation E: preemption recovery (S-L @ 6 req/s, INFaaS++ dispatch)",
        &[
            "mode",
            "e2e mean",
            "decode p99",
            "preempt",
            "mean preempt loss",
        ],
    );
    for (label, _) in modes {
        let (arm, _) = results.next().expect("ablation E arm");
        table.row(&[
            label.to_string(),
            format!("{:.2}s", arm.report.e2e.mean),
            format!("{:.3}s", arm.report.decode.p99),
            format!("{}", arm.preemptions),
            format!("{:.2}s", arm.report.preemption_loss.mean),
        ]);
    }
    println!("{}", table.render());

    // ---- F: block fusion --------------------------------------------------
    let transfer = TransferModel::alibaba_vm_network();
    let model = ModelSpec::llama_7b();
    let mut table = Table::new(
        "Ablation F: block fusion in KV transfer (paper §5)",
        &["tokens", "fused", "unfused", "messages", "penalty"],
    );
    for tokens in [512u32, 1024, 2048, 4096, 8192] {
        let fused = transfer.copy_time(tokens, &model, TransferMode::GlooFused);
        let unfused = transfer.copy_time(tokens, &model, TransferMode::GlooUnfused);
        table.row(&[
            format!("{tokens}"),
            format!("{fused}"),
            format!("{unfused}"),
            format!("{}", transfer.unfused_messages(tokens, &model)),
            format!("{:.1}x", unfused.as_secs_f64() / fused.as_secs_f64()),
        ]);
    }
    println!("{}", table.render());

    // ---- G: local queue order (paper §7 future work) ----------------------
    let mut table = Table::new(
        "Ablation G: local queue order (L-L @ 4 req/s, Llumnix)",
        &[
            "order",
            "prefill mean",
            "prefill p99",
            "e2e mean",
            "e2e p99",
            "preempt",
        ],
    );
    for (label, _) in orders {
        let (arm, _) = results.next().expect("ablation G arm");
        table.row(&[
            label.to_string(),
            format!("{:.2}s", arm.report.prefill.mean),
            format!("{:.2}s", arm.report.prefill.p99),
            format!("{:.2}s", arm.report.e2e.mean),
            format!("{:.2}s", arm.report.e2e.p99),
            format!("{}", arm.preemptions),
        ]);
    }
    println!("{}", table.render());
    assert!(results.next().is_none(), "all arm results consumed");
    let _ = InstanceSpec::llama_7b_a10();
}
