//! Figure 10: downtime and overhead of migration.
//!
//! Paper setup (§6.2): two instances (LLaMA-7B on 1 GPU, LLaMA-30B on 4),
//! each running a batch with a total of 8k tokens; one request of varying
//! sequence length migrates between them. Reported: the migrated request's
//! downtime under live migration vs recompute vs blocking copy, the number
//! of migration stages, and the decode slowdown on the source during
//! migration. The paper measures ≈20–30 ms constant downtime, two stages at
//! every length, baselines up to 111× worse, and ≤1% decode overhead.

use llumnix_bench::BenchOpts;
use llumnix_engine::{
    EngineConfig, EngineEvent, InstanceEngine, InstanceId, PriorityPair, RequestId, RequestMeta,
};
use llumnix_metrics::Table;
use llumnix_migration::{
    reschedule_downtime, CommitResult, MigrationConfig, MigrationCoordinator, ReschedulePolicy,
    StageOutcome, StartOutcome,
};
use llumnix_model::InstanceSpec;
use llumnix_sim::SimTime;
use serde::Serialize;

#[derive(Serialize)]
struct Row {
    model: String,
    seq_len: u32,
    migration_downtime_ms: f64,
    stages: u32,
    recompute_downtime_ms: f64,
    blocking_copy_downtime_ms: f64,
    decode_overhead_pct: f64,
}

/// Fills an instance with background requests until its batch totals
/// `total_tokens`, then runs one prefill step to make them resident.
fn fill_instance(e: &mut InstanceEngine, total_tokens: u32, first_id: u64) -> SimTime {
    let per_req = 512u32;
    let mut id = first_id;
    let mut admitted = 0u32;
    while admitted + per_req <= total_tokens {
        e.add_request(
            RequestMeta {
                id: RequestId(id),
                input_len: per_req,
                output_len: 100_000, // effectively endless background load
                priority: PriorityPair::NORMAL,
                arrival: SimTime::ZERO,
            },
            SimTime::ZERO,
        );
        id += 1;
        admitted += per_req;
    }
    let mut now = SimTime::ZERO;
    // Run prefill steps until everything decodes.
    while !e.prefill_pending_ids().is_empty() || e.waiting_len() > 0 {
        let Some(plan) = e.poll_step(now) else { break };
        now = plan.finish_at();
        e.complete_step(now);
    }
    now
}

fn measure(spec: &InstanceSpec, seq_len: u32, name: &str) -> Row {
    // Both batches total 8k tokens; the migrating request is part of the
    // source's 8k and the destination keeps `8k − seq_len` of background so
    // it ends at 8k after the migration lands.
    let background = (8 * 1024 - seq_len.min(8 * 1024 - 512)).min(8 * 1024);
    let mut src = InstanceEngine::new(InstanceId(0), spec.clone(), EngineConfig::default());
    let mut dst = InstanceEngine::new(InstanceId(1), spec.clone(), EngineConfig::default());
    let t_src = fill_instance(&mut src, background, 1_000);
    let t_dst = fill_instance(&mut dst, background, 2_000);
    let mut now = t_src.max(t_dst);

    // The request to migrate: `seq_len` tokens already resident.
    src.add_request(
        RequestMeta {
            id: RequestId(1),
            input_len: seq_len,
            output_len: 100_000,
            priority: PriorityPair::NORMAL,
            arrival: SimTime::ZERO,
        },
        now,
    );
    while src.state(RequestId(1)).map(|s| s.phase) != Some(llumnix_engine::Phase::Running) {
        let plan = src
            .poll_step(now)
            .expect("prefill of the migrating request");
        now = plan.finish_at();
        src.complete_step(now);
    }

    // Baseline decode speed on the source without migration.
    let plan = src.poll_step(now).expect("decode");
    let base_step = plan.duration;
    now = plan.finish_at();
    src.complete_step(now);

    // Start the migration and keep both instances decoding throughout.
    let mut coord = MigrationCoordinator::new(MigrationConfig::default());
    let StartOutcome::Started {
        id,
        mut stage_done_at,
    } = coord.start(RequestId(1), &mut src, &mut dst, now)
    else {
        panic!("migration refused");
    };
    let mut migrating_step = None;
    let commit;
    'outer: loop {
        // Decode on the source until the next protocol event.
        while now < stage_done_at {
            let plan = src.poll_step(now).expect("source decodes during migration");
            if migrating_step.is_none() {
                migrating_step = Some(plan.duration);
            }
            now = plan.finish_at();
            let events = src.complete_step(now);
            for ev in &events {
                if let EngineEvent::Drained(r) = ev {
                    let (mid, commit_at) =
                        coord.on_drained(*r, &mut src, now).expect("awaiting drain");
                    assert_eq!(mid, id);
                    let CommitResult::Committed(out) =
                        coord.on_commit(mid, &mut src, &mut dst, commit_at)
                    else {
                        panic!("commit failed");
                    };
                    commit = out;
                    break 'outer;
                }
            }
        }
        match coord
            .on_stage_done(id, &mut src, &mut dst, stage_done_at)
            .expect("active migration")
        {
            StageOutcome::NextStage { copy_done_at } => {
                stage_done_at = copy_done_at;
            }
            StageOutcome::FinalCopy { commit_at } => {
                let CommitResult::Committed(out) =
                    coord.on_commit(id, &mut src, &mut dst, commit_at)
                else {
                    panic!("commit failed");
                };
                commit = out;
                break;
            }
            StageOutcome::DrainRequested => {
                // Drain resolves at the next step boundary; extend the wait.
                stage_done_at += base_step;
            }
            StageOutcome::Aborted(r) => panic!("unexpected abort: {r}"),
        }
    }

    let overhead = migrating_step
        .map(|d| d.as_secs_f64() / base_step.as_secs_f64() - 1.0)
        .unwrap_or(0.0);
    Row {
        model: name.to_string(),
        seq_len,
        migration_downtime_ms: commit.downtime.as_millis_f64(),
        stages: commit.stages,
        recompute_downtime_ms: reschedule_downtime(ReschedulePolicy::Recompute, seq_len, spec)
            .as_millis_f64(),
        blocking_copy_downtime_ms: reschedule_downtime(
            ReschedulePolicy::BlockingCopy,
            seq_len,
            spec,
        )
        .as_millis_f64(),
        decode_overhead_pct: overhead * 100.0,
    }
}

fn main() {
    let opts = BenchOpts::from_args();
    let mut rows = Vec::new();
    for (name, spec) in [
        ("LLaMA-7B", InstanceSpec::llama_7b_a10()),
        ("LLaMA-30B", InstanceSpec::llama_30b_4xa10()),
    ] {
        let mut table = Table::new(
            format!("Figure 10: migration downtime and overhead, {name}"),
            &[
                "seq len",
                "migration",
                "stages",
                "recompute",
                "blocking copy",
                "worst/migr",
                "decode overhead",
            ],
        );
        for seq_len in [1024u32, 2048, 4096, 6144, 8192 - 512] {
            let row = measure(&spec, seq_len, name);
            let worst = row.recompute_downtime_ms.max(row.blocking_copy_downtime_ms);
            table.row(&[
                format!("{}", row.seq_len),
                format!("{:.1}ms", row.migration_downtime_ms),
                format!("{}", row.stages),
                format!("{:.0}ms", row.recompute_downtime_ms),
                format!("{:.0}ms", row.blocking_copy_downtime_ms),
                format!("{:.0}x", worst / row.migration_downtime_ms),
                format!("{:.1}%", row.decode_overhead_pct),
            ]);
            rows.push(row);
        }
        println!("{}", table.render());
    }
    println!("paper: ~20-30ms constant downtime, 2 stages, baselines up to 111x, <=1% overhead");
    opts.maybe_write_json(&rows);
}
