//! Table 1: real and generated sequence-length distributions.
//!
//! Regenerates the paper's Table 1 by sampling each fitted distribution and
//! reporting mean / P50 / P80 / P95 / P99, next to the published anchors.

use llumnix_bench::{parallel_map, BenchOpts};
use llumnix_metrics::{Summary, Table};
use llumnix_sim::SimRng;
use llumnix_workload::{table1, AnchoredDistribution, LengthSampler};
use serde::Serialize;

#[derive(Serialize)]
struct Row {
    distribution: String,
    mean: f64,
    p50: f64,
    p80: f64,
    p95: f64,
    p99: f64,
    paper_mean: f64,
}

fn sample_summary(d: &AnchoredDistribution, rng: &SimRng) -> Summary {
    let mut r = rng.split(&d.name);
    let samples: Vec<f64> = (0..200_000).map(|_| d.sample(&mut r) as f64).collect();
    Summary::from_samples(samples)
}

fn main() {
    let opts = BenchOpts::from_args();
    let rng = SimRng::new(opts.seed);
    let dists: Vec<(&str, AnchoredDistribution, [f64; 5])> = vec![
        (
            "ShareGPT In",
            table1::sharegpt_input(),
            [306.0, 74.0, 348.0, 1484.0, 3388.0],
        ),
        (
            "ShareGPT Out",
            table1::sharegpt_output(),
            [500.0, 487.0, 781.0, 988.0, 1234.0],
        ),
        (
            "BurstGPT In",
            table1::burstgpt_input(),
            [830.0, 582.0, 1427.0, 2345.0, 3549.0],
        ),
        (
            "BurstGPT Out",
            table1::burstgpt_output(),
            [271.0, 243.0, 434.0, 669.0, 964.0],
        ),
        (
            "Short (S)",
            table1::short(),
            [128.0, 38.0, 113.0, 413.0, 1464.0],
        ),
        (
            "Medium (M)",
            table1::medium(),
            [256.0, 32.0, 173.0, 1288.0, 4208.0],
        ),
        (
            "Long (L)",
            table1::long(),
            [512.0, 55.0, 582.0, 3113.0, 5166.0],
        ),
    ];
    let mut table = Table::new(
        "Table 1: sequence-length distributions (sampled / paper)",
        &["distribution", "mean", "P50", "P80", "P95", "P99"],
    );
    // Each distribution's sampler derives from `rng.split(&d.name)`, so the
    // seven 200k-sample jobs are independent and fan out across cores.
    let summaries: Vec<Summary> = parallel_map(dists.iter().collect(), |(_, dist, _)| {
        sample_summary(dist, &rng)
    });
    let mut rows = Vec::new();
    for ((name, _, paper), s) in dists.iter().zip(&summaries) {
        table.row(&[
            name.to_string(),
            format!("{:.0}/{:.0}", s.mean, paper[0]),
            format!("{:.0}/{:.0}", s.p50, paper[1]),
            format!("{:.0}/{:.0}", s.p80, paper[2]),
            format!("{:.0}/{:.0}", s.p95, paper[3]),
            format!("{:.0}/{:.0}", s.p99, paper[4]),
        ]);
        rows.push(Row {
            distribution: name.to_string(),
            mean: s.mean,
            p50: s.p50,
            p80: s.p80,
            p95: s.p95,
            p99: s.p99,
            paper_mean: paper[0],
        });
    }
    println!("{}", table.render());
    opts.maybe_write_json(&rows);
}
