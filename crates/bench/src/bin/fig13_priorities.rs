//! Figure 13: performance of high-priority and normal requests.
//!
//! Paper setup (§6.4): S-S lengths, Gamma arrivals with varying CV, 10% of
//! requests tagged with high scheduling *and* execution priority, a
//! 1,600-token target load for high-priority instances. Llumnix (priority-
//! aware) vs Llumnix-base (priority-agnostic). The paper reports 1.2–1.5×
//! mean request latency gains for high-priority requests (growing with CV),
//! up to 8.6×/10× mean/P99 prefill gains, 1.2–1.5×/1.3–2.2× decode gains,
//! and ≤4.5% degradation for normal requests.

use llumnix_bench::{build_trace, run_arms, ArmSpec, BenchOpts};
use llumnix_core::{SchedulerKind, ServingConfig};
use llumnix_metrics::{LatencyReport, RecordPriority, Table};
use llumnix_workload::Arrivals;
use serde::Serialize;

#[derive(Serialize)]
struct Row {
    cv: f64,
    scheduler: String,
    class: String,
    e2e_mean: f64,
    prefill_mean: f64,
    prefill_p99: f64,
    decode_mean: f64,
    decode_p99: f64,
    decode_compute_mean: f64,
}

fn main() {
    let opts = BenchOpts::from_args();
    let n = opts.scaled(10_000);
    let rate = 20.0;
    let mut rows = Vec::new();
    let mut table = Table::new(
        format!("Figure 13: priorities, S-S @ {rate} req/s, 10% high priority"),
        &[
            "cv",
            "scheduler",
            "class",
            "e2e mean",
            "prefill mean/p99",
            "decode mean/p99",
            "decode compute",
        ],
    );
    let mut combos = Vec::new();
    let mut arms = Vec::new();
    for cv in [2.0, 4.0, 6.0, 8.0] {
        for kind in [SchedulerKind::LlumnixBase, SchedulerKind::Llumnix] {
            combos.push((cv, kind));
            arms.push(ArmSpec {
                config: ServingConfig::new(kind, 16),
                trace: build_trace("S-S", n, Arrivals::gamma(rate, cv), 0.10, opts.seed),
                rate,
                cv,
            });
        }
    }
    let results = run_arms(arms);
    for (&(cv, kind), (_, out)) in combos.iter().zip(&results) {
        for class in [RecordPriority::High, RecordPriority::Normal] {
            let report = LatencyReport::for_priority(&out.records, class);
            let label = match class {
                RecordPriority::High => "high",
                RecordPriority::Normal => "normal",
            };
            table.row(&[
                format!("{cv}"),
                kind.label().to_string(),
                label.to_string(),
                format!("{:.2}s", report.e2e.mean),
                format!(
                    "{:.0}ms / {:.0}ms",
                    report.prefill.mean * 1e3,
                    report.prefill.p99 * 1e3
                ),
                format!(
                    "{:.1}ms / {:.1}ms",
                    report.decode.mean * 1e3,
                    report.decode.p99 * 1e3
                ),
                format!("{:.1}ms", report.decode_compute.mean * 1e3),
            ]);
            rows.push(Row {
                cv,
                scheduler: kind.label().to_string(),
                class: label.to_string(),
                e2e_mean: report.e2e.mean,
                prefill_mean: report.prefill.mean,
                prefill_p99: report.prefill.p99,
                decode_mean: report.decode.mean,
                decode_p99: report.decode.p99,
                decode_compute_mean: report.decode_compute.mean,
            });
        }
    }
    println!("{}", table.render());

    // Headline ratios: Llumnix vs Llumnix-base per CV, high-priority class.
    let mut summary = Table::new(
        "High-priority gains (llumnix-base / llumnix) and normal-request cost",
        &[
            "cv",
            "e2e",
            "prefill mean",
            "prefill p99",
            "decode mean",
            "normal e2e change",
        ],
    );
    for cv in [2.0, 4.0, 6.0, 8.0] {
        let get = |sched: &str, class: &str| {
            rows.iter()
                .find(|r| r.cv == cv && r.scheduler == sched && r.class == class)
                .expect("row exists")
        };
        let (hb, hl) = (get("llumnix-base", "high"), get("llumnix", "high"));
        let (nb, nl) = (get("llumnix-base", "normal"), get("llumnix", "normal"));
        summary.row(&[
            format!("{cv}"),
            format!("{:.2}x", hb.e2e_mean / hl.e2e_mean),
            format!("{:.2}x", hb.prefill_mean / hl.prefill_mean),
            format!("{:.2}x", hb.prefill_p99 / hl.prefill_p99),
            format!("{:.2}x", hb.decode_mean / hl.decode_mean),
            format!("{:+.1}%", (nl.e2e_mean / nb.e2e_mean - 1.0) * 100.0),
        ]);
    }
    println!("{}", summary.render());
    println!(
        "paper: e2e 1.2-1.5x, prefill mean 2.9-8.6x / p99 3.6-10x, decode 1.2-1.5x; normal +<=4.5%"
    );
    opts.maybe_write_json(&rows);
}
