//! Figure 15: P99 prefill latencies vs average number of instances with
//! varying scaling thresholds.
//!
//! Paper setup (§6.5): the scaling-up threshold `t` sweeps and the range is
//! `[t, t+50]`; higher `t` uses more instances. Plotting P99 prefill latency
//! against the average instance count traces each system's cost–latency
//! frontier; the paper finds Llumnix achieves a ≈5 s P99 prefill at 36% less
//! cost than INFaaS++.

use llumnix_bench::{build_trace, run_arms, ArmResult, ArmSpec, BenchOpts};
use llumnix_core::{AutoScaleConfig, SchedulerKind, ServingConfig};
use llumnix_metrics::Table;
use llumnix_workload::Arrivals;

fn main() {
    let opts = BenchOpts::from_args();
    let n = opts.scaled(10_000);
    let rate = 2.0;
    let mut arms: Vec<ArmSpec> = Vec::new();
    for t in [2.0, 5.0, 10.0, 20.0, 40.0] {
        for kind in [SchedulerKind::InfaasPlusPlus, SchedulerKind::Llumnix] {
            arms.push(ArmSpec {
                config: ServingConfig::new(kind, 1)
                    .with_autoscale(AutoScaleConfig::paper_default(16).with_threshold(t)),
                trace: build_trace("L-L", n, Arrivals::gamma(rate, 4.0), 0.0, opts.seed),
                rate,
                // Reuse the cv field to carry the threshold in JSON.
                cv: t,
            });
        }
    }
    let all: Vec<ArmResult> = run_arms(arms).into_iter().map(|(arm, _)| arm).collect();

    let mut table = Table::new(
        format!("Figure 15: cost vs P99 prefill latency, L-L @ {rate} req/s (Gamma cv 4)"),
        &["threshold t", "scheduler", "p99 prefill", "avg instances"],
    );
    for arm in &all {
        table.row(&[
            format!("{}", arm.cv),
            arm.scheduler.clone(),
            format!("{:.2}s", arm.report.prefill.p99),
            format!("{:.2}", arm.avg_instances),
        ]);
    }
    println!("{}", table.render());

    // Iso-latency cost comparison: the latency target is the best P99
    // prefill INFaaS++ attains anywhere on its frontier; compare the
    // cheapest configuration of each system that reaches it.
    let infaas_best = all
        .iter()
        .filter(|a| a.scheduler == "infaas++")
        .map(|a| a.report.prefill.p99)
        .fold(f64::INFINITY, f64::min);
    let target = infaas_best * 1.05;
    let cheapest = |sched: &str| {
        all.iter()
            .filter(|a| a.scheduler == sched && a.report.prefill.p99 <= target)
            .map(|a| a.avg_instances)
            .fold(f64::INFINITY, f64::min)
    };
    let infaas_cost = cheapest("infaas++");
    let llumnix_cost = cheapest("llumnix");
    let llumnix_best = all
        .iter()
        .filter(|a| a.scheduler == "llumnix")
        .map(|a| a.report.prefill.p99)
        .fold(f64::INFINITY, f64::min);
    if llumnix_cost.is_finite() && infaas_cost.is_finite() {
        println!(
            "at INFaaS++'s best P99 prefill ({infaas_best:.1}s): infaas++ needs {infaas_cost:.1} \
             instances, llumnix {llumnix_cost:.1} -> {:.0}% cost saving (paper: 36% at iso-latency)",
            (1.0 - llumnix_cost / infaas_cost) * 100.0
        );
    }
    println!(
        "llumnix's own best P99 prefill on the frontier: {llumnix_best:.1}s ({:.1}x lower)",
        infaas_best / llumnix_best.max(1e-9)
    );
    opts.maybe_write_json(&all);
}
