//! Figure 3: request preemptions in LLaMA-7B serving.
//!
//! Paper setup (§3): one LLaMA-7B instance on an A10, a 2,000-request trace
//! from a Poisson process, input/output lengths power-law with mean 256
//! (the Medium distribution), at a rate giving a moderate (~62%) average
//! memory load. The paper observes ≈8% of requests preempted, P99 per-token
//! decode latency ≈3.8× the P50, and preemption loss accounting for ~70% of
//! the P99 request's latency.
//!
//! The request rate here is re-calibrated to this reproduction's cost model
//! (which is faster than the paper's A10 testbed) to hit the same ~62%
//! memory-load operating point; pass `--rate` to override.

use llumnix_bench::{build_trace, BenchOpts};
use llumnix_core::{run_serving, SchedulerKind, ServingConfig};
use llumnix_metrics::{percentile, Table};
use llumnix_workload::Arrivals;
use serde::Serialize;

#[derive(Serialize)]
struct Row {
    percentile: String,
    decode_latency_s: f64,
    preemption_loss_s: f64,
    loss_fraction: f64,
}

fn main() {
    let opts = BenchOpts::from_args();
    let rate = std::env::args()
        .collect::<Vec<_>>()
        .windows(2)
        .find(|w| w[0] == "--rate")
        .and_then(|w| w[1].parse().ok())
        .unwrap_or(0.85);
    let n = opts.scaled(2_000);
    let trace = build_trace("M-M", n, Arrivals::poisson(rate), 0.0, opts.seed);
    // A single instance and no migration: this is plain vLLM behaviour.
    let out = run_serving(ServingConfig::new(SchedulerKind::RoundRobin, 1), trace);

    let mem_load = 1.0 - out.free_blocks.mean() / 851.0;
    let preempted = out.records.iter().filter(|r| r.preemptions > 0).count();
    let frac = preempted as f64 / out.records.len() as f64;

    // Sort requests by per-token decode latency and inspect the percentiles,
    // attributing each request's preemption loss (as in Figure 3).
    let mut by_decode: Vec<&llumnix_metrics::RequestRecord> =
        out.records.iter().filter(|r| r.output_len > 1).collect();
    by_decode.sort_by(|a, b| {
        a.decode_latency_per_token()
            .partial_cmp(&b.decode_latency_per_token())
            .expect("finite")
    });
    let decode_sorted: Vec<f64> = by_decode
        .iter()
        .map(|r| r.decode_latency_per_token())
        .collect();

    let mut table = Table::new(
        format!(
            "Figure 3: preemptions on 1×LLaMA-7B (rate {rate} req/s, mem load {:.0}%, {:.1}% requests preempted)",
            mem_load * 100.0,
            frac * 100.0
        ),
        &["pct", "decode/token", "preempt loss", "loss fraction of decode"],
    );
    let mut rows = Vec::new();
    for (label, q) in [("P50", 0.50), ("P80", 0.80), ("P95", 0.95), ("P99", 0.99)] {
        let decode = percentile(&decode_sorted, q);
        // Requests in a ±1% window around this percentile of decode latency;
        // their average preemption loss shows what the tail is made of.
        let lo = (((by_decode.len() - 1) as f64 * (q - 0.01)).max(0.0)) as usize;
        let hi = (((by_decode.len() - 1) as f64 * (q + 0.01)) as usize).min(by_decode.len() - 1);
        let window = &by_decode[lo..=hi];
        let loss =
            window.iter().map(|r| r.preemption_loss_secs()).sum::<f64>() / window.len() as f64;
        let decode_span = window
            .iter()
            .map(|r| r.finish.since(r.first_token).as_secs_f64())
            .sum::<f64>()
            / window.len() as f64;
        let loss_frac = loss / decode_span.max(1e-9);
        table.row(&[
            label.to_string(),
            format!("{:.3}s", decode),
            format!("{:.2}s", loss),
            format!("{:.0}%", loss_frac * 100.0),
        ]);
        rows.push(Row {
            percentile: label.to_string(),
            decode_latency_s: decode,
            preemption_loss_s: loss,
            loss_fraction: loss_frac,
        });
    }
    println!("{}", table.render());
    let p50 = percentile(&decode_sorted, 0.50);
    let p99 = percentile(&decode_sorted, 0.99);
    println!(
        "P99/P50 per-token decode latency: {:.1}x (paper: 3.8x)",
        p99 / p50
    );
    opts.maybe_write_json(&rows);
}
