//! Figure 4: latencies of one decode step of LLaMA-7B and LLaMA-30B with
//! different sequence lengths and batch sizes.
//!
//! The paper plots decode-step time against the total number of tokens in
//! the batch, for several per-sequence lengths, and observes the step time
//! growing with batch size with an up-to-2.6× gap at the same sequence
//! length. This binary prints the same series from the calibrated cost
//! model (the reproduction's substitute for GPU measurement).

use llumnix_bench::BenchOpts;
use llumnix_metrics::Table;
use llumnix_model::{CalibratedCostModel, CostModel, DecodeBatch};
use serde::Serialize;

#[derive(Serialize)]
struct Row {
    model: String,
    seq_len: u32,
    batch_size: u32,
    total_tokens: u64,
    step_ms: f64,
}

fn main() {
    let opts = BenchOpts::from_args();
    let mut rows = Vec::new();
    for (name, model, max_tokens) in [
        ("LLaMA-7B", CalibratedCostModel::llama_7b_a10(), 13_616u64),
        ("LLaMA-30B", CalibratedCostModel::llama_30b_4xa10(), 14_400),
    ] {
        let mut table = Table::new(
            format!("Figure 4: decode step latency, {name}"),
            &["seq len", "batch", "total tokens", "step (ms)", "vs lone"],
        );
        for seq_len in [128u32, 256, 512, 1024, 2048] {
            let lone = model
                .decode_step(DecodeBatch {
                    num_seqs: 1,
                    total_tokens: seq_len as u64,
                })
                .as_millis_f64();
            for batch in [1u32, 2, 4, 8, 16, 32, 64] {
                let total = seq_len as u64 * batch as u64;
                if total > max_tokens {
                    continue;
                }
                let ms = model
                    .decode_step(DecodeBatch {
                        num_seqs: batch,
                        total_tokens: total,
                    })
                    .as_millis_f64();
                table.row(&[
                    format!("{seq_len}"),
                    format!("{batch}"),
                    format!("{total}"),
                    format!("{ms:.1}"),
                    format!("{:.2}x", ms / lone),
                ]);
                rows.push(Row {
                    model: name.to_string(),
                    seq_len,
                    batch_size: batch,
                    total_tokens: total,
                    step_ms: ms,
                });
            }
        }
        println!("{}", table.render());
        // The paper's headline: the same sequence length can decode up to
        // 2.6× slower inside a loaded batch.
        let worst = model
            .decode_step(DecodeBatch {
                num_seqs: 64,
                total_tokens: max_tokens,
            })
            .as_millis_f64();
        let best = model
            .decode_step(DecodeBatch {
                num_seqs: 1,
                total_tokens: 128,
            })
            .as_millis_f64();
        println!(
            "{name}: max interference spread {:.2}x (paper: up to 2.6x)\n",
            worst / best
        );
    }
    opts.maybe_write_json(&rows);
}
