//! Figure 11: serving performance on 16 LLaMA-7B instances.
//!
//! Paper setup (§6.3): 16 instances, seven traces (ShareGPT, BurstGPT, and
//! the generated S-S / M-M / L-L / S-L / L-S mixes), 10,000 requests each,
//! Poisson arrivals over a range of request rates; round-robin, INFaaS++,
//! and Llumnix compared on end-to-end / prefill / decode latencies (mean and
//! P99) and mean preemption loss.
//!
//! Request-rate ranges are re-calibrated to this reproduction's (faster)
//! cost model so each trace spans the paper's operating regime: nearly no
//! queuing at the low end, heavy queuing pressure at the high end.

use llumnix_bench::{
    build_trace, mean_p99, run_arms, ArmResult, ArmSpec, BenchOpts, FIG11_SCHEDULERS,
};
use llumnix_core::ServingConfig;
use llumnix_metrics::Table;
use llumnix_workload::Arrivals;

/// Per-trace request-rate sweeps (req/s across the 16-instance cluster).
const SWEEPS: [(&str, [f64; 4]); 7] = [
    ("ShareGPT", [6.0, 8.0, 10.0, 12.0]),
    ("BurstGPT", [6.0, 8.0, 10.0, 12.0]),
    ("S-S", [32.0, 40.0, 48.0, 56.0]),
    ("M-M", [8.0, 9.0, 10.0, 11.0]),
    ("L-L", [3.0, 3.5, 3.75, 4.0]),
    ("S-L", [4.0, 4.5, 5.0, 5.5]),
    ("L-S", [16.0, 20.0, 24.0, 28.0]),
];

fn main() {
    let opts = BenchOpts::from_args();
    let n = opts.scaled(10_000);
    // Build every (trace, rate, scheduler) arm up front, then fan the whole
    // sweep out across worker threads; the tables below re-group the results
    // (returned in this insertion order) per trace.
    let mut arms: Vec<ArmSpec> = Vec::new();
    for (trace_name, rates) in SWEEPS {
        for rate in rates {
            for kind in FIG11_SCHEDULERS {
                // Round-robin explodes on high-variance traces (the paper
                // drops it after the real traces); keep it only there.
                if kind == llumnix_core::SchedulerKind::RoundRobin
                    && !matches!(trace_name, "ShareGPT" | "BurstGPT")
                {
                    continue;
                }
                let trace = build_trace(trace_name, n, Arrivals::poisson(rate), 0.0, opts.seed);
                arms.push(ArmSpec {
                    config: ServingConfig::new(kind, 16),
                    trace,
                    rate,
                    cv: 1.0,
                });
            }
        }
    }
    let all: Vec<ArmResult> = run_arms(arms).into_iter().map(|(arm, _)| arm).collect();
    for (trace_name, _) in SWEEPS {
        let mut table = Table::new(
            format!("Figure 11: {trace_name}, 16 instances, {n} requests"),
            &[
                "rate",
                "scheduler",
                "e2e mean/p99",
                "prefill mean/p99",
                "decode mean/p99",
                "preempt loss",
                "migr",
            ],
        );
        for arm in all.iter().filter(|a| a.trace == trace_name) {
            table.row(&[
                format!("{}", arm.rate),
                arm.scheduler.clone(),
                mean_p99(&arm.report.e2e),
                mean_p99(&arm.report.prefill),
                mean_p99(&arm.report.decode),
                format!("{:.2}s", arm.report.preemption_loss.mean),
                format!("{}", arm.migrations),
            ]);
        }
        println!("{}", table.render());
    }
    summarize(&all);
    opts.maybe_write_json(&all);
}

/// Prints the paper's headline ratios (Llumnix vs INFaaS++, best case).
fn summarize(all: &[ArmResult]) {
    let mut best_prefill_mean: f64 = 0.0;
    let mut best_prefill_p99: f64 = 0.0;
    let mut best_decode_p99: f64 = 0.0;
    let mut loss_reductions = Vec::new();
    for arm in all.iter().filter(|a| a.scheduler == "llumnix") {
        let Some(base) = all
            .iter()
            .find(|b| b.scheduler == "infaas++" && b.trace == arm.trace && b.rate == arm.rate)
        else {
            continue;
        };
        if arm.report.prefill.mean > 1e-6 {
            best_prefill_mean =
                best_prefill_mean.max(base.report.prefill.mean / arm.report.prefill.mean);
        }
        if arm.report.prefill.p99 > 1e-6 {
            best_prefill_p99 =
                best_prefill_p99.max(base.report.prefill.p99 / arm.report.prefill.p99);
        }
        if arm.report.decode.p99 > 1e-6 {
            best_decode_p99 = best_decode_p99.max(base.report.decode.p99 / arm.report.decode.p99);
        }
        if base.report.preemption_loss.mean > 1e-6 {
            loss_reductions
                .push(1.0 - arm.report.preemption_loss.mean / base.report.preemption_loss.mean);
        }
    }
    let avg_loss_red = if loss_reductions.is_empty() {
        0.0
    } else {
        loss_reductions.iter().sum::<f64>() / loss_reductions.len() as f64
    };
    println!("Llumnix vs INFaaS++ across all arms:");
    println!("  best mean prefill improvement: {best_prefill_mean:.1}x (paper: up to 7.7x)");
    println!("  best P99 prefill improvement:  {best_prefill_p99:.1}x (paper: up to 14.8x)");
    println!("  best P99 decode improvement:   {best_decode_p99:.1}x (paper: up to 2x)");
    println!(
        "  mean preemption-loss reduction: {:.0}% (paper: 70.4% average)",
        avg_loss_red * 100.0
    );
}
