//! Figure 12: memory fragmentation over time.
//!
//! Paper setup (§6.3): the M-M trace at its case-study rate; the fragmented
//! memory at each moment is the portion of cluster free memory that could
//! satisfy the head-of-line blocked requests if it were not fragmented,
//! reported as a proportion of total cluster memory. The paper measures
//! INFaaS++ often above 10% with an average of 7.9%, against 0.7% for
//! Llumnix (92% reduction).

use llumnix_bench::{build_trace, BenchOpts};
use llumnix_core::{run_serving, SchedulerKind, ServingConfig};
use llumnix_metrics::{Table, TimeSeries};
use llumnix_sim::SimTime;
use llumnix_workload::Arrivals;
use serde::Serialize;

#[derive(Serialize)]
struct Out {
    rate: f64,
    llumnix_mean_fragmentation: f64,
    infaas_mean_fragmentation: f64,
    reduction: f64,
    infaas_fraction_above_10pct: f64,
    llumnix_fraction_above_10pct: f64,
}

/// Restricts a fragmentation series to the busy window (while arrivals are
/// still flowing: the first 90% of the span).
fn busy(ts: &TimeSeries, span: SimTime) -> TimeSeries {
    ts.window(
        SimTime::ZERO,
        SimTime::from_secs_f64(span.as_secs_f64() * 0.9),
    )
}

fn main() {
    let opts = BenchOpts::from_args();
    let rate = 11.0;
    let n = opts.scaled(10_000);
    let trace = build_trace("M-M", n, Arrivals::poisson(rate), 0.0, opts.seed);
    let span = trace.span();
    let infaas = run_serving(
        ServingConfig::new(SchedulerKind::InfaasPlusPlus, 16),
        trace.clone(),
    );
    let llumnix = run_serving(ServingConfig::new(SchedulerKind::Llumnix, 16), trace);
    let fi = busy(&infaas.fragmentation, span);
    let fl = busy(&llumnix.fragmentation, span);

    let mut table = Table::new(
        format!("Figure 12: fragmented-memory proportion, M-M @ {rate} req/s"),
        &[
            "scheduler",
            "mean",
            "mean when fragmented",
            "time >5%",
            "max",
        ],
    );
    for (name, ts) in [("infaas++", &fi), ("llumnix", &fl)] {
        let busy_samples: Vec<f64> = ts
            .points()
            .iter()
            .map(|&(_, v)| v)
            .filter(|&v| v > 0.0)
            .collect();
        let conditional = if busy_samples.is_empty() {
            0.0
        } else {
            busy_samples.iter().sum::<f64>() / busy_samples.len() as f64
        };
        table.row(&[
            name.to_string(),
            format!("{:.2}%", ts.mean() * 100.0),
            format!("{:.2}%", conditional * 100.0),
            format!("{:.0}%", ts.fraction_above(0.05) * 100.0),
            format!("{:.1}%", ts.max() * 100.0),
        ]);
    }
    println!("{}", table.render());
    let reduction = 1.0 - fl.mean() / fi.mean().max(1e-12);
    println!(
        "fragmentation reduction: {:.0}% (paper: 92%, 0.7% vs 7.9%)",
        reduction * 100.0
    );

    // Timeline excerpt: ten busiest consecutive samples for each arm.
    let mut excerpt = Table::new("Timeline excerpt", &["t (s)", "infaas++", "llumnix"]);
    let pts_i = fi.points();
    let pts_l = fl.points();
    if let Some(peak) = pts_i
        .iter()
        .enumerate()
        .max_by(|a, b| a.1 .1.partial_cmp(&b.1 .1).expect("finite"))
        .map(|(i, _)| i)
    {
        let lo = peak.saturating_sub(5);
        let hi = (lo + 10).min(pts_i.len());
        for (i, point) in pts_i.iter().enumerate().take(hi).skip(lo) {
            excerpt.row(&[
                format!("{:.0}", point.0.as_secs_f64()),
                format!("{:.1}%", point.1 * 100.0),
                format!("{:.1}%", pts_l.get(i).map(|p| p.1).unwrap_or(0.0) * 100.0),
            ]);
        }
    }
    println!("{}", excerpt.render());
    opts.maybe_write_json(&Out {
        rate,
        llumnix_mean_fragmentation: fl.mean(),
        infaas_mean_fragmentation: fi.mean(),
        reduction,
        infaas_fraction_above_10pct: fi.fraction_above(0.10),
        llumnix_fraction_above_10pct: fl.fraction_above(0.10),
    });
}
