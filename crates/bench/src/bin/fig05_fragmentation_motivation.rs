//! Figure 5: total free memory vs demands of head-of-line queuing requests
//! across four LLaMA-7B instances.
//!
//! Paper setup (§3): four instances, Medium-Medium lengths, Poisson
//! arrivals, a spreading (lowest-memory-load) dispatch policy. The paper
//! shows that for most of the time span the cluster's total free memory
//! could satisfy the head-of-line queuing requests on at least three
//! instances — the requests queue *only because of fragmentation*.
//!
//! The rate defaults to this model's equivalent of the paper's 1.9 req/s
//! operating point; pass `--rate` to override.

use llumnix_bench::{build_trace, BenchOpts};
use llumnix_core::{run_serving, SchedulerKind, ServingConfig};
use llumnix_metrics::Table;
use llumnix_workload::Arrivals;
use serde::Serialize;

#[derive(Serialize)]
struct Out {
    rate: f64,
    samples: usize,
    fraction_with_queuing: f64,
    fraction_hol_satisfiable_when_queuing: f64,
    mean_free_blocks: f64,
    mean_fragmentation: f64,
}

fn main() {
    let opts = BenchOpts::from_args();
    let rate = std::env::args()
        .collect::<Vec<_>>()
        .windows(2)
        .find(|w| w[0] == "--rate")
        .and_then(|w| w[1].parse().ok())
        .unwrap_or(3.4);
    let n = opts.scaled(2_000);
    let trace = build_trace("M-M", n, Arrivals::poisson(rate), 0.0, opts.seed);
    // The paper's "spreading dispatching policy that dispatches new requests
    // to the instance with the lowest memory load" is INFaaS++'s dispatch.
    let out = run_serving(ServingConfig::new(SchedulerKind::InfaasPlusPlus, 4), trace);

    // Count samples where at least one request queues, and among those, how
    // often the cluster-wide free memory could have satisfied its head-of-
    // line demand(s) — the fragmentation evidence.
    let queue_points = out.queued.points();
    let hol_points = out.hol_satisfiable.points();
    let mut with_queue = 0usize;
    let mut satisfiable = 0usize;
    for (q, h) in queue_points.iter().zip(hol_points) {
        if q.1 > 0.0 {
            with_queue += 1;
            if h.1 > 0.0 {
                satisfiable += 1;
            }
        }
    }
    let mut table = Table::new(
        format!("Figure 5: fragmentation on 4×LLaMA-7B, M-M @ {rate} req/s"),
        &["metric", "value"],
    );
    let frac_queue = with_queue as f64 / queue_points.len().max(1) as f64;
    let frac_sat = satisfiable as f64 / with_queue.max(1) as f64;
    table.row(&[
        "samples with queuing requests".into(),
        format!("{:.0}% of time", frac_queue * 100.0),
    ]);
    table.row(&[
        "…where total free memory could admit the HOL request".into(),
        format!("{:.0}% (paper: most of the span)", frac_sat * 100.0),
    ]);
    table.row(&[
        "mean free blocks (cluster)".into(),
        format!("{:.0} / {}", out.free_blocks.mean(), 851 * 4),
    ]);
    table.row(&[
        "mean fragmented-memory proportion".into(),
        format!("{:.1}%", out.fragmentation.mean() * 100.0),
    ]);
    println!("{}", table.render());

    // A short excerpt of the timeline, mirroring the figure's two series.
    let mut excerpt = Table::new(
        "Timeline excerpt (busiest 20 samples)",
        &["t (s)", "free blocks", "HOL demands satisfiable"],
    );
    let busiest = queue_points
        .iter()
        .enumerate()
        .filter(|(_, p)| p.1 > 0.0)
        .take(20)
        .map(|(i, _)| i)
        .collect::<Vec<_>>();
    for i in busiest {
        excerpt.row(&[
            format!("{:.0}", queue_points[i].0.as_secs_f64()),
            format!("{:.0}", out.free_blocks.points()[i].1),
            format!("{:.0}", hol_points[i].1),
        ]);
    }
    println!("{}", excerpt.render());
    opts.maybe_write_json(&Out {
        rate,
        samples: queue_points.len(),
        fraction_with_queuing: frac_queue,
        fraction_hol_satisfiable_when_queuing: frac_sat,
        mean_free_blocks: out.free_blocks.mean(),
        mean_fragmentation: out.fragmentation.mean(),
    });
}
