//! Figure 17 (extension): auto-scaling churn under fault injection, 64-1024
//! instances.
//!
//! The paper's fault-tolerance story (§4.3, §6) is qualitative: llumlets fail
//! independently of the global scheduler and vice versa. This sweep makes it
//! quantitative on the simulator. Each arm serves a bursty L-L workload
//! (Gamma arrivals, CV 4) on an auto-scaled fleet while a seeded
//! [`FaultPlan`] crashes instances (restarting them after 10 s), injects
//! transient stragglers (1.5-3x slowdowns for 10 s) and takes the migration
//! link down (5 s outages); faults stay active for twice the arrival
//! window. Crashed instances' queued and running requests
//! are redispatched through the normal dispatch path, so the headline
//! metrics are tail-latency inflation and recovery latency — not failed
//! requests.
//!
//! Fleet sizes extend Figures 14/15 (16 instances) to 64-1024. Both
//! schedulers run at 64 and 256 instances; 512 and 1024 run Llumnix only
//! (the InfaaS++ comparison is established by then and the arms are the
//! sweep's most expensive). Fault rates are per instance-hour so churn
//! pressure per instance is constant across fleet sizes.
//!
//! Every arm is checked for counter reconciliation: lost requests are
//! redispatched or aborted exactly once, failure aborts never exceed the
//! migration coordinator's abort count, and fault-free arms report zero
//! fault activity.
//!
//! Fault plans begin 1 s after the nominal arrival window (n / rate): the
//! fleet takes load fault-free, then crashes, stragglers and link outages
//! hit the fully loaded, draining fleet — where recovery actually has work
//! to redispatch. The fault-free prefix is identical across the three fault
//! profiles, so `--forked` runs it once per (fleet, scheduler) pair and
//! forks the profiles from a snapshot; the JSON output is byte-identical
//! with and without the flag, and the prefix is roughly half of each arm's
//! compute (see EXPERIMENTS.md for the measured wall-clock ratio).

use llumnix_bench::{
    build_trace, mean_p99, run_arms, run_arms_forked, ArmResult, ArmSpec, BenchOpts, ForkArm,
    ForkGroup,
};
use llumnix_core::{AutoScaleConfig, FaultPlan, FaultPlanConfig, SchedulerKind, ServingConfig};
use llumnix_metrics::Table;
use llumnix_sim::{SimDuration, SimRng, SimTime};
use llumnix_workload::Arrivals;

/// Fault profiles: (label, crash rate per instance-hour). Slowdown and
/// link-failure rates are derived from the crash rate in [`fault_config`].
const PROFILES: [(&str, f64); 3] = [("none", 0.0), ("low", 2.0), ("high", 8.0)];

/// Per-arm request rate per instance (req/s), held constant across fleets.
const RATE_PER_INSTANCE: f64 = 0.15;

fn fault_config(per_instance_rate: f64, fleet: usize, horizon: SimDuration) -> FaultPlanConfig {
    if per_instance_rate <= 0.0 {
        return FaultPlanConfig::none();
    }
    let crash = per_instance_rate * fleet as f64;
    FaultPlanConfig::none()
        .with_crashes(crash, Some(SimDuration::from_secs(10)))
        .with_slowdowns(2.0 * crash, (1.5, 3.0), SimDuration::from_secs(10))
        .with_link_failures(crash, SimDuration::from_secs(5))
        .with_horizon(horizon)
}

/// One JSON row: the standard arm result plus the fault ledger.
#[derive(Debug, serde::Serialize)]
struct ChurnRow {
    fleet: usize,
    faults: String,
    planned_crashes: usize,
    arm: ArmResult,
    crashes: u64,
    crashes_skipped: u64,
    slowdowns: u64,
    link_failures: u64,
    requests_lost: u64,
    requests_redispatched: u64,
    requests_lost_aborted: u64,
    failure_aborts: u64,
    recovery_mean_secs: f64,
    recovery_p99_secs: f64,
}

fn main() {
    let opts = BenchOpts::from_args();
    // `--huge` appends 4096- and 10 240-instance Llumnix arms (affordable
    // only on the sharded windowed core — pass `--shards` too); `--shards N`
    // runs every arm windowed, byte-identical at any `N`.
    let huge = std::env::args().any(|a| a == "--huge");
    // `--forked` shares each (fleet, scheduler) pair's fault-free warmup
    // across its three fault profiles via snapshot/fork instead of running
    // the common prefix three times. Every fault plan begins strictly after
    // the warmup in *both* modes (a pure time translation of the schedule),
    // so the JSON output is byte-identical with and without the flag — CI
    // diffs the two.
    let forked = std::env::args().any(|a| a == "--forked");
    let mut fleets: Vec<(usize, &[SchedulerKind])> = vec![
        (64, &[SchedulerKind::InfaasPlusPlus, SchedulerKind::Llumnix]),
        (
            256,
            &[SchedulerKind::InfaasPlusPlus, SchedulerKind::Llumnix],
        ),
        (512, &[SchedulerKind::Llumnix]),
        (1024, &[SchedulerKind::Llumnix]),
    ];
    if huge {
        fleets.push((4_096, &[SchedulerKind::Llumnix]));
        fleets.push((10_240, &[SchedulerKind::Llumnix]));
    }

    let mut arms: Vec<ArmSpec> = Vec::new();
    let mut groups: Vec<ForkGroup> = Vec::new();
    // Parallel to the flattened results: (fleet, profile, planned crashes, n).
    let mut meta: Vec<(usize, &str, usize, usize)> = Vec::new();
    for (fleet, kinds) in fleets.clone() {
        let n = opts.scaled(1_000 * fleet / 64);
        let rate = RATE_PER_INSTANCE * fleet as f64;
        // The shared fault-free prefix: the nominal arrival window
        // (n / rate). Every fault plan is translated to begin 1 s after it,
        // so the cold and forked runs face the identical fault schedule
        // (`with_start_offset` is a pure time translation).
        let warmup_ms = (1_000.0 * n as f64 / rate) as u64;
        let warmup = SimTime::ZERO + SimDuration::from_millis(warmup_ms);
        let offset = SimDuration::from_millis(warmup_ms) + SimDuration::from_secs(1);
        // Faults stay active for twice the arrival window past the offset —
        // long enough to churn the loaded, draining fleet, short enough not
        // to spend the sweep crash-looping an idle one (the drained fleet
        // carries no requests to redispatch, so a longer horizon only adds
        // restart bookkeeping that dilutes the recovery metrics).
        let horizon = SimDuration::from_millis(2 * warmup_ms);
        // One plan per (fleet, profile), shared by both schedulers so they
        // face the identical fault schedule. Generated on the main thread
        // from a labelled split: the plan is a pure function of
        // (seed, fleet, profile), whatever the worker-thread count.
        let plans: Vec<(&str, FaultPlan)> = PROFILES
            .iter()
            .map(|&(profile, per_inst)| {
                let plan = FaultPlan::generate(
                    &fault_config(per_inst, fleet, horizon).with_start_offset(offset),
                    &SimRng::new(opts.seed).split(&format!("fig17/{fleet}/{profile}")),
                );
                (profile, plan)
            })
            .collect();
        for &kind in kinds {
            let mut scale_cfg = AutoScaleConfig::paper_default(fleet as u32);
            scale_cfg.min_instances = (fleet / 8).max(1) as u32;
            let config = opts
                .sharded(ServingConfig::new(kind, (fleet / 4) as u32).with_autoscale(scale_cfg));
            let trace = build_trace("L-L", n, Arrivals::gamma(rate, 4.0), 0.0, opts.seed);
            if forked {
                groups.push(ForkGroup {
                    config,
                    trace,
                    warmup,
                    rate,
                    cv: 4.0,
                    arms: plans
                        .iter()
                        .map(|(_, plan)| ForkArm { plan: plan.clone() })
                        .collect(),
                });
            } else {
                for (_, plan) in &plans {
                    arms.push(ArmSpec {
                        config: config.clone().with_faults(plan.clone()),
                        trace: trace.clone(),
                        rate,
                        cv: 4.0,
                    });
                }
            }
            for (profile, plan) in &plans {
                meta.push((fleet, profile, plan.crash_count(), n));
            }
        }
    }
    let results = if forked {
        run_arms_forked(groups)
    } else {
        run_arms(arms)
    };

    let mut table = Table::new(
        "Figure 17: auto-scaling churn under faults (L-L, Gamma CV 4)",
        &[
            "fleet",
            "faults",
            "scheduler",
            "e2e mean/p99",
            "prefill mean/p99",
            "avg inst",
            "crashes",
            "lost/redisp",
            "recovery p99",
        ],
    );
    let mut rows: Vec<ChurnRow> = Vec::new();
    for ((arm, out), &(fleet, profile, planned_crashes, n)) in results.iter().zip(&meta) {
        let fs = &out.fault_stats;

        // Reconciliation: these hold for every arm or the run is wrong.
        assert!(
            fs.consistent(),
            "{fleet}/{profile}/{}: lost {} != redispatched {} + aborted {}",
            arm.scheduler,
            fs.requests_lost,
            fs.requests_redispatched,
            fs.requests_lost_aborted
        );
        assert!(
            fs.failure_aborts() <= out.migration_stats.aborted,
            "{fleet}/{profile}/{}: failure aborts exceed migration aborts",
            arm.scheduler
        );
        assert!(
            fs.crashes as usize + fs.crashes_skipped as usize <= planned_crashes,
            "{fleet}/{profile}/{}: more crashes fired than planned",
            arm.scheduler
        );
        assert_eq!(
            out.records.len() + out.aborted as usize,
            n,
            "{fleet}/{profile}/{}: requests leaked",
            arm.scheduler
        );
        if profile == "none" {
            assert!(
                fs.quiet(),
                "{fleet}/none/{}: fault activity on a fault-free arm",
                arm.scheduler
            );
        } else if opts.scale >= 1.0 {
            assert!(
                fs.crashes > 0,
                "{fleet}/{profile}/{}: fault profile fired no crashes",
                arm.scheduler
            );
        }

        table.row(&[
            format!("{fleet}"),
            profile.to_string(),
            arm.scheduler.clone(),
            mean_p99(&arm.report.e2e),
            mean_p99(&arm.report.prefill),
            format!("{:.1}", arm.avg_instances),
            format!("{}", fs.crashes),
            format!("{}/{}", fs.requests_lost, fs.requests_redispatched),
            format!("{:.2}s", fs.recovery_latency.p99),
        ]);
        rows.push(ChurnRow {
            fleet,
            faults: profile.to_string(),
            planned_crashes,
            arm: arm.clone(),
            crashes: fs.crashes,
            crashes_skipped: fs.crashes_skipped,
            slowdowns: fs.slowdowns,
            link_failures: fs.link_failures,
            requests_lost: fs.requests_lost,
            requests_redispatched: fs.requests_redispatched,
            requests_lost_aborted: fs.requests_lost_aborted,
            failure_aborts: fs.failure_aborts(),
            recovery_mean_secs: fs.recovery_latency.mean,
            recovery_p99_secs: fs.recovery_latency.p99,
        });
    }
    println!("{}", table.render());

    // Headline: Llumnix tail inflation under high churn, per fleet size.
    for (fleet, _) in fleets {
        let find = |profile: &str| {
            rows.iter()
                .find(|r| r.fleet == fleet && r.faults == profile && r.arm.scheduler == "llumnix")
        };
        if let (Some(quiet), Some(churn)) = (find("none"), find("high")) {
            if quiet.arm.report.e2e.p99 > 1e-9 {
                println!(
                    "{fleet} instances: high churn inflates llumnix P99 e2e {:.2}x \
                     ({} crashes, {} requests redispatched, recovery p99 {:.2}s)",
                    churn.arm.report.e2e.p99 / quiet.arm.report.e2e.p99,
                    churn.crashes,
                    churn.requests_redispatched,
                    churn.recovery_p99_secs
                );
            }
        }
    }
    let redispatched: u64 = rows.iter().map(|r| r.requests_redispatched).sum();
    let lost_aborted: u64 = rows.iter().map(|r| r.requests_lost_aborted).sum();
    println!("redispatched {redispatched} crash-lost requests sweep-wide ({lost_aborted} aborted)");
    opts.maybe_write_json(&rows);
}
