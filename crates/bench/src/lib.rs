//! Shared harness code for the per-figure benchmark binaries.
//!
//! Each `figNN_*` binary regenerates one table or figure from the paper:
//! it builds the paper's workload, runs every scheduler arm through the
//! serving simulation, prints an aligned table mirroring the figure's
//! series, and (with `--json <path>`) dumps machine-readable rows.

#![warn(missing_docs)]

use std::time::Instant;

use llumnix_core::{run_serving, SchedulerKind, ServingConfig, ServingOutput};
use llumnix_metrics::LatencyReport;
use llumnix_sim::SimRng;
use llumnix_workload::{presets, Arrivals, Trace};
use serde::Serialize;

/// Default experiment seed; every binary accepts `--seed N` to change it.
pub const DEFAULT_SEED: u64 = 20240710;

/// Parsed common CLI options.
#[derive(Debug, Clone)]
pub struct BenchOpts {
    /// Experiment seed.
    pub seed: u64,
    /// Optional JSON output path.
    pub json: Option<String>,
    /// Scale factor on request counts (use < 1.0 for quick runs).
    pub scale: f64,
}

impl BenchOpts {
    /// Parses `--seed`, `--json`, and `--scale` from `std::env::args`.
    pub fn from_args() -> Self {
        let mut opts = BenchOpts {
            seed: DEFAULT_SEED,
            json: None,
            scale: 1.0,
        };
        let args: Vec<String> = std::env::args().collect();
        let mut i = 1;
        while i < args.len() {
            match args[i].as_str() {
                "--seed" if i + 1 < args.len() => {
                    opts.seed = args[i + 1].parse().unwrap_or(DEFAULT_SEED);
                    i += 2;
                }
                "--json" if i + 1 < args.len() => {
                    opts.json = Some(args[i + 1].clone());
                    i += 2;
                }
                "--scale" if i + 1 < args.len() => {
                    opts.scale = args[i + 1].parse().unwrap_or(1.0);
                    i += 2;
                }
                _ => i += 1,
            }
        }
        opts
    }

    /// Applies the scale factor to a request count.
    pub fn scaled(&self, n: usize) -> usize {
        ((n as f64 * self.scale) as usize).max(10)
    }

    /// Writes rows as JSON if `--json` was given.
    pub fn maybe_write_json<T: Serialize>(&self, rows: &T) {
        if let Some(path) = &self.json {
            let body = llumnix_metrics::to_json(rows);
            if let Err(e) = std::fs::write(path, body) {
                eprintln!("warning: could not write {path}: {e}");
            }
        }
    }
}

/// One experiment arm's flattened results (a row in the JSON output).
#[derive(Debug, Clone, Serialize)]
pub struct ArmResult {
    /// Trace name.
    pub trace: String,
    /// Request rate (req/s).
    pub rate: f64,
    /// Gamma CV (1.0 for Poisson).
    pub cv: f64,
    /// Scheduler label.
    pub scheduler: String,
    /// Latency aggregates.
    pub report: LatencyReport,
    /// Migrations committed.
    pub migrations: u64,
    /// Total preemptions.
    pub preemptions: u64,
    /// Time-weighted average instances (cost).
    pub avg_instances: f64,
    /// Mean fragmentation proportion.
    pub fragmentation_mean: f64,
    /// Wall-clock seconds the simulation took.
    pub sim_wall_secs: f64,
}

/// Runs one scheduler arm over a trace and flattens the results.
pub fn run_arm(
    config: ServingConfig,
    trace: Trace,
    rate: f64,
    cv: f64,
) -> (ArmResult, ServingOutput) {
    let trace_name = trace.name.clone();
    let scheduler = config.scheduler;
    let started = Instant::now();
    let out = run_serving(config, trace);
    let wall = started.elapsed().as_secs_f64();
    let report = LatencyReport::from_records(&out.records);
    (
        ArmResult {
            trace: trace_name,
            rate,
            cv,
            scheduler: scheduler.label().to_string(),
            migrations: out.migration_stats.committed,
            preemptions: report.total_preemptions,
            report,
            avg_instances: out.avg_instances,
            fragmentation_mean: out.fragmentation.mean(),
            sim_wall_secs: wall,
        },
        out,
    )
}

/// Builds one of the paper's named traces (`S-S`, `M-M`, …, `ShareGPT`).
///
/// # Panics
///
/// Panics on unknown names — the binaries only pass presets.
pub fn build_trace(
    name: &str,
    n: usize,
    arrivals: Arrivals,
    high_priority_fraction: f64,
    seed: u64,
) -> Trace {
    presets::by_name(name, n, arrivals)
        .unwrap_or_else(|| panic!("unknown trace preset {name}"))
        .with_high_priority_fraction(high_priority_fraction)
        .generate(&SimRng::new(seed))
}

/// The standard three-scheduler comparison of Figure 11.
pub const FIG11_SCHEDULERS: [SchedulerKind; 3] = [
    SchedulerKind::RoundRobin,
    SchedulerKind::InfaasPlusPlus,
    SchedulerKind::Llumnix,
];

/// Formats a `Summary` as `mean / p99` seconds.
pub fn mean_p99(s: &llumnix_metrics::Summary) -> String {
    format!(
        "{} / {}",
        llumnix_metrics::fmt_secs(s.mean),
        llumnix_metrics::fmt_secs(s.p99)
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use llumnix_model::InstanceSpec;

    #[test]
    fn arm_runs_end_to_end() {
        let trace = build_trace("S-S", 60, Arrivals::poisson(3.0), 0.0, 1);
        let config = ServingConfig::new(SchedulerKind::Llumnix, 2)
            .with_spec(InstanceSpec::tiny_for_tests(4096));
        let (arm, out) = run_arm(config, trace, 3.0, 1.0);
        assert_eq!(arm.scheduler, "llumnix");
        assert_eq!(arm.rate, 3.0);
        assert!(arm.report.e2e.count + out.aborted as usize == 60);
    }

    #[test]
    fn scaled_counts() {
        let opts = BenchOpts {
            seed: 1,
            json: None,
            scale: 0.1,
        };
        assert_eq!(opts.scaled(10_000), 1_000);
        assert_eq!(opts.scaled(50), 10, "floor at 10");
    }
}
