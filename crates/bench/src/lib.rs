//! Shared harness code for the per-figure benchmark binaries.
//!
//! Each `figNN_*` binary regenerates one table or figure from the paper:
//! it builds the paper's workload, runs every scheduler arm through the
//! serving simulation, prints an aligned table mirroring the figure's
//! series, and (with `--json <path>`) dumps machine-readable rows.

#![warn(missing_docs)]
#![forbid(unsafe_code)]
#![deny(rust_2018_idioms)]

use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::Instant;

use llumnix_core::{
    run_serving, FaultPlan, SchedulerKind, ServingConfig, ServingOutput, ServingSim, ShardConfig,
    SimSnapshot,
};
use llumnix_metrics::LatencyReport;
use llumnix_sim::SimRng;
use llumnix_workload::{presets, Arrivals, Trace};
use serde::Serialize;

/// Default experiment seed; every binary accepts `--seed N` to change it.
pub const DEFAULT_SEED: u64 = 20240710;

/// Parsed common CLI options.
#[derive(Debug, Clone)]
pub struct BenchOpts {
    /// Experiment seed.
    pub seed: u64,
    /// Optional JSON output path.
    pub json: Option<String>,
    /// Scale factor on request counts (use < 1.0 for quick runs).
    pub scale: f64,
    /// Worker-thread override (`--threads N`), if given.
    pub threads: Option<usize>,
    /// Canonical output mode (`--canonical`): zero out the wall-clock field
    /// so result files are byte-identical across runs and thread counts.
    pub canonical: bool,
    /// Shard count for the windowed sharded core (`--shards N`), if given.
    /// The windowed schedule is identical at every shard count (including
    /// 1), but deliberately differs from the classic unsharded loop — so
    /// determinism cross-checks compare `--shards 1` against `--shards 4`,
    /// never against a run without the flag.
    pub shards: Option<usize>,
    /// Window-length autotuning for the sharded core (`--no-autotune`
    /// disables it). Stretching is gated so the schedule is byte-identical
    /// either way — CI diffs an autotune-on run against an autotune-off run
    /// to hold that invariant.
    pub autotune: bool,
}

/// Parses the value following a flag, exiting with a clear diagnostic when the
/// value is missing or malformed (a silently substituted default would make an
/// experiment lie about its parameters).
fn parse_flag_value<T: std::str::FromStr>(args: &[String], i: usize, flag: &str) -> T
where
    T::Err: std::fmt::Display,
{
    let Some(raw) = args.get(i + 1) else {
        eprintln!("error: {flag} requires a value");
        std::process::exit(2);
    };
    match raw.parse() {
        Ok(v) => v,
        Err(e) => {
            eprintln!("error: invalid value {raw:?} for {flag}: {e}");
            std::process::exit(2);
        }
    }
}

impl BenchOpts {
    /// Parses `--seed`, `--json`, `--scale`, `--threads`, `--canonical`, and
    /// `--shards` from `std::env::args`.
    ///
    /// Malformed or missing values for these flags abort with exit code 2.
    /// Unrecognized arguments are left alone — individual binaries consume
    /// extra flags of their own (e.g. `fig03`'s `--rate`).
    pub fn from_args() -> Self {
        let mut opts = BenchOpts {
            seed: DEFAULT_SEED,
            json: None,
            scale: 1.0,
            threads: None,
            canonical: false,
            shards: None,
            autotune: true,
        };
        let args: Vec<String> = std::env::args().collect();
        let mut i = 1;
        while i < args.len() {
            match args[i].as_str() {
                "--seed" => {
                    opts.seed = parse_flag_value(&args, i, "--seed");
                    i += 2;
                }
                "--json" => {
                    let Some(path) = args.get(i + 1) else {
                        eprintln!("error: --json requires a path");
                        std::process::exit(2);
                    };
                    opts.json = Some(path.clone());
                    i += 2;
                }
                "--scale" => {
                    let scale: f64 = parse_flag_value(&args, i, "--scale");
                    if !scale.is_finite() || scale <= 0.0 {
                        eprintln!("error: --scale must be a positive number, got {scale}");
                        std::process::exit(2);
                    }
                    opts.scale = scale;
                    i += 2;
                }
                "--threads" => {
                    let threads: usize = parse_flag_value(&args, i, "--threads");
                    if threads == 0 {
                        eprintln!("error: --threads must be at least 1");
                        std::process::exit(2);
                    }
                    opts.threads = Some(threads);
                    set_thread_override(threads);
                    i += 2;
                }
                "--canonical" => {
                    opts.canonical = true;
                    set_canonical_output(true);
                    i += 1;
                }
                "--shards" => {
                    let shards: usize = parse_flag_value(&args, i, "--shards");
                    if shards == 0 {
                        eprintln!("error: --shards must be at least 1");
                        std::process::exit(2);
                    }
                    opts.shards = Some(shards);
                    i += 2;
                }
                "--no-autotune" => {
                    opts.autotune = false;
                    i += 1;
                }
                _ => i += 1,
            }
        }
        opts
    }

    /// Applies the scale factor to a request count.
    pub fn scaled(&self, n: usize) -> usize {
        ((n as f64 * self.scale) as usize).max(10)
    }

    /// Applies `--shards` to a serving configuration: with `--shards N` the
    /// run uses the conservative time-windowed sharded core at `N` shards
    /// (window autotuning on unless `--no-autotune` was given); without it
    /// the classic single-queue loop runs untouched.
    pub fn sharded(&self, config: ServingConfig) -> ServingConfig {
        match self.shards {
            Some(k) => config.with_shards(ShardConfig::new(k).with_autotune(self.autotune)),
            None => config,
        }
    }

    /// Writes rows as JSON if `--json` was given.
    pub fn maybe_write_json<T: Serialize>(&self, rows: &T) {
        if let Some(path) = &self.json {
            let body = llumnix_metrics::to_json(rows);
            if let Err(e) = std::fs::write(path, body) {
                eprintln!("warning: could not write {path}: {e}");
            }
        }
    }
}

/// One experiment arm's flattened results (a row in the JSON output).
#[derive(Debug, Clone, Serialize)]
pub struct ArmResult {
    /// Trace name.
    pub trace: String,
    /// Request rate (req/s).
    pub rate: f64,
    /// Gamma CV (1.0 for Poisson).
    pub cv: f64,
    /// Scheduler label.
    pub scheduler: String,
    /// Latency aggregates.
    pub report: LatencyReport,
    /// Migrations committed.
    pub migrations: u64,
    /// Total preemptions.
    pub preemptions: u64,
    /// Time-weighted average instances (cost).
    pub avg_instances: f64,
    /// Mean fragmentation proportion.
    pub fragmentation_mean: f64,
    /// Wall-clock seconds the simulation took (0.0 under `--canonical`: it
    /// is the one field of this row real time can perturb, and the CI
    /// determinism cross-check diffs result files byte for byte).
    pub sim_wall_secs: f64,
}

// ---- parallel sweep harness ----------------------------------------------

static THREAD_OVERRIDE: AtomicUsize = AtomicUsize::new(0);
static CANONICAL_OUTPUT: AtomicBool = AtomicBool::new(false);

/// Enables canonical output (what `--canonical` sets): [`run_arm`] records
/// `sim_wall_secs = 0.0` instead of measured wall time, making every figure's
/// JSON a pure function of (seed, config) — byte-identical at any `--threads`
/// count.
pub fn set_canonical_output(on: bool) {
    CANONICAL_OUTPUT.store(on, Ordering::SeqCst);
}

/// Whether canonical output mode is on.
pub fn canonical_output() -> bool {
    CANONICAL_OUTPUT.load(Ordering::SeqCst)
}

/// Overrides the worker-thread count for [`parallel_map`] / [`run_arms`]
/// (what `--threads N` sets). Zero restores the environment-driven default.
pub fn set_thread_override(n: usize) {
    THREAD_OVERRIDE.store(n, Ordering::SeqCst);
}

/// Worker threads for the sweep harness: the `--threads` override if set,
/// else `LLUMNIX_THREADS` or `RAYON_NUM_THREADS` from the environment, else
/// the machine's available parallelism.
pub fn num_threads() -> usize {
    let forced = THREAD_OVERRIDE.load(Ordering::SeqCst);
    if forced > 0 {
        return forced;
    }
    for var in ["LLUMNIX_THREADS", "RAYON_NUM_THREADS"] {
        if let Ok(raw) = std::env::var(var) {
            if let Ok(n) = raw.trim().parse::<usize>() {
                if n >= 1 {
                    return n;
                }
            }
        }
    }
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Applies `f` to every item across [`num_threads`] worker threads, returning
/// results in the items' original order.
///
/// Work is handed out dynamically — each worker pulls the next unclaimed item
/// — so unevenly sized arms (a 10k-request Llumnix run next to a tiny
/// round-robin one) still pack the cores. Items run independently, so the
/// output is byte-identical to the serial `items.into_iter().map(f)` as long
/// as `f` itself is deterministic; with one thread the harness *is* that
/// serial loop.
///
/// # Panics
///
/// Propagates a panic from any worker invocation of `f`.
pub fn parallel_map<T, R, F>(items: Vec<T>, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    let n = items.len();
    let threads = num_threads().min(n.max(1));
    if threads <= 1 {
        return items.into_iter().map(f).collect();
    }
    let queue = Mutex::new(items.into_iter().enumerate());
    let queue = &queue;
    let f = &f;
    let per_worker: Vec<Vec<(usize, R)>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                scope.spawn(move || {
                    let mut local = Vec::new();
                    loop {
                        let next = queue.lock().expect("work queue poisoned").next();
                        match next {
                            Some((index, item)) => local.push((index, f(item))),
                            None => break,
                        }
                    }
                    local
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("sweep worker panicked"))
            .collect()
    });
    let mut slots: Vec<Option<R>> = Vec::with_capacity(n);
    slots.resize_with(n, || None);
    for batch in per_worker {
        for (index, result) in batch {
            slots[index] = Some(result);
        }
    }
    slots
        .into_iter()
        .map(|r| r.expect("every index processed exactly once"))
        .collect()
}

/// One independent experiment arm of a sweep: a serving configuration over a
/// trace, plus the rate/CV labels recorded in its [`ArmResult`] row.
pub struct ArmSpec {
    /// Serving configuration under test.
    pub config: ServingConfig,
    /// The workload trace.
    pub trace: Trace,
    /// Request rate label (req/s).
    pub rate: f64,
    /// Arrival-CV label (1.0 for Poisson).
    pub cv: f64,
}

/// Runs every arm through [`run_arm`], fanned out across [`num_threads`]
/// worker threads, and returns results in the arms' given order.
///
/// Arms share nothing: each owns its config and trace, and the simulation is
/// deterministic, so the output (minus [`ArmResult::sim_wall_secs`], which
/// measures real time) is identical whatever the thread count.
pub fn run_arms(arms: Vec<ArmSpec>) -> Vec<(ArmResult, ServingOutput)> {
    parallel_map(arms, |arm| run_arm(arm.config, arm.trace, arm.rate, arm.cv))
}

/// Runs one scheduler arm over a trace and flattens the results.
pub fn run_arm(
    config: ServingConfig,
    trace: Trace,
    rate: f64,
    cv: f64,
) -> (ArmResult, ServingOutput) {
    let trace_name = trace.name.clone();
    let scheduler = config.scheduler;
    let started = Instant::now();
    let out = run_serving(config, trace);
    let wall = if canonical_output() {
        0.0
    } else {
        started.elapsed().as_secs_f64()
    };
    package_arm(out, wall, trace_name, scheduler, rate, cv)
}

/// Flattens a finished run into its [`ArmResult`] row.
fn package_arm(
    out: ServingOutput,
    wall: f64,
    trace_name: String,
    scheduler: SchedulerKind,
    rate: f64,
    cv: f64,
) -> (ArmResult, ServingOutput) {
    let report = LatencyReport::from_records(&out.records);
    (
        ArmResult {
            trace: trace_name,
            rate,
            cv,
            scheduler: scheduler.label().to_string(),
            migrations: out.migration_stats.committed,
            preemptions: report.total_preemptions,
            report,
            avg_instances: out.avg_instances,
            fragmentation_mean: out.fragmentation.mean(),
            sim_wall_secs: wall,
        },
        out,
    )
}

// ---- forked sweeps --------------------------------------------------------

/// One forked arm of a [`ForkGroup`]: the fault plan it activates at the
/// shared fork point ([`FaultPlan::empty`] for the fault-free arm).
///
/// Every planned fault must fire strictly after the group's warmup — build
/// plans with [`llumnix_core::FaultPlanConfig::with_start_offset`] leaving
/// margin over [`ForkGroup::warmup`].
pub struct ForkArm {
    /// Fault plan activated at the fork point.
    pub plan: FaultPlan,
}

/// A group of sweep arms sharing one warmed-up simulation prefix.
///
/// The group runs `config` (which must carry **no** fault plan) over `trace`
/// until `warmup`, snapshots, and then forks every arm from that snapshot —
/// so an `A`-profile and a `B`-profile arm pay for their common fault-free
/// prefix once instead of once each. The fork is exact: each arm's output is
/// byte-identical to a cold run configured with its plan from t = 0
/// (DESIGN.md §13).
pub struct ForkGroup {
    /// Fault-free serving configuration shared by every arm.
    pub config: ServingConfig,
    /// The workload trace shared by every arm.
    pub trace: Trace,
    /// Simulated time to run before snapshotting.
    pub warmup: llumnix_sim::SimTime,
    /// Request rate label (req/s).
    pub rate: f64,
    /// Arrival-CV label (1.0 for Poisson).
    pub cv: f64,
    /// The arms forked from the shared snapshot.
    pub arms: Vec<ForkArm>,
}

/// A unit of forked-sweep work: warm a group up (which then enqueues its
/// forks), or finish one forked arm.
enum ForkTask {
    Warm {
        slot: usize,
        group: Box<ForkGroup>,
    },
    Fork {
        slot: usize,
        sim: Box<ServingSim>,
        labels: ForkLabels,
    },
}

/// The row labels a fork inherits from its group.
#[derive(Clone)]
struct ForkLabels {
    trace_name: String,
    scheduler: SchedulerKind,
    rate: f64,
    cv: f64,
}

/// Warms a group up and turns it into its runnable forks (one resumed,
/// plan-activated sim per arm), tagged with consecutive result slots
/// starting at `slot`.
///
/// The warmed sim itself becomes the *last* arm rather than a third
/// resume: a freshly cloned sim pays a measurable per-event locality tax
/// (its pointer-heavy state reallocates into a heap fragmented by the
/// snapshot churn), so the group's biggest contiguous state is kept for
/// one of the real runs and a singleton group never clones at all. The
/// schedule is identical either way — resume *is* a clone.
fn warm_group(slot: usize, group: ForkGroup) -> Vec<ForkTask> {
    let labels = ForkLabels {
        trace_name: group.trace.name.clone(),
        scheduler: group.config.scheduler,
        rate: group.rate,
        cv: group.cv,
    };
    let mut sim = ServingSim::new(group.config, group.trace);
    sim.run_until(group.warmup);
    let mut arms = group.arms;
    let Some(last) = arms.pop() else {
        return Vec::new();
    };
    let mut tasks = Vec::with_capacity(arms.len() + 1);
    if !arms.is_empty() {
        let snapshot: SimSnapshot = sim.snapshot();
        for (i, arm) in arms.into_iter().enumerate() {
            let mut fork = ServingSim::resume(&snapshot);
            fork.activate_faults(arm.plan);
            tasks.push(ForkTask::Fork {
                slot: slot + i,
                sim: Box::new(fork),
                labels: labels.clone(),
            });
        }
    }
    let slot = slot + tasks.len();
    sim.activate_faults(last.plan);
    tasks.push(ForkTask::Fork {
        slot,
        sim: Box::new(sim),
        labels,
    });
    tasks
}

/// Runs one forked arm to completion (its wall-clock covers only the
/// post-fork run — the warmup is shared).
fn finish_fork(sim: ServingSim, labels: ForkLabels) -> (ArmResult, ServingOutput) {
    let started = Instant::now();
    let out = sim.run();
    let wall = if canonical_output() {
        0.0
    } else {
        started.elapsed().as_secs_f64()
    };
    package_arm(
        out,
        wall,
        labels.trace_name,
        labels.scheduler,
        labels.rate,
        labels.cv,
    )
}

/// Runs every group's warmup once and every arm from its group's snapshot,
/// fanned out across [`num_threads`] worker threads. Results come back
/// flattened in group-then-arm order — the same order [`run_arms`] returns
/// for the equivalent cold arms — and each arm's
/// [`ArmResult::sim_wall_secs`] covers only its post-fork run.
///
/// Warmups and forks share one dynamic work queue: a group's forks become
/// runnable the moment its warmup finishes, so workers never idle behind
/// the slowest warmup (a two-phase barrier would stall the whole fleet on
/// the largest group's prefix and give most of the saved work back).
pub fn run_arms_forked(groups: Vec<ForkGroup>) -> Vec<(ArmResult, ServingOutput)> {
    let mut total_arms = 0usize;
    let mut tasks: VecDeque<ForkTask> = VecDeque::new();
    for group in groups {
        let slot = total_arms;
        total_arms += group.arms.len();
        tasks.push_back(ForkTask::Warm {
            slot,
            group: Box::new(group),
        });
    }
    let threads = num_threads().min(tasks.len().max(1));
    let mut slots: Vec<Option<(ArmResult, ServingOutput)>> = Vec::with_capacity(total_arms);
    slots.resize_with(total_arms, || None);
    if threads <= 1 {
        while let Some(task) = tasks.pop_front() {
            match task {
                ForkTask::Warm { slot, group } => {
                    // Front of the queue, so a group's forks run before the
                    // next group warms up — same order a cold sweep visits.
                    for fork in warm_group(slot, *group).into_iter().rev() {
                        tasks.push_front(fork);
                    }
                }
                ForkTask::Fork { slot, sim, labels } => {
                    slots[slot] = Some(finish_fork(*sim, labels));
                }
            }
        }
    } else {
        let state = Mutex::new((tasks, 0usize)); // (queue, tasks in flight)
        let ready = std::sync::Condvar::new();
        let results = Mutex::new(&mut slots);
        std::thread::scope(|scope| {
            for _ in 0..threads {
                scope.spawn(|| loop {
                    let mut guard = state.lock().expect("fork queue poisoned");
                    let task = loop {
                        if let Some(task) = guard.0.pop_front() {
                            guard.1 += 1;
                            break task;
                        }
                        if guard.1 == 0 {
                            return; // Empty queue, nothing running: done.
                        }
                        // A running warmup may enqueue forks; wait for it.
                        guard = ready.wait(guard).expect("fork queue poisoned");
                    };
                    drop(guard);
                    match task {
                        ForkTask::Warm { slot, group } => {
                            let forks = warm_group(slot, *group);
                            let mut guard = state.lock().expect("fork queue poisoned");
                            guard.0.extend(forks);
                            guard.1 -= 1;
                            ready.notify_all();
                        }
                        ForkTask::Fork { slot, sim, labels } => {
                            let done = finish_fork(*sim, labels);
                            results.lock().expect("fork results poisoned")[slot] = Some(done);
                            let mut guard = state.lock().expect("fork queue poisoned");
                            guard.1 -= 1;
                            ready.notify_all();
                        }
                    }
                });
            }
        });
    }
    slots
        .into_iter()
        .map(|r| r.expect("every fork slot filled exactly once"))
        .collect()
}

/// Builds one of the paper's named traces (`S-S`, `M-M`, …, `ShareGPT`).
///
/// # Panics
///
/// Panics on unknown names — the binaries only pass presets.
pub fn build_trace(
    name: &str,
    n: usize,
    arrivals: Arrivals,
    high_priority_fraction: f64,
    seed: u64,
) -> Trace {
    presets::by_name(name, n, arrivals)
        .unwrap_or_else(|| panic!("unknown trace preset {name}"))
        .with_high_priority_fraction(high_priority_fraction)
        .generate(&SimRng::new(seed))
}

/// The standard three-scheduler comparison of Figure 11.
pub const FIG11_SCHEDULERS: [SchedulerKind; 3] = [
    SchedulerKind::RoundRobin,
    SchedulerKind::InfaasPlusPlus,
    SchedulerKind::Llumnix,
];

/// Formats a `Summary` as `mean / p99` seconds.
pub fn mean_p99(s: &llumnix_metrics::Summary) -> String {
    format!(
        "{} / {}",
        llumnix_metrics::fmt_secs(s.mean),
        llumnix_metrics::fmt_secs(s.p99)
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use llumnix_model::InstanceSpec;

    #[test]
    fn arm_runs_end_to_end() {
        let trace = build_trace("S-S", 60, Arrivals::poisson(3.0), 0.0, 1);
        let config = ServingConfig::new(SchedulerKind::Llumnix, 2)
            .with_spec(InstanceSpec::tiny_for_tests(4096));
        let (arm, out) = run_arm(config, trace, 3.0, 1.0);
        assert_eq!(arm.scheduler, "llumnix");
        assert_eq!(arm.rate, 3.0);
        assert!(arm.report.e2e.count + out.aborted as usize == 60);
    }

    #[test]
    fn scaled_counts() {
        let opts = BenchOpts {
            seed: 1,
            json: None,
            scale: 0.1,
            threads: None,
            canonical: false,
            shards: None,
            autotune: true,
        };
        assert_eq!(opts.scaled(10_000), 1_000);
        assert_eq!(opts.scaled(50), 10, "floor at 10");
    }

    #[test]
    fn forked_sweep_matches_cold_byte_for_byte() {
        use llumnix_core::FaultPlanConfig;
        use llumnix_sim::{SimDuration, SimTime};

        set_canonical_output(true);
        let trace = build_trace("S-S", 150, Arrivals::poisson(5.0), 0.0, 7);
        let base = ServingConfig::new(SchedulerKind::Llumnix, 3)
            .with_spec(InstanceSpec::tiny_for_tests(2048));
        let warmup = SimTime::ZERO + SimDuration::from_secs(8);
        // Fault plans begin after the warmup with margin, so cold runs
        // (plan configured from t = 0) and forks (plan activated at the
        // snapshot) face the same schedule.
        let plan = |rate: f64| {
            let cfg = FaultPlanConfig::none()
                .with_crashes(rate, Some(SimDuration::from_secs(2)))
                .with_horizon(SimDuration::from_secs(600))
                .with_start_offset(SimDuration::from_secs(10));
            FaultPlan::generate(&cfg, &SimRng::new(7))
        };
        let plans = [FaultPlan::empty(), plan(400.0), plan(900.0)];
        let cold = run_arms(
            plans
                .iter()
                .map(|p| ArmSpec {
                    config: base.clone().with_faults(p.clone()),
                    trace: trace.clone(),
                    rate: 5.0,
                    cv: 1.0,
                })
                .collect(),
        );
        let forked = run_arms_forked(vec![ForkGroup {
            config: base,
            trace,
            warmup,
            rate: 5.0,
            cv: 1.0,
            arms: plans.into_iter().map(|plan| ForkArm { plan }).collect(),
        }]);
        assert_eq!(cold.len(), forked.len());
        for ((ca, co), (fa, fo)) in cold.iter().zip(&forked) {
            // The serialized rows are what CI byte-diffs.
            assert_eq!(
                llumnix_metrics::to_json(ca),
                llumnix_metrics::to_json(fa),
                "rows must serialize identically"
            );
            assert_eq!(co.events_processed, fo.events_processed);
            assert_eq!(co.makespan, fo.makespan);
            assert_eq!(co.fault_stats, fo.fault_stats);
        }
        assert!(
            forked[1].1.fault_stats.crashes > 0,
            "fault arms must actually crash"
        );
        set_canonical_output(false);
    }

    #[test]
    fn parallel_map_preserves_order_at_any_width() {
        let items: Vec<u64> = (0..37).collect();
        let expect: Vec<u64> = items.iter().map(|x| x * x).collect();
        for threads in [1, 2, 4, 8] {
            set_thread_override(threads);
            let got = parallel_map(items.clone(), |x| x * x);
            assert_eq!(got, expect, "threads = {threads}");
        }
        set_thread_override(0);
    }
}
