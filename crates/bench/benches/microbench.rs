//! Criterion micro-benchmarks for the hot paths of the simulator and the
//! Llumnix policy logic: the event queue, the block manager, virtual-usage /
//! freeness computation, the cost model, trace generation, and a full
//! two-instance live migration.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use llumnix_core::{engine_freeness, HeadroomConfig};
use llumnix_engine::{
    BlockManager, EngineConfig, InstanceEngine, InstanceId, PriorityPair, RequestId, RequestMeta,
};
use llumnix_migration::{MigrationConfig, MigrationCoordinator, StageOutcome, StartOutcome};
use llumnix_model::{CalibratedCostModel, CostModel, DecodeBatch, InstanceSpec};
use llumnix_sim::{EventQueue, SimRng, SimTime};
use llumnix_workload::{presets, Arrivals};

fn bench_event_queue(c: &mut Criterion) {
    c.bench_function("event_queue_push_pop_1k", |b| {
        b.iter(|| {
            let mut q = EventQueue::new();
            for i in 0..1_000u64 {
                q.push(SimTime::from_micros((i * 7919) % 10_000), i);
            }
            let mut sum = 0u64;
            while let Some((_, v)) = q.pop() {
                sum = sum.wrapping_add(v);
            }
            black_box(sum)
        })
    });
}

fn bench_block_manager(c: &mut Criterion) {
    c.bench_function("block_manager_churn", |b| {
        b.iter(|| {
            let mut bm = BlockManager::new(851);
            for round in 0..50u64 {
                for i in 0..10u64 {
                    let _ = bm.allocate(RequestId(round * 10 + i), 16);
                }
                for i in 0..10u64 {
                    let _ = bm.grow(RequestId(round * 10 + i), 4);
                    let _ = bm.release(RequestId(round * 10 + i));
                }
            }
            black_box(bm.free_blocks())
        })
    });
}

fn bench_freeness(c: &mut Criterion) {
    // A loaded instance: 32 running requests plus a queue.
    let mut engine = InstanceEngine::new(
        InstanceId(0),
        InstanceSpec::llama_7b_a10(),
        EngineConfig::default(),
    );
    let mut now = SimTime::ZERO;
    for i in 0..32u64 {
        engine.add_request(
            RequestMeta {
                id: RequestId(i),
                input_len: 256,
                output_len: 512,
                priority: PriorityPair::NORMAL,
                arrival: now,
            },
            now,
        );
    }
    while let Some(plan) = engine.poll_step(now) {
        now = plan.finish_at();
        engine.complete_step(now);
        if engine.batch_size() == 32 {
            break;
        }
    }
    let headroom = HeadroomConfig::paper_default();
    c.bench_function("freeness_32_requests", |b| {
        b.iter(|| {
            black_box(engine_freeness(
                &engine,
                false,
                SimTime::from_secs(60),
                &headroom,
            ))
        })
    });
}

fn bench_cost_model(c: &mut Criterion) {
    let m = CalibratedCostModel::llama_7b_a10();
    c.bench_function("decode_step_cost", |b| {
        b.iter(|| {
            black_box(m.decode_step(DecodeBatch {
                num_seqs: black_box(32),
                total_tokens: black_box(8_192),
            }))
        })
    });
}

fn bench_trace_generation(c: &mut Criterion) {
    c.bench_function("generate_mm_trace_1k", |b| {
        let spec = presets::by_name("M-M", 1_000, Arrivals::poisson(8.0)).expect("preset");
        b.iter(|| black_box(spec.generate(&SimRng::new(7))))
    });
}

fn bench_migration_roundtrip(c: &mut Criterion) {
    c.bench_function("live_migration_roundtrip", |b| {
        b.iter(|| {
            let spec = InstanceSpec::llama_7b_a10();
            let mut src = InstanceEngine::new(InstanceId(0), spec.clone(), EngineConfig::default());
            let mut dst = InstanceEngine::new(InstanceId(1), spec, EngineConfig::default());
            src.add_request(
                RequestMeta {
                    id: RequestId(1),
                    input_len: 2_048,
                    output_len: 512,
                    priority: PriorityPair::NORMAL,
                    arrival: SimTime::ZERO,
                },
                SimTime::ZERO,
            );
            let p = src.poll_step(SimTime::ZERO).expect("prefill");
            let mut now = p.finish_at();
            src.complete_step(now);
            let mut coord = MigrationCoordinator::new(MigrationConfig::default());
            let StartOutcome::Started { id, stage_done_at } =
                coord.start(RequestId(1), &mut src, &mut dst, now)
            else {
                unreachable!("refused")
            };
            while now < stage_done_at {
                let plan = src.poll_step(now).expect("decode");
                now = plan.finish_at();
                src.complete_step(now);
            }
            let commit_at = match coord
                .on_stage_done(id, &mut src, &mut dst, stage_done_at)
                .expect("active")
            {
                StageOutcome::FinalCopy { commit_at } => commit_at,
                StageOutcome::DrainRequested => {
                    src.complete_step(now);
                    coord
                        .on_drained(RequestId(1), &mut src, now)
                        .expect("drain")
                        .1
                }
                other => unreachable!("{other:?}"),
            };
            black_box(coord.on_commit(id, &mut src, &mut dst, commit_at))
        })
    });
}

criterion_group!(
    benches,
    bench_event_queue,
    bench_block_manager,
    bench_freeness,
    bench_cost_model,
    bench_trace_generation,
    bench_migration_roundtrip,
);
criterion_main!(benches);
