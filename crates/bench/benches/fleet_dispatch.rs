//! Dispatch-path microbenchmark: full-fleet rescan vs incremental index.
//!
//! Per dispatch decision the global scheduler used to rebuild a
//! `Vec<LoadReport>` over the whole fleet and scan it for the freeness
//! argmax; the incremental path refreshes only the instances whose engines
//! changed since the last decision and reads the argmax off an ordered
//! index. Between decisions a handful of instances change (a request lands
//! or finishes somewhere), so both paths see the same perturbation stream:
//! `d` instances dirtied per decision, alternating request adds and aborts
//! to keep fleet state bounded.
//!
//! Run with `cargo bench --bench fleet_dispatch`. The numbers land in
//! `BENCH_fleet_dispatch.json` at the repo root (override with
//! `--json <path>`, shrink rounds with `--scale`); the committed copy is
//! the baseline `scripts/bench_check` compares against.

use std::time::Instant;

use llumnix_bench::BenchOpts;
use llumnix_core::policy::LoadReport;
use llumnix_core::{
    DispatchIndex, Dispatcher, HeadroomConfig, IndexPolicy, InstanceStore, Llumlet, SchedulerKind,
};
use llumnix_engine::{
    EngineConfig, InstanceEngine, InstanceId, PriorityPair, RequestId, RequestMeta,
};
use llumnix_model::InstanceSpec;
use llumnix_sim::SimTime;
use serde::Serialize;

/// Instances dirtied per dispatch decision.
const PERTURB: usize = 4;

#[derive(Serialize)]
struct Arm {
    instances: usize,
    rounds: usize,
    rescan_ns_per_decision: f64,
    indexed_ns_per_decision: f64,
    speedup: f64,
}

#[derive(Serialize)]
struct Baseline {
    benchmark: &'static str,
    perturbed_per_decision: usize,
    arms: Vec<Arm>,
}

fn build_fleet(n: usize) -> InstanceStore {
    let mut store = InstanceStore::new();
    for i in 0..n {
        let mut l = Llumlet::new(
            InstanceEngine::new(
                InstanceId(i as u32),
                InstanceSpec::tiny_for_tests(16_384),
                EngineConfig::default(),
            ),
            SimTime::ZERO,
            None,
        );
        // Stagger the initial load so the argmax moves around.
        for j in 0..(i % 7) {
            l.engine.add_request(
                meta((i * 16 + j) as u64, 64 + (j as u32) * 32),
                SimTime::ZERO,
            );
        }
        store.insert(InstanceId(i as u32), l);
    }
    store
}

fn meta(id: u64, input: u32) -> RequestMeta {
    RequestMeta {
        id: RequestId(id),
        input_len: input,
        output_len: 64,
        priority: PriorityPair::NORMAL,
        arrival: SimTime::ZERO,
    }
}

/// Dirties `PERTURB` instances, walking the fleet so every instance keeps
/// churning: even rounds add one request each, the following odd round
/// aborts exactly those requests (same instances), keeping state bounded.
fn perturb(store: &mut InstanceStore, n: usize, round: usize) {
    let adding = round % 2 == 0;
    let base = if adding { round } else { round - 1 } * PERTURB;
    for k in 0..PERTURB {
        let slot = base + k;
        let l = store
            .get_mut(InstanceId((slot % n) as u32))
            .expect("fleet instance");
        if adding {
            let input = 64 + (round % 5) as u32 * 48;
            l.engine
                .add_request(meta((1_000_000 + slot) as u64, input), SimTime::ZERO);
        } else {
            let aborted = l.engine.abort_request(RequestId((1_000_000 + slot) as u64));
            debug_assert!(
                aborted.is_some(),
                "abort must hit what the even round added"
            );
        }
    }
}

/// The pre-index dispatch path: rebuild every report, scan for the argmax.
fn run_rescan(n: usize, rounds: usize, headroom: &HeadroomConfig) -> (f64, u64) {
    let mut store = build_fleet(n);
    let mut dispatcher = Dispatcher::new();
    let mut sink = 0u64;
    let started = Instant::now();
    for round in 0..rounds {
        perturb(&mut store, n, round);
        let reports: Vec<LoadReport> = store
            .iter()
            .map(|(_, l)| l.report(SimTime::ZERO, headroom))
            .collect();
        if let Some(id) = dispatcher.dispatch_for(SchedulerKind::Llumnix, &reports, false) {
            sink = sink.wrapping_add(u64::from(id.0));
        }
    }
    (started.elapsed().as_secs_f64(), sink)
}

/// The indexed path: refresh only dirtied instances, read the argmax.
fn run_indexed(n: usize, rounds: usize, headroom: &HeadroomConfig) -> (f64, u64) {
    let mut store = build_fleet(n);
    // The trees a Llumnix serving run actually maintains for this fleet.
    let mut index = DispatchIndex::new(IndexPolicy::for_run(SchedulerKind::Llumnix, false));
    let mut dispatcher = Dispatcher::new();
    let mut dirty = Vec::new();
    let mut sink = 0u64;
    let started = Instant::now();
    for round in 0..rounds {
        perturb(&mut store, n, round);
        store.take_dirty(&mut dirty);
        for &id in &dirty {
            let report = store.get(id).expect("live").report(SimTime::ZERO, headroom);
            index.update(&report);
        }
        index.sync_order(store.order());
        if let Some(id) = dispatcher.dispatch_indexed(SchedulerKind::Llumnix, &index, false) {
            sink = sink.wrapping_add(u64::from(id.0));
        }
    }
    (started.elapsed().as_secs_f64(), sink)
}

fn main() {
    let opts = BenchOpts::from_args();
    let rounds = opts.scaled(200_000);
    let headroom = HeadroomConfig::paper_default();
    let mut arms = Vec::new();
    for n in [64usize, 256, 1024] {
        // Warm-up at a tenth of the rounds absorbs one-time costs.
        let w = (rounds / 10).max(10);
        run_rescan(n, w, &headroom);
        run_indexed(n, w, &headroom);

        let (rescan_secs, sink_a) = run_rescan(n, rounds, &headroom);
        let (indexed_secs, sink_b) = run_indexed(n, rounds, &headroom);
        assert_eq!(sink_a, sink_b, "paths diverged at fleet size {n}");

        let rescan_ns = rescan_secs * 1e9 / rounds as f64;
        let indexed_ns = indexed_secs * 1e9 / rounds as f64;
        println!(
            "fleet_dispatch: n={n:5} rescan {rescan_ns:9.1} ns/decision, \
             indexed {indexed_ns:7.1} ns/decision, speedup {:.2}x",
            rescan_ns / indexed_ns
        );
        arms.push(Arm {
            instances: n,
            rounds,
            rescan_ns_per_decision: rescan_ns,
            indexed_ns_per_decision: indexed_ns,
            speedup: rescan_ns / indexed_ns,
        });
    }

    let baseline = Baseline {
        benchmark: "fleet_dispatch",
        perturbed_per_decision: PERTURB,
        arms,
    };
    let path = opts.json.clone().unwrap_or_else(|| {
        format!(
            "{}/../../BENCH_fleet_dispatch.json",
            env!("CARGO_MANIFEST_DIR")
        )
    });
    let body = llumnix_metrics::to_json(&baseline);
    match std::fs::write(&path, body) {
        Ok(()) => println!("baseline written to {path}"),
        Err(e) => eprintln!("warning: could not write {path}: {e}"),
    }
}
