//! Criterion benchmarks of full serving simulations — one per scheduler —
//! so regressions in the end-to-end event loop show up in `cargo bench`.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use llumnix_core::{run_serving, SchedulerKind, ServingConfig};
use llumnix_sim::SimRng;
use llumnix_workload::{presets, Arrivals, Trace};

fn small_trace() -> Trace {
    presets::by_name("M-M", 500, Arrivals::poisson(8.0))
        .expect("preset")
        .generate(&SimRng::new(42))
}

fn bench_serving(c: &mut Criterion) {
    let trace = small_trace();
    let mut group = c.benchmark_group("serving_500req_16inst");
    group.sample_size(10);
    for kind in [
        SchedulerKind::RoundRobin,
        SchedulerKind::InfaasPlusPlus,
        SchedulerKind::LlumnixBase,
        SchedulerKind::Llumnix,
        SchedulerKind::Centralized,
    ] {
        group.bench_with_input(BenchmarkId::from_parameter(kind.label()), &kind, |b, &k| {
            b.iter(|| {
                let out = run_serving(ServingConfig::new(k, 16), trace.clone());
                black_box(out.records.len())
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_serving);
criterion_main!(benches);
