//! End-to-end simulator throughput: one 16-instance, 10k-request Llumnix
//! run, reported as simulated events per wall-clock second.
//!
//! Run with `cargo bench --bench sim_throughput`. The numbers land in
//! `BENCH_sim_throughput.json` at the repo root (override with
//! `--json <path>`, shrink with `--scale`); the committed copy is the
//! baseline to compare hot-path changes against.

use std::time::Instant;

use llumnix_bench::{build_trace, BenchOpts};
use llumnix_core::{run_serving, SchedulerKind, ServingConfig};
use llumnix_workload::Arrivals;
use serde::Serialize;

#[derive(Serialize)]
struct Baseline {
    benchmark: &'static str,
    scheduler: &'static str,
    trace: &'static str,
    requests: usize,
    instances: u32,
    events_processed: u64,
    simulated_secs: f64,
    wall_secs: f64,
    events_per_wall_sec: f64,
    simulated_secs_per_wall_sec: f64,
}

fn main() {
    let opts = BenchOpts::from_args();
    let requests = opts.scaled(10_000);
    let instances: u32 = 16;
    let trace = build_trace("M-M", requests, Arrivals::poisson(10.0), 0.0, opts.seed);

    // Warm-up pass so one-time costs (allocator growth, page faults) don't
    // pollute the measured run.
    let warmup = build_trace(
        "M-M",
        (requests / 10).max(10),
        Arrivals::poisson(10.0),
        0.0,
        opts.seed,
    );
    run_serving(
        ServingConfig::new(SchedulerKind::Llumnix, instances),
        warmup,
    );

    let started = Instant::now();
    let out = run_serving(ServingConfig::new(SchedulerKind::Llumnix, instances), trace);
    let wall = started.elapsed().as_secs_f64().max(1e-9);

    let simulated = out.makespan.as_secs_f64();
    let baseline = Baseline {
        benchmark: "sim_throughput",
        scheduler: "llumnix",
        trace: "M-M @ 10 req/s",
        requests,
        instances,
        events_processed: out.events_processed,
        simulated_secs: simulated,
        wall_secs: wall,
        events_per_wall_sec: out.events_processed as f64 / wall,
        simulated_secs_per_wall_sec: simulated / wall,
    };
    println!(
        "sim_throughput: {} events in {:.2}s wall -> {:.0} events/s \
         ({:.0}s simulated, {:.0}x real time)",
        baseline.events_processed,
        baseline.wall_secs,
        baseline.events_per_wall_sec,
        baseline.simulated_secs,
        baseline.simulated_secs_per_wall_sec,
    );

    let path = opts.json.clone().unwrap_or_else(|| {
        format!(
            "{}/../../BENCH_sim_throughput.json",
            env!("CARGO_MANIFEST_DIR")
        )
    });
    let body = llumnix_metrics::to_json(&baseline);
    match std::fs::write(&path, body) {
        Ok(()) => println!("baseline written to {path}"),
        Err(e) => eprintln!("warning: could not write {path}: {e}"),
    }
}
