//! Event-queue microbenchmark: per-event heap scheduling vs the coalesced
//! calendar tier for step-completion events.
//!
//! In a large fleet the event loop is dominated by `StepDone` events, and
//! engines stepping in lockstep finish on the same microsecond: with 1024
//! instances a handful of distinct finish times carry a thousand events
//! each. The plain path pays a `BinaryHeap` push and pop (O(log n)) per
//! event; the calendar tier batches same-time events into one bucket, so
//! each costs an O(1) `VecDeque` append and pop off the front bucket.
//!
//! The workload models that lockstep shape directly: per epoch every one of
//! `n` instances finishes a step at one of 8 cohort times (rotating cohort
//! membership so the stream isn't trivially sorted per instance), the queue
//! absorbs the epoch and drains it in time order. Both paths see the exact
//! same schedule and must pop it in the exact same order — the checksum
//! asserts that, and in debug builds the queue's shadow heap re-checks every
//! pop against the unbatched schedule.
//!
//! Run with `cargo bench --bench event_volume`. The numbers land in
//! `BENCH_event_volume.json` at the repo root (override with `--json`,
//! shrink epochs with `--scale`); the committed copy is the baseline
//! `scripts/bench_check` compares against.

use std::time::Instant;

use llumnix_bench::BenchOpts;
use llumnix_sim::{EventQueue, SimTime};
use serde::Serialize;

/// Distinct step-finish times per epoch: engines cluster into a few lockstep
/// cohorts, not one per instance.
const COHORTS: usize = 8;
/// Epoch length and cohort spacing, in microseconds.
const EPOCH_US: u64 = 40_000;
const COHORT_US: u64 = 500;

#[derive(Serialize)]
struct Arm {
    instances: usize,
    epochs: usize,
    /// Events pushed and popped — deterministic: `instances * epochs`.
    events: u64,
    /// Calendar buckets the coalesced path created — deterministic:
    /// `epochs * 8` cohorts.
    step_buckets: u64,
    heap_ns_per_event: f64,
    coalesced_ns_per_event: f64,
    speedup: f64,
}

#[derive(Serialize)]
struct Baseline {
    benchmark: &'static str,
    cohorts: usize,
    arms: Vec<Arm>,
}

/// Finish time of instance `i` in epoch `e`: cohort membership rotates each
/// epoch so pushes are not pre-sorted by instance id.
fn finish_at(e: usize, i: usize) -> SimTime {
    let cohort = (i + e) % COHORTS;
    SimTime::from_micros(e as u64 * EPOCH_US + cohort as u64 * COHORT_US)
}

/// Folds a popped `(time, id)` into the order-sensitive checksum.
fn fold(sink: u64, at: SimTime, id: u32) -> u64 {
    sink.wrapping_mul(0x9e37_79b9_7f4a_7c15)
        .wrapping_add(at.as_micros() ^ u64::from(id))
}

/// Per-event heap path: every step completion is its own heap entry.
fn run_heap(n: usize, epochs: usize) -> (f64, u64) {
    let mut queue: EventQueue<u32> = EventQueue::new();
    let mut sink = 0u64;
    let started = Instant::now();
    for e in 0..epochs {
        for i in 0..n {
            queue.push(finish_at(e, i), i as u32);
        }
        while let Some((at, id)) = queue.pop() {
            sink = fold(sink, at, id);
        }
    }
    (started.elapsed().as_secs_f64(), sink)
}

/// Coalesced path: step completions go through the calendar tier.
fn run_coalesced(n: usize, epochs: usize) -> (f64, u64, u64) {
    let mut queue: EventQueue<u32> = EventQueue::new();
    let mut sink = 0u64;
    let started = Instant::now();
    for e in 0..epochs {
        for i in 0..n {
            queue.push_coalesced(finish_at(e, i), i as u32);
        }
        while let Some((at, id)) = queue.pop() {
            sink = fold(sink, at, id);
        }
    }
    let secs = started.elapsed().as_secs_f64();
    (secs, sink, queue.coalesced_buckets())
}

fn main() {
    let opts = BenchOpts::from_args();
    let epochs = opts.scaled(1_000);
    let mut arms = Vec::new();
    for n in [64usize, 256, 512, 1024] {
        // Warm-up at a tenth of the epochs absorbs one-time costs.
        let w = (epochs / 10).max(10);
        run_heap(n, w);
        run_coalesced(n, w);

        let (heap_secs, sink_a) = run_heap(n, epochs);
        let (coal_secs, sink_b, buckets) = run_coalesced(n, epochs);
        assert_eq!(sink_a, sink_b, "pop order diverged at fleet size {n}");

        let events = (n * epochs) as u64;
        let heap_ns = heap_secs * 1e9 / events as f64;
        let coal_ns = coal_secs * 1e9 / events as f64;
        println!(
            "event_volume: n={n:5} heap {heap_ns:6.1} ns/event, \
             coalesced {coal_ns:6.1} ns/event, speedup {:.2}x",
            heap_ns / coal_ns
        );
        arms.push(Arm {
            instances: n,
            epochs,
            events,
            step_buckets: buckets,
            heap_ns_per_event: heap_ns,
            coalesced_ns_per_event: coal_ns,
            speedup: heap_ns / coal_ns,
        });
    }

    let baseline = Baseline {
        benchmark: "event_volume",
        cohorts: COHORTS,
        arms,
    };
    let path = opts.json.clone().unwrap_or_else(|| {
        format!(
            "{}/../../BENCH_event_volume.json",
            env!("CARGO_MANIFEST_DIR")
        )
    });
    let body = llumnix_metrics::to_json(&baseline);
    match std::fs::write(&path, body) {
        Ok(()) => println!("baseline written to {path}"),
        Err(e) => eprintln!("warning: could not write {path}: {e}"),
    }
}
