//! Sharded windowed-core scalability: the Figure 16 1024-instance Llumnix
//! arm at 1, 2, 4, 8 and 16 shards, plus a 4096-instance arm at 1, 8 and
//! 16 shards.
//!
//! Run with `cargo bench --bench sharded_sim`. The numbers land in
//! `BENCH_sharded_sim.json` at the repo root (override with `--json <path>`,
//! shrink with `--scale`); the committed copy is the baseline
//! `scripts/bench_check` compares against.
//!
//! Two speedup notions are reported, and it matters which is which:
//!
//! * `speedup` — `events_processed / critical_path_events`, the *parallel
//!   work bound*: how much faster the run completes with one core per shard,
//!   assuming free barriers. It is a pure function of the schedule (per
//!   window, only the busiest shard is on the serial path), so it is
//!   byte-reproducible on any machine and gated exactly by `bench_check`.
//!   A partitioning change that unbalances the shards shows up here.
//! * `measured_speedup` — wall-clock events/sec relative to the single-shard
//!   arm *on the machine running the bench*. On a single-core host the pool
//!   never spawns and this hovers at ~1× (the windowed drains just run
//!   serially); it is recorded for humans, not gated.
//!
//! The bench also asserts the contract the speedups rest on: every shard
//! count produces the identical schedule (same records, makespan and event
//! count), so the parallelism is free of result drift by construction.

use std::time::Instant;

use llumnix_bench::BenchOpts;
use llumnix_core::{run_serving, SchedulerKind, ServingConfig, ShardConfig};
use llumnix_sim::SimRng;
use llumnix_workload::{Arrivals, FixedLength, LengthDist, TraceSpec};
use serde::Serialize;

#[derive(Serialize)]
struct Arm {
    instances: u32,
    shards: usize,
    requests: usize,
    events_processed: u64,
    critical_path_events: u64,
    simulated_secs: f64,
    wall_secs: f64,
    events_per_wall_sec: f64,
    /// Deterministic parallel work bound (see module docs). Gated.
    speedup: f64,
    /// Wall-clock ratio vs the single-shard arm on this machine. Not gated.
    measured_speedup: f64,
    /// Conservative windows run (autotuning merges quiet ones).
    windows: u64,
    /// Worst window's busiest-shard ratio (1.0 = balanced, K = one shard
    /// did all the work). Explains speedup shortfalls: high max points at
    /// partition skew.
    imbalance_max: f64,
    /// Event-weighted mean busiest-shard ratio across windows.
    imbalance_mean: f64,
}

#[derive(Serialize)]
struct Baseline {
    benchmark: &'static str,
    scheduler: &'static str,
    trace: &'static str,
    cores: usize,
    arms: Vec<Arm>,
}

fn fig16_trace(instances: usize, requests: usize, rate: f64, seed: u64) -> llumnix_workload::Trace {
    TraceSpec::new(
        format!("{instances}x64"),
        requests,
        Arrivals::poisson(rate),
        LengthDist::Fixed(FixedLength(64)),
        LengthDist::Fixed(FixedLength(64)),
    )
    .generate(&SimRng::new(seed))
}

fn run_arm(instances: u32, shards: usize, requests: usize, rate: f64, seed: u64) -> Arm {
    let trace = fig16_trace(instances as usize, requests, rate, seed);
    let config =
        ServingConfig::new(SchedulerKind::Llumnix, instances).with_shards(ShardConfig::new(shards));
    let started = Instant::now();
    let out = run_serving(config, trace);
    let wall = started.elapsed().as_secs_f64().max(1e-9);
    assert_eq!(
        out.records.len() as u64 + out.aborted,
        requests as u64,
        "{instances}x{shards}: requests leaked"
    );
    Arm {
        instances,
        shards,
        requests,
        events_processed: out.events_processed,
        critical_path_events: out.critical_path_events,
        simulated_secs: out.makespan.as_secs_f64(),
        wall_secs: wall,
        events_per_wall_sec: out.events_processed as f64 / wall,
        speedup: out.events_processed as f64 / out.critical_path_events.max(1) as f64,
        measured_speedup: 0.0, // Filled in once the single-shard arm exists.
        windows: out.window_stats.windows,
        imbalance_max: out.window_stats.imbalance_max(),
        imbalance_mean: out.window_stats.imbalance_mean(),
    }
}

fn main() {
    let opts = BenchOpts::from_args();
    // Two fleet groups, each swept over shard counts against its own
    // single-shard reference: the fig16 peak operating point (1024
    // instances at the per-instance peak rate of 8.6 req/s, 32 requests
    // per instance), and the headline large fleet (4096 instances; 4
    // requests per instance keeps it inside the nightly budget).
    let groups: [(u32, &[usize], usize, f64); 2] = [
        (1_024, &[1, 2, 4, 8, 16], opts.scaled(32_768), 8_800.0),
        (4_096, &[1, 8, 16], opts.scaled(16_384), 35_200.0),
    ];

    // Warm-up pass so one-time costs don't pollute the first measured arm.
    run_arm(64, 2, opts.scaled(2_048), 550.0, opts.seed);

    let mut arms: Vec<Arm> = Vec::new();
    for (instances, shard_counts, requests, rate) in groups {
        let mut group: Vec<Arm> = shard_counts
            .iter()
            .map(|&k| run_arm(instances, k, requests, rate, opts.seed))
            .collect();
        // The byte-identical-schedule contract across shard counts,
        // asserted on the measured runs themselves.
        for pair in group.windows(2) {
            assert_eq!(
                pair[0].events_processed, pair[1].events_processed,
                "{instances}: schedule drifted between {} and {} shards",
                pair[0].shards, pair[1].shards
            );
            assert_eq!(
                pair[0].simulated_secs, pair[1].simulated_secs,
                "{instances}: makespan drifted between {} and {} shards",
                pair[0].shards, pair[1].shards
            );
        }
        let single_rate = group[0].events_per_wall_sec;
        for arm in &mut group {
            arm.measured_speedup = arm.events_per_wall_sec / single_rate;
        }
        arms.extend(group);
    }

    let baseline = Baseline {
        benchmark: "sharded_sim",
        scheduler: "llumnix",
        trace: "fig16 64x64 tokens @ peak rate",
        cores: std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get),
        arms,
    };
    for arm in &baseline.arms {
        println!(
            "sharded_sim: {} instances x {} shards: {} events, critical path {} \
             -> {:.2}x work bound ({:.2}s wall, {:.0} events/s, {:.2}x measured; \
             {} windows, imbalance max {:.2} mean {:.2})",
            arm.instances,
            arm.shards,
            arm.events_processed,
            arm.critical_path_events,
            arm.speedup,
            arm.wall_secs,
            arm.events_per_wall_sec,
            arm.measured_speedup,
            arm.windows,
            arm.imbalance_max,
            arm.imbalance_mean,
        );
    }

    let path = opts.json.clone().unwrap_or_else(|| {
        format!(
            "{}/../../BENCH_sharded_sim.json",
            env!("CARGO_MANIFEST_DIR")
        )
    });
    let body = llumnix_metrics::to_json(&baseline);
    match std::fs::write(&path, body) {
        Ok(()) => println!("baseline written to {path}"),
        Err(e) => eprintln!("warning: could not write {path}: {e}"),
    }
}
