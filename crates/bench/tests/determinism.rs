//! The parallel sweep harness must be a pure reordering of work: running the
//! same arms serially and across worker threads yields byte-identical
//! results (minus wall-clock timing, which measures real time by design).

use llumnix_bench::{
    build_trace, run_arm, run_arms, set_thread_override, ArmResult, ArmSpec, BenchOpts,
    DEFAULT_SEED,
};
use llumnix_core::{SchedulerKind, ServingConfig};
use llumnix_model::InstanceSpec;
use llumnix_workload::Arrivals;

fn arm_specs() -> Vec<ArmSpec> {
    let opts = BenchOpts {
        seed: DEFAULT_SEED,
        json: None,
        scale: 1.0,
        threads: None,
        canonical: false,
        shards: None,
        autotune: true,
    };
    let mut arms = Vec::new();
    for (trace, rate) in [("S-S", 4.0), ("M-M", 2.0), ("L-L", 1.5)] {
        for kind in [
            SchedulerKind::RoundRobin,
            SchedulerKind::InfaasPlusPlus,
            SchedulerKind::Llumnix,
        ] {
            arms.push(ArmSpec {
                config: ServingConfig::new(kind, 4).with_spec(InstanceSpec::tiny_for_tests(4096)),
                trace: build_trace(trace, 80, Arrivals::poisson(rate), 0.1, opts.seed),
                rate,
                cv: 1.0,
            });
        }
    }
    arms
}

/// Serializes the results with the real-time field zeroed, so byte equality
/// means simulation equality.
fn canonical_json(results: &[ArmResult]) -> String {
    let mut rows = results.to_vec();
    for row in &mut rows {
        row.sim_wall_secs = 0.0;
    }
    llumnix_metrics::to_json(&rows)
}

#[test]
fn parallel_sweep_matches_serial_byte_for_byte() {
    let serial: Vec<ArmResult> = arm_specs()
        .into_iter()
        .map(|arm| run_arm(arm.config, arm.trace, arm.rate, arm.cv).0)
        .collect();
    let serial_json = canonical_json(&serial);

    for threads in [1, 2, 4, 7] {
        set_thread_override(threads);
        let parallel: Vec<ArmResult> = run_arms(arm_specs())
            .into_iter()
            .map(|(arm, _)| arm)
            .collect();
        assert_eq!(
            canonical_json(&parallel),
            serial_json,
            "run_arms diverged from the serial sweep at {threads} threads"
        );
    }
    set_thread_override(0);
}
