//! Calibrated performance, memory, and transfer models for llumnix-rs.
//!
//! With no GPUs available, the reproduction replaces measured step latencies
//! with analytical models — exactly the substitution the paper itself makes
//! in its §6.6 scalability study. This crate holds those models:
//!
//! * [`ModelSpec`] / [`GpuSpec`] — published architectural constants;
//! * [`BlockGeometry`] — paged KV-cache geometry (vLLM-style blocks);
//! * [`CostModel`] / [`CalibratedCostModel`] — decode/prefill step latencies
//!   calibrated to the paper's Figure 4 envelope;
//! * [`TransferModel`] — Gloo-over-VM-network KV copy costs, with and without
//!   the paper's block fusion (§5);
//! * [`InstanceSpec`] — the bundle describing one serving instance type.

#![warn(missing_docs)]
#![forbid(unsafe_code)]
#![deny(rust_2018_idioms)]

mod cost;
mod instance;
mod memory;
mod specs;
mod transfer;

pub use cost::{
    CalibratedCostModel, CostModel, DecodeBatch, DecodeCostMemo, PrefillBatch,
    DECODE_MEMO_BUCKET_TOKENS,
};
pub use instance::InstanceSpec;
pub use memory::{presets, BlockGeometry};
pub use specs::{GpuSpec, ModelSpec};
pub use transfer::{TransferMode, TransferModel};
