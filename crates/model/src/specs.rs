//! Architectural constants for the served models and GPUs.
//!
//! The numbers here are the published LLaMA architecture parameters and the
//! NVIDIA A10 datasheet values the paper's testbed uses (4 VMs × 4 A10).

use serde::{Deserialize, Serialize};

/// Architectural description of a served LLM.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ModelSpec {
    /// Human-readable name, e.g. `"LLaMA-7B"`.
    pub name: String,
    /// Number of transformer layers.
    pub layers: u32,
    /// Hidden dimension.
    pub hidden: u32,
    /// Total parameter count.
    pub params: u64,
    /// Bytes per parameter / activation element (2 for fp16).
    pub dtype_bytes: u32,
    /// Number of GPUs the model is sharded over (tensor parallelism).
    pub tensor_parallel: u32,
}

impl ModelSpec {
    /// LLaMA-7B served on a single GPU (paper's main model).
    pub fn llama_7b() -> Self {
        ModelSpec {
            name: "LLaMA-7B".to_string(),
            layers: 32,
            hidden: 4096,
            params: 6_738_000_000,
            dtype_bytes: 2,
            tensor_parallel: 1,
        }
    }

    /// LLaMA-13B served on two GPUs.
    pub fn llama_13b() -> Self {
        ModelSpec {
            name: "LLaMA-13B".to_string(),
            layers: 40,
            hidden: 5120,
            params: 13_016_000_000,
            dtype_bytes: 2,
            tensor_parallel: 2,
        }
    }

    /// LLaMA-30B served on 4 GPUs of one machine via tensor parallelism
    /// (paper §6.1).
    pub fn llama_30b() -> Self {
        ModelSpec {
            name: "LLaMA-30B".to_string(),
            layers: 60,
            hidden: 6656,
            params: 32_529_000_000,
            dtype_bytes: 2,
            tensor_parallel: 4,
        }
    }

    /// KV-cache bytes stored per token: key and value vectors for each layer.
    ///
    /// For fp16 LLaMA-7B this is `2 × 32 × 4096 × 2 = 512 KiB`, matching the
    /// paper's §5 figure of "128 KB for key or value tensors of 16 tokens in
    /// each layer" (`128 KiB × 2 × 32 / 16 = 512 KiB` per token).
    pub fn kv_bytes_per_token(&self) -> u64 {
        2 * self.layers as u64 * self.hidden as u64 * self.dtype_bytes as u64
    }

    /// Total bytes of model weights.
    pub fn weight_bytes(&self) -> u64 {
        self.params * self.dtype_bytes as u64
    }
}

/// Description of a GPU device.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GpuSpec {
    /// Device name, e.g. `"A10"`.
    pub name: String,
    /// Device memory in bytes.
    pub memory_bytes: u64,
    /// Peak fp16 throughput in FLOP/s.
    pub fp16_flops: f64,
    /// Device memory bandwidth in bytes/s.
    pub mem_bandwidth: f64,
}

impl GpuSpec {
    /// NVIDIA A10 (24 GB), the paper's testbed GPU.
    pub fn a10() -> Self {
        GpuSpec {
            name: "A10".to_string(),
            memory_bytes: 24 * (1 << 30),
            fp16_flops: 125e12,
            mem_bandwidth: 600e9,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn llama_7b_kv_bytes_match_paper() {
        let m = ModelSpec::llama_7b();
        // 512 KiB per token (paper §5: 4k blocks of 128 KiB per 1k tokens,
        // i.e. 4096 × 128 KiB / 1024 tokens = 512 KiB/token).
        assert_eq!(m.kv_bytes_per_token(), 512 * 1024);
        // The per-(layer, k-or-v) block of 16 tokens is 128 KiB.
        let per_layer_kv_block = 16 * m.hidden as u64 * m.dtype_bytes as u64;
        assert_eq!(per_layer_kv_block, 128 * 1024);
    }

    #[test]
    fn llama_30b_is_tensor_parallel() {
        let m = ModelSpec::llama_30b();
        assert_eq!(m.tensor_parallel, 4);
        assert!(m.weight_bytes() > 60 * (1u64 << 30));
        assert!(m.kv_bytes_per_token() > ModelSpec::llama_7b().kv_bytes_per_token());
    }

    #[test]
    fn a10_memory() {
        let g = GpuSpec::a10();
        assert_eq!(g.memory_bytes, 25_769_803_776);
    }
}
