//! KV-cache memory geometry: blocks, capacities, and token↔block math.
//!
//! vLLM-style PagedAttention stores the KV cache in fixed-size blocks of
//! `block_tokens` token positions. A request occupying `n` tokens holds
//! `ceil(n / block_tokens)` blocks; the last block may be partially filled
//! (internal fragmentation), and unallocated blocks spread across instances
//! are the *external* fragmentation the paper's de-fragmentation targets.

use serde::{Deserialize, Serialize};

use crate::specs::ModelSpec;

/// Geometry of the paged KV cache on one instance.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct BlockGeometry {
    /// Token positions per block (vLLM default: 16).
    pub block_tokens: u32,
    /// Total KV-cache bytes per block across all layers, keys and values.
    pub bytes_per_block: u64,
    /// Total number of KV blocks on the instance.
    pub total_blocks: u32,
}

impl BlockGeometry {
    /// Builds a geometry from a model and a token capacity.
    ///
    /// The capacity is rounded down to a whole number of blocks.
    pub fn new(model: &ModelSpec, capacity_tokens: u32, block_tokens: u32) -> Self {
        assert!(block_tokens > 0, "block_tokens must be positive");
        BlockGeometry {
            block_tokens,
            bytes_per_block: model.kv_bytes_per_token() * block_tokens as u64,
            total_blocks: capacity_tokens / block_tokens,
        }
    }

    /// Number of blocks needed to hold `tokens` token positions.
    pub fn blocks_for_tokens(&self, tokens: u32) -> u32 {
        tokens.div_ceil(self.block_tokens)
    }

    /// Token capacity of the whole instance (whole blocks only).
    pub fn capacity_tokens(&self) -> u32 {
        self.total_blocks * self.block_tokens
    }

    /// Bytes occupied by `blocks` blocks.
    pub fn bytes_for_blocks(&self, blocks: u32) -> u64 {
        self.bytes_per_block * blocks as u64
    }

    /// Bytes of KV state for `tokens` tokens (exact, not block-rounded).
    pub fn bytes_for_tokens(&self, tokens: u32, model: &ModelSpec) -> u64 {
        model.kv_bytes_per_token() * tokens as u64
    }
}

/// Capacity presets matching the paper's testbed.
pub mod presets {
    use super::BlockGeometry;
    use crate::specs::ModelSpec;

    /// Paper §6.1: an A10 fits 13,616 tokens of LLaMA-7B KV cache.
    pub const LLAMA_7B_A10_CAPACITY_TOKENS: u32 = 13_616;

    /// Derived for LLaMA-30B on 4×A10: 4×24 GiB minus 65 GiB of weights and a
    /// ~10% activation reserve leaves ≈14,400 tokens of 1.56 MiB/token KV.
    pub const LLAMA_30B_4XA10_CAPACITY_TOKENS: u32 = 14_400;

    /// Geometry for one LLaMA-7B instance on an A10 (851 blocks of 16).
    pub fn llama_7b_a10() -> BlockGeometry {
        BlockGeometry::new(&ModelSpec::llama_7b(), LLAMA_7B_A10_CAPACITY_TOKENS, 16)
    }

    /// Geometry for one LLaMA-30B instance on 4×A10.
    pub fn llama_30b_4xa10() -> BlockGeometry {
        BlockGeometry::new(&ModelSpec::llama_30b(), LLAMA_30B_4XA10_CAPACITY_TOKENS, 16)
    }
}

#[cfg(test)]
mod tests {
    use super::presets;
    use super::*;

    #[test]
    fn llama_7b_a10_geometry_matches_paper() {
        let g = presets::llama_7b_a10();
        assert_eq!(g.total_blocks, 851);
        assert_eq!(g.block_tokens, 16);
        assert_eq!(g.capacity_tokens(), 13_616);
        // 16 tokens × 512 KiB/token = 8 MiB per block.
        assert_eq!(g.bytes_per_block, 8 * 1024 * 1024);
    }

    #[test]
    fn blocks_for_tokens_rounds_up() {
        let g = presets::llama_7b_a10();
        assert_eq!(g.blocks_for_tokens(0), 0);
        assert_eq!(g.blocks_for_tokens(1), 1);
        assert_eq!(g.blocks_for_tokens(16), 1);
        assert_eq!(g.blocks_for_tokens(17), 2);
        assert_eq!(g.blocks_for_tokens(13_616), 851);
    }

    #[test]
    fn byte_accounting() {
        let m = ModelSpec::llama_7b();
        let g = presets::llama_7b_a10();
        assert_eq!(g.bytes_for_blocks(2), 16 * 1024 * 1024);
        // 1k tokens of LLaMA-7B KV is 512 MiB (paper §5: 4k blocks × 128 KiB).
        assert_eq!(g.bytes_for_tokens(1024, &m), 512 * 1024 * 1024);
    }

    #[test]
    #[should_panic(expected = "block_tokens must be positive")]
    fn zero_block_tokens_rejected() {
        let _ = BlockGeometry::new(&ModelSpec::llama_7b(), 1024, 0);
    }
}
