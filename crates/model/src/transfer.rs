//! KV-cache transfer model.
//!
//! Migration copies KV blocks between instances on different machines. The
//! paper's implementation (§5) uses Gloo Send/Recv over the VMs' 64 Gb/s
//! network, staging blocks through CPU memory over PCIe in a side CUDA
//! stream, and *fuses* the many small per-layer blocks into one contiguous
//! buffer per stage to avoid per-message overheads. This module models those
//! costs so the stage planner and the Figure 10 baselines can be compared.

use llumnix_sim::SimDuration;
use serde::{Deserialize, Serialize};

use crate::specs::ModelSpec;

/// How the KV cache of a stage is shipped.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum TransferMode {
    /// Blocks are fused into one contiguous CPU buffer per stage (paper §5).
    GlooFused,
    /// Every per-layer 128 KiB block is sent as its own message.
    GlooUnfused,
}

/// Bandwidth/latency model for inter-instance KV transfer.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TransferModel {
    /// Machine-to-machine network bandwidth, bytes/s (64 Gb/s ⇒ 8e9).
    pub network_bandwidth: f64,
    /// Host↔device staging bandwidth per side, bytes/s (PCIe 4.0 ×16 ⇒ 32e9).
    pub pcie_bandwidth: f64,
    /// Fixed cost per network message.
    pub per_message_overhead: SimDuration,
    /// One pre-allocate handshake round trip (paper Figure 7).
    pub handshake_rtt: SimDuration,
    /// Fixed cost to drain the request from the source batch, commit, and
    /// resume it on the destination — the constant part of the downtime.
    pub commit_overhead: SimDuration,
}

impl Default for TransferModel {
    fn default() -> Self {
        Self::alibaba_vm_network()
    }
}

impl TransferModel {
    /// The paper's testbed: ecs.gn7i VMs with 64 Gb/s network and PCIe 4.0.
    pub fn alibaba_vm_network() -> Self {
        TransferModel {
            network_bandwidth: 8e9,
            pcie_bandwidth: 32e9,
            per_message_overhead: SimDuration::from_micros(50),
            handshake_rtt: SimDuration::from_micros(500),
            commit_overhead: SimDuration::from_millis(20),
        }
    }

    /// Effective end-to-end copy bandwidth: the network hop plus a PCIe
    /// staging pass on each side, pipelined per stage.
    pub fn effective_bandwidth(&self) -> f64 {
        1.0 / (1.0 / self.network_bandwidth + 2.0 / self.pcie_bandwidth)
    }

    /// Number of unfused messages for `tokens` tokens: one message per
    /// (16-token block × layer × {K, V}).
    pub fn unfused_messages(&self, tokens: u32, model: &ModelSpec) -> u64 {
        let positions = tokens.div_ceil(16) as u64;
        positions * model.layers as u64 * 2
    }

    /// Time to copy the KV cache of `tokens` tokens of `model`.
    pub fn copy_time(&self, tokens: u32, model: &ModelSpec, mode: TransferMode) -> SimDuration {
        if tokens == 0 {
            return SimDuration::ZERO;
        }
        let bytes = model.kv_bytes_per_token() * tokens as u64;
        let wire = SimDuration::from_secs_f64(bytes as f64 / self.effective_bandwidth());
        let messages = match mode {
            TransferMode::GlooFused => 1,
            TransferMode::GlooUnfused => self.unfused_messages(tokens, model),
        };
        wire + self.per_message_overhead.saturating_mul(messages)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn effective_bandwidth_below_network() {
        let t = TransferModel::default();
        let eff = t.effective_bandwidth();
        assert!(eff < t.network_bandwidth);
        assert!(eff > 5e9, "effective bandwidth {eff:.2e} too low");
    }

    #[test]
    fn copy_time_scales_with_tokens() {
        let t = TransferModel::default();
        let m = ModelSpec::llama_7b();
        let one_k = t.copy_time(1024, &m, TransferMode::GlooFused);
        let eight_k = t.copy_time(8192, &m, TransferMode::GlooFused);
        assert!(eight_k > one_k.saturating_mul(7));
        assert!(eight_k < one_k.saturating_mul(9));
        // 8k tokens × 512 KiB ≈ 4 GiB at ~5.3 GB/s ⇒ several hundred ms.
        let secs = eight_k.as_secs_f64();
        assert!((0.4..1.5).contains(&secs), "8k copy = {secs:.2}s");
    }

    #[test]
    fn zero_tokens_is_free() {
        let t = TransferModel::default();
        let m = ModelSpec::llama_7b();
        assert_eq!(
            t.copy_time(0, &m, TransferMode::GlooFused),
            SimDuration::ZERO
        );
    }

    #[test]
    fn block_fusion_wins_on_small_messages() {
        // Paper §5: 1k tokens of LLaMA-7B is 4k blocks of 128 KiB; sending
        // them unfused pays 4096 per-message overheads.
        let t = TransferModel::default();
        let m = ModelSpec::llama_7b();
        assert_eq!(t.unfused_messages(1024, &m), 4096);
        let fused = t.copy_time(1024, &m, TransferMode::GlooFused);
        let unfused = t.copy_time(1024, &m, TransferMode::GlooUnfused);
        assert!(
            unfused.as_secs_f64() > fused.as_secs_f64() * 2.0,
            "fusion should cut transfer time: fused {fused}, unfused {unfused}"
        );
    }

    #[test]
    fn single_token_copy_is_submillisecond_wire_time() {
        // The final migration stage copies roughly one iteration of KV; its
        // wire time must be far below the commit overhead for the paper's
        // constant ~20–30 ms downtime to hold.
        let t = TransferModel::default();
        let m = ModelSpec::llama_7b();
        let final_stage = t.copy_time(16, &m, TransferMode::GlooFused);
        assert!(final_stage < SimDuration::from_millis(5));
        assert!(t.commit_overhead >= SimDuration::from_millis(10));
    }
}
