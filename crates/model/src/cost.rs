//! Calibrated step-latency model.
//!
//! The paper's §6.6 stress test replaces GPU execution with "a simple sleep
//! command, whose duration is determined by offline measurement on A10 GPUs
//! with different sequence lengths and batch sizes". This module is that
//! substitution made explicit: analytical latency functions whose constants
//! are calibrated so the *shape* of the paper's Figure 4 holds —
//!
//! * decode steps are memory-bandwidth-bound: a large constant term (weights
//!   traffic) plus terms linear in the number of sequences and the total
//!   number of batched tokens (KV traffic);
//! * the spread between a lone sequence and the same sequence inside a full
//!   batch reaches ≈2.6× (paper §3, Figure 4);
//! * prefill is compute-bound: linear in prompt tokens with a small quadratic
//!   attention term, so recomputing an 8k sequence on LLaMA-30B costs ≈3.5 s
//!   (paper §6.2, Figure 10).

use llumnix_sim::SimDuration;
use serde::{Deserialize, Serialize};

use crate::specs::ModelSpec;

/// A batch summary handed to the cost model for a decode step.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DecodeBatch {
    /// Number of sequences decoding in the step.
    pub num_seqs: u32,
    /// Total tokens (input + generated so far) across those sequences.
    pub total_tokens: u64,
}

/// A batch summary for a prefill step.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PrefillBatch {
    /// Number of prompts prefetched in the step.
    pub num_seqs: u32,
    /// Total prompt tokens across those prompts.
    pub total_tokens: u64,
    /// Largest single prompt in the batch (drives the quadratic term).
    pub max_tokens: u64,
}

/// Step-latency model for one instance type.
pub trait CostModel: Send + Sync {
    /// Latency of one decode step over the given batch.
    fn decode_step(&self, batch: DecodeBatch) -> SimDuration;

    /// Latency of one prefill step over the given batch of prompts.
    fn prefill_step(&self, batch: PrefillBatch) -> SimDuration;

    /// Latency to recompute `tokens` of KV cache for a single sequence
    /// (used by preemption-recovery and the recompute rescheduling baseline).
    fn recompute(&self, tokens: u64) -> SimDuration {
        self.prefill_step(PrefillBatch {
            num_seqs: 1,
            total_tokens: tokens,
            max_tokens: tokens,
        })
    }
}

/// Affine decode / linear-plus-quadratic prefill model.
///
/// # Examples
///
/// ```
/// use llumnix_model::{CalibratedCostModel, CostModel, DecodeBatch};
///
/// let m = CalibratedCostModel::llama_7b_a10();
/// let lone = m.decode_step(DecodeBatch { num_seqs: 1, total_tokens: 256 });
/// let loaded = m.decode_step(DecodeBatch { num_seqs: 32, total_tokens: 13_616 });
/// // Interference: the same step is slower inside a saturated batch.
/// assert!(loaded > lone.saturating_mul(2));
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CalibratedCostModel {
    /// Model name, for reports.
    pub name: String,
    /// Fixed decode-step cost in ms (weight traffic, kernel launches).
    pub decode_base_ms: f64,
    /// Decode cost per sequence in the batch, in ms.
    pub decode_per_seq_ms: f64,
    /// Decode cost per batched token, in ms.
    pub decode_per_token_ms: f64,
    /// Fixed prefill-step cost in ms.
    pub prefill_base_ms: f64,
    /// Prefill cost per prompt token, in ms.
    pub prefill_per_token_ms: f64,
    /// Quadratic attention cost per squared prompt token, in ms.
    pub prefill_quadratic_ms: f64,
}

impl CalibratedCostModel {
    /// LLaMA-7B on one A10.
    ///
    /// Sanity anchors: lone short sequence ≈22 ms/step; a full instance
    /// (13.6k tokens, batch 32–64) ≈55–60 ms/step; spread at equal sequence
    /// length tops out near 2.6× (Figure 4 left). Prefilling 2k tokens
    /// ≈0.45 s.
    pub fn llama_7b_a10() -> Self {
        CalibratedCostModel {
            name: "LLaMA-7B@A10".to_string(),
            decode_base_ms: 22.0,
            decode_per_seq_ms: 0.20,
            decode_per_token_ms: 0.0018,
            prefill_base_ms: 10.0,
            prefill_per_token_ms: 0.21,
            prefill_quadratic_ms: 1.5e-7,
        }
    }

    /// LLaMA-30B on 4×A10 with tensor parallelism.
    ///
    /// Sanity anchors: lone sequence ≈41 ms/step; full instance ≈105 ms/step;
    /// recomputing an 8k sequence ≈3.3 s (Figure 10's 3.5 s).
    pub fn llama_30b_4xa10() -> Self {
        CalibratedCostModel {
            name: "LLaMA-30B@4xA10".to_string(),
            decode_base_ms: 40.0,
            decode_per_seq_ms: 0.30,
            decode_per_token_ms: 0.0040,
            prefill_base_ms: 20.0,
            prefill_per_token_ms: 0.38,
            prefill_quadratic_ms: 3.0e-7,
        }
    }

    /// Picks the calibrated model matching a [`ModelSpec`] by name, falling
    /// back to a first-principles derivation for unknown specs.
    pub fn for_model(spec: &ModelSpec) -> Self {
        match spec.name.as_str() {
            "LLaMA-7B" => Self::llama_7b_a10(),
            "LLaMA-30B" => Self::llama_30b_4xa10(),
            _ => Self::derived(spec),
        }
    }

    /// First-principles derivation: decode base from weight traffic over
    /// aggregate memory bandwidth, prefill slope from FLOPs over aggregate
    /// compute (assuming A10-class devices at 50% efficiency).
    pub fn derived(spec: &ModelSpec) -> Self {
        let gpus = spec.tensor_parallel.max(1) as f64;
        let bw = 600e9 * gpus;
        let flops = 125e12 * 0.5 * gpus;
        let weight_ms = spec.weight_bytes() as f64 / bw * 1e3;
        let tp_overhead_ms = if spec.tensor_parallel > 1 {
            spec.layers as f64 * 0.1
        } else {
            0.0
        };
        let flops_per_token = 2.0 * spec.params as f64;
        CalibratedCostModel {
            name: format!("{}@derived", spec.name),
            decode_base_ms: weight_ms + tp_overhead_ms,
            decode_per_seq_ms: 0.2,
            decode_per_token_ms: spec.kv_bytes_per_token() as f64 / bw * 1e3,
            prefill_base_ms: 10.0 * gpus.sqrt(),
            prefill_per_token_ms: flops_per_token / flops * 1e3,
            prefill_quadratic_ms: 1.5e-7 * (spec.layers as f64 / 32.0),
        }
    }
}

/// Memoized decode-step latencies, quantized to token buckets.
///
/// Decode steps dominate the simulator's cost-model calls, and the batches
/// they describe recur constantly across instances and experiment arms once
/// total tokens are bucketed. The memo evaluates the underlying model at the
/// bucket floor (`bucket * DECODE_MEMO_BUCKET_TOKENS`) so every lookup that
/// lands in a bucket sees the same duration regardless of call order — the
/// memoized simulation stays deterministic and run-to-run identical.
///
/// The table is a lazily grown dense `Vec` per batch size (bounded by the
/// engine's `max_batch_size`), with 0 as the "unset" sentinel; durations are
/// stored as microseconds + 1.
#[derive(Debug, Clone, Default)]
pub struct DecodeCostMemo {
    rows: Vec<Vec<u64>>,
}

/// Token-bucket width of [`DecodeCostMemo`].
pub const DECODE_MEMO_BUCKET_TOKENS: u64 = 16;

impl DecodeCostMemo {
    /// Creates an empty memo.
    pub fn new() -> Self {
        Self::default()
    }

    /// Memoized [`CostModel::decode_step`]: the batch's total tokens are
    /// quantized down to the bucket floor before evaluation.
    pub fn decode_step(&mut self, model: &dyn CostModel, batch: DecodeBatch) -> SimDuration {
        if batch.num_seqs == 0 {
            return SimDuration::ZERO;
        }
        let n = batch.num_seqs as usize;
        let b = (batch.total_tokens / DECODE_MEMO_BUCKET_TOKENS) as usize;
        if self.rows.len() <= n {
            self.rows.resize_with(n + 1, Vec::new);
        }
        let row = &mut self.rows[n];
        if row.len() <= b {
            row.resize(b + 1, 0);
        }
        if row[b] == 0 {
            let d = model.decode_step(DecodeBatch {
                num_seqs: batch.num_seqs,
                total_tokens: b as u64 * DECODE_MEMO_BUCKET_TOKENS,
            });
            row[b] = d.as_micros().saturating_add(1);
        }
        SimDuration::from_micros(row[b] - 1)
    }
}

impl CostModel for CalibratedCostModel {
    fn decode_step(&self, batch: DecodeBatch) -> SimDuration {
        if batch.num_seqs == 0 {
            return SimDuration::ZERO;
        }
        let ms = self.decode_base_ms
            + self.decode_per_seq_ms * batch.num_seqs as f64
            + self.decode_per_token_ms * batch.total_tokens as f64;
        SimDuration::from_millis_f64(ms)
    }

    fn prefill_step(&self, batch: PrefillBatch) -> SimDuration {
        if batch.num_seqs == 0 {
            return SimDuration::ZERO;
        }
        let ms = self.prefill_base_ms
            + self.prefill_per_token_ms * batch.total_tokens as f64
            + self.prefill_quadratic_ms * (batch.max_tokens as f64).powi(2);
        SimDuration::from_millis_f64(ms)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn seven_b() -> CalibratedCostModel {
        CalibratedCostModel::llama_7b_a10()
    }

    #[test]
    fn empty_batches_cost_nothing() {
        let m = seven_b();
        assert_eq!(
            m.decode_step(DecodeBatch {
                num_seqs: 0,
                total_tokens: 0
            }),
            SimDuration::ZERO
        );
        assert_eq!(
            m.prefill_step(PrefillBatch {
                num_seqs: 0,
                total_tokens: 0,
                max_tokens: 0
            }),
            SimDuration::ZERO
        );
    }

    #[test]
    fn decode_monotone_in_batch_and_tokens() {
        let m = seven_b();
        let lone = m.decode_step(DecodeBatch {
            num_seqs: 1,
            total_tokens: 256,
        });
        let bigger_batch = m.decode_step(DecodeBatch {
            num_seqs: 16,
            total_tokens: 256 * 16,
        });
        let longer = m.decode_step(DecodeBatch {
            num_seqs: 1,
            total_tokens: 4096,
        });
        assert!(bigger_batch > lone);
        assert!(longer > lone);
    }

    #[test]
    fn figure4_interference_spread_near_2_6x() {
        // Paper §3: the decode latency gap at the same sequence length is up
        // to 2.6×. Compare a lone short sequence against the same sequence
        // inside a saturated instance.
        let m = seven_b();
        let lone = m.decode_step(DecodeBatch {
            num_seqs: 1,
            total_tokens: 128,
        });
        let saturated = m.decode_step(DecodeBatch {
            num_seqs: 64,
            total_tokens: 13_616,
        });
        let ratio = saturated.as_secs_f64() / lone.as_secs_f64();
        assert!(
            (2.0..3.0).contains(&ratio),
            "interference spread {ratio:.2} outside the paper's ≈2.6× band"
        );
    }

    #[test]
    fn decode_step_magnitudes_match_figure4() {
        let m7 = seven_b();
        let lone7 = m7
            .decode_step(DecodeBatch {
                num_seqs: 1,
                total_tokens: 256,
            })
            .as_millis_f64();
        assert!((15.0..35.0).contains(&lone7), "7B lone step {lone7} ms");
        let m30 = CalibratedCostModel::llama_30b_4xa10();
        let lone30 = m30
            .decode_step(DecodeBatch {
                num_seqs: 1,
                total_tokens: 256,
            })
            .as_millis_f64();
        assert!((30.0..60.0).contains(&lone30), "30B lone step {lone30} ms");
        assert!(lone30 > lone7);
    }

    #[test]
    fn recompute_8k_on_30b_near_3_5s() {
        // Paper §6.2: "recomputing an 8k sequence for LLaMA-30B takes 3.5s".
        let m = CalibratedCostModel::llama_30b_4xa10();
        let t = m.recompute(8 * 1024).as_secs_f64();
        assert!((2.8..4.2).contains(&t), "8k recompute = {t:.2}s");
    }

    #[test]
    fn prefill_2k_on_7b_subsecond() {
        let m = seven_b();
        let t = m.recompute(2048).as_secs_f64();
        assert!((0.2..0.8).contains(&t), "2k prefill = {t:.2}s");
    }

    #[test]
    fn derived_model_close_to_calibrated_7b() {
        let d = CalibratedCostModel::derived(&ModelSpec::llama_7b());
        let c = seven_b();
        let ratio = d.decode_base_ms / c.decode_base_ms;
        assert!(
            (0.7..1.4).contains(&ratio),
            "derived base {:.1} vs calibrated {:.1}",
            d.decode_base_ms,
            c.decode_base_ms
        );
    }

    #[test]
    fn memo_matches_model_at_bucket_floor_and_is_order_independent() {
        let m = seven_b();
        let mut memo = DecodeCostMemo::new();
        // Two token counts in the same bucket give the same memoized value.
        let a = memo.decode_step(
            &m,
            DecodeBatch {
                num_seqs: 4,
                total_tokens: 1_000,
            },
        );
        let b = memo.decode_step(
            &m,
            DecodeBatch {
                num_seqs: 4,
                total_tokens: 1_007,
            },
        );
        assert_eq!(a, b);
        // The stored value is the model evaluated at the bucket floor, no
        // matter which member of the bucket was seen first.
        let floor = (1_000 / DECODE_MEMO_BUCKET_TOKENS) * DECODE_MEMO_BUCKET_TOKENS;
        let expect = m.decode_step(DecodeBatch {
            num_seqs: 4,
            total_tokens: floor,
        });
        assert_eq!(a, expect);
        let mut memo2 = DecodeCostMemo::new();
        let b2 = memo2.decode_step(
            &m,
            DecodeBatch {
                num_seqs: 4,
                total_tokens: 1_007,
            },
        );
        assert_eq!(b2, expect, "first-seen member must not matter");
        // Different batch sizes are distinct entries.
        let c = memo.decode_step(
            &m,
            DecodeBatch {
                num_seqs: 5,
                total_tokens: 1_000,
            },
        );
        assert!(c > a);
        // Empty batches still cost nothing.
        assert_eq!(
            memo.decode_step(
                &m,
                DecodeBatch {
                    num_seqs: 0,
                    total_tokens: 0
                }
            ),
            SimDuration::ZERO
        );
    }

    #[test]
    fn for_model_dispatches_by_name() {
        assert_eq!(
            CalibratedCostModel::for_model(&ModelSpec::llama_7b()).name,
            "LLaMA-7B@A10"
        );
        assert_eq!(
            CalibratedCostModel::for_model(&ModelSpec::llama_30b()).name,
            "LLaMA-30B@4xA10"
        );
        let mut custom = ModelSpec::llama_13b();
        custom.name = "Custom-13B".into();
        assert!(CalibratedCostModel::for_model(&custom)
            .name
            .ends_with("@derived"));
    }
}
