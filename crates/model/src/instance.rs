//! Full description of one serving instance type.

use serde::{Deserialize, Serialize};

use crate::cost::CalibratedCostModel;
use crate::memory::{presets, BlockGeometry};
use crate::specs::ModelSpec;
use crate::transfer::TransferModel;

/// Everything the engine needs to know about one instance type: the model it
/// serves, its KV-block geometry, its step-latency model, and the transfer
/// model used when migrating requests off it.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct InstanceSpec {
    /// The served model.
    pub model: ModelSpec,
    /// KV-cache block geometry.
    pub geometry: BlockGeometry,
    /// Step-latency model.
    pub cost: CalibratedCostModel,
    /// Inter-instance KV transfer model.
    pub transfer: TransferModel,
}

impl InstanceSpec {
    /// One LLaMA-7B instance on an A10 — the paper's main configuration
    /// (16 such instances in §6.3–6.5, 64 in §6.6).
    pub fn llama_7b_a10() -> Self {
        InstanceSpec {
            model: ModelSpec::llama_7b(),
            geometry: presets::llama_7b_a10(),
            cost: CalibratedCostModel::llama_7b_a10(),
            transfer: TransferModel::alibaba_vm_network(),
        }
    }

    /// One LLaMA-30B instance on 4×A10 with tensor parallelism (§6.2).
    pub fn llama_30b_4xa10() -> Self {
        InstanceSpec {
            model: ModelSpec::llama_30b(),
            geometry: presets::llama_30b_4xa10(),
            cost: CalibratedCostModel::llama_30b_4xa10(),
            transfer: TransferModel::alibaba_vm_network(),
        }
    }

    /// A scaled-down instance for fast unit and integration tests: same
    /// dynamics, tiny capacity so memory pressure is easy to provoke.
    pub fn tiny_for_tests(capacity_tokens: u32) -> Self {
        let model = ModelSpec::llama_7b();
        InstanceSpec {
            geometry: BlockGeometry::new(&model, capacity_tokens, 16),
            model,
            cost: CalibratedCostModel::llama_7b_a10(),
            transfer: TransferModel::alibaba_vm_network(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_are_consistent() {
        let s = InstanceSpec::llama_7b_a10();
        assert_eq!(s.model.name, "LLaMA-7B");
        assert_eq!(s.geometry.total_blocks, 851);
        assert_eq!(s.cost.name, "LLaMA-7B@A10");
        let b = InstanceSpec::llama_30b_4xa10();
        assert_eq!(b.model.tensor_parallel, 4);
        assert!(b.geometry.bytes_per_block > s.geometry.bytes_per_block);
    }

    #[test]
    fn tiny_spec_rounds_capacity_to_blocks() {
        let s = InstanceSpec::tiny_for_tests(100);
        assert_eq!(s.geometry.total_blocks, 6);
        assert_eq!(s.geometry.capacity_tokens(), 96);
    }
}
