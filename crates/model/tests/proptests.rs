//! Property tests for the cost, memory, and transfer models.

use llumnix_model::{
    BlockGeometry, CalibratedCostModel, CostModel, DecodeBatch, ModelSpec, PrefillBatch,
    TransferMode, TransferModel,
};
use proptest::prelude::*;

proptest! {
    /// Decode cost is monotone in both batch size and total tokens.
    #[test]
    fn decode_cost_monotone(
        seqs in 1u32..256,
        tokens in 1u64..200_000,
        extra_seqs in 0u32..64,
        extra_tokens in 0u64..50_000,
    ) {
        let m = CalibratedCostModel::llama_7b_a10();
        let base = m.decode_step(DecodeBatch { num_seqs: seqs, total_tokens: tokens });
        let more = m.decode_step(DecodeBatch {
            num_seqs: seqs + extra_seqs,
            total_tokens: tokens + extra_tokens,
        });
        prop_assert!(more >= base);
        prop_assert!(!base.is_zero());
    }

    /// Prefill cost is monotone in token count and superadditive in the
    /// quadratic regime (splitting a prompt never costs more than one shot
    /// minus the fixed overhead).
    #[test]
    fn prefill_cost_monotone(tokens in 1u64..16_384, extra in 0u64..8_192) {
        let m = CalibratedCostModel::llama_30b_4xa10();
        let one = m.prefill_step(PrefillBatch { num_seqs: 1, total_tokens: tokens, max_tokens: tokens });
        let two = m.prefill_step(PrefillBatch {
            num_seqs: 1,
            total_tokens: tokens + extra,
            max_tokens: tokens + extra,
        });
        prop_assert!(two >= one);
    }

    /// Block math: blocks_for_tokens is the exact ceiling, and capacity is a
    /// whole number of blocks.
    #[test]
    fn block_geometry_ceiling(capacity in 16u32..200_000, tokens in 0u32..200_000, bs in 1u32..128) {
        let g = BlockGeometry::new(&ModelSpec::llama_7b(), capacity, bs);
        let blocks = g.blocks_for_tokens(tokens);
        prop_assert!(blocks as u64 * bs as u64 >= tokens as u64);
        if blocks > 0 {
            let lower = (blocks as u64 - 1) * bs as u64;
            prop_assert!(lower < tokens as u64);
        }
        prop_assert_eq!(g.capacity_tokens() % bs, 0);
        prop_assert!(g.capacity_tokens() <= capacity);
    }

    /// Transfer time is monotone in tokens; fusion never loses.
    #[test]
    fn transfer_monotone_and_fusion_wins(a in 1u32..20_000, b in 0u32..20_000) {
        let t = TransferModel::alibaba_vm_network();
        let m = ModelSpec::llama_7b();
        let small = t.copy_time(a, &m, TransferMode::GlooFused);
        let large = t.copy_time(a + b, &m, TransferMode::GlooFused);
        prop_assert!(large >= small);
        let unfused = t.copy_time(a, &m, TransferMode::GlooUnfused);
        prop_assert!(unfused >= small, "fusion can only help");
    }

    /// The derived cost model stays within sane bounds for arbitrary model
    /// shapes (no negative or absurd step times).
    #[test]
    fn derived_model_sane(
        layers in 8u32..128,
        hidden in 512u32..16_384,
        params in 1_000_000_000u64..200_000_000_000,
        tp in 1u32..9,
    ) {
        let spec = ModelSpec {
            name: "arbitrary".into(),
            layers,
            hidden,
            params,
            dtype_bytes: 2,
            tensor_parallel: tp,
        };
        let m = CalibratedCostModel::derived(&spec);
        prop_assert!(m.decode_base_ms > 0.0 && m.decode_base_ms < 10_000.0);
        prop_assert!(m.prefill_per_token_ms > 0.0);
        let step = m.decode_step(DecodeBatch { num_seqs: 8, total_tokens: 4_096 });
        prop_assert!(!step.is_zero());
    }
}
