//! Property tests for the instance engine and block manager.

use llumnix_engine::{
    BlockManager, EngineConfig, InstanceEngine, InstanceId, Priority, PriorityPair, RequestId,
    RequestMeta, WaitQueue,
};
use llumnix_model::InstanceSpec;
use llumnix_sim::SimTime;
use proptest::prelude::*;

/// A random block-manager operation.
#[derive(Debug, Clone)]
enum BlockOp {
    Allocate(u64, u32),
    Grow(u64, u32),
    Release(u64),
    Reserve(u32),
    ReleaseReservation(usize),
    Commit(usize, u64),
}

fn block_op() -> impl Strategy<Value = BlockOp> {
    prop_oneof![
        (0u64..20, 1u32..40).prop_map(|(id, n)| BlockOp::Allocate(id, n)),
        (0u64..20, 1u32..10).prop_map(|(id, n)| BlockOp::Grow(id, n)),
        (0u64..20).prop_map(BlockOp::Release),
        (1u32..40).prop_map(BlockOp::Reserve),
        (0usize..8).prop_map(BlockOp::ReleaseReservation),
        ((0usize..8), (20u64..40)).prop_map(|(r, id)| BlockOp::Commit(r, id)),
    ]
}

proptest! {
    /// Under any operation sequence, allocated + reserved + free == total,
    /// and failed operations leave no residue.
    #[test]
    fn block_manager_conserves_blocks(ops in prop::collection::vec(block_op(), 1..200)) {
        let mut bm = BlockManager::new(120);
        let mut reservations = Vec::new();
        for op in ops {
            match op {
                BlockOp::Allocate(id, n) => { let _ = bm.allocate(RequestId(id), n); }
                BlockOp::Grow(id, n) => { let _ = bm.grow(RequestId(id), n); }
                BlockOp::Release(id) => { let _ = bm.release(RequestId(id)); }
                BlockOp::Reserve(n) => {
                    if let Ok(r) = bm.reserve(n) {
                        reservations.push(r);
                    }
                }
                BlockOp::ReleaseReservation(i) => {
                    if i < reservations.len() {
                        let r = reservations.swap_remove(i);
                        let _ = bm.release_reservation(r);
                    }
                }
                BlockOp::Commit(i, id) => {
                    if i < reservations.len() {
                        let r = reservations.swap_remove(i);
                        let _ = bm.commit_reservation(r, RequestId(id));
                    }
                }
            }
            prop_assert!(bm.check_invariants(), "block conservation violated");
            prop_assert!(bm.free_blocks() <= bm.total_blocks());
        }
    }

    /// The wait queue always yields strictly by (priority desc, arrival asc,
    /// id asc), regardless of insertion order.
    #[test]
    fn wait_queue_order(entries in prop::collection::vec((0u64..1000, 0u64..100, any::<bool>()), 1..60)) {
        let mut q = WaitQueue::new();
        let mut expected: Vec<(Priority, u64, u64)> = Vec::new();
        for (i, &(arrival, _, high)) in entries.iter().enumerate() {
            let id = i as u64;
            let priority = if high { Priority::High } else { Priority::Normal };
            q.insert(RequestId(id), priority, SimTime::from_micros(arrival));
            expected.push((priority, arrival, id));
        }
        expected.sort_by(|a, b| b.0.cmp(&a.0).then(a.1.cmp(&b.1)).then(a.2.cmp(&b.2)));
        let drained: Vec<u64> = std::iter::from_fn(|| q.pop_head()).map(|r| r.0).collect();
        let want: Vec<u64> = expected.iter().map(|e| e.2).collect();
        prop_assert_eq!(drained, want);
    }

    /// Any batch of requests that each fit the instance runs to completion
    /// with exact token conservation and all blocks returned — through any
    /// pattern of admission blocking and preemption the mix provokes.
    #[test]
    fn engine_completes_any_feasible_mix(
        reqs in prop::collection::vec((1u32..600, 1u32..80, 0u64..50, any::<bool>()), 1..25)
    ) {
        let spec = InstanceSpec::tiny_for_tests(1024);
        let capacity = spec.geometry.capacity_tokens();
        let mut engine = InstanceEngine::new(InstanceId(0), spec, EngineConfig::default());
        let mut expected: Vec<(RequestId, u32)> = Vec::new();
        for (i, &(input, output, arrival, high)) in reqs.iter().enumerate() {
            let input = input.min(capacity - 80);
            let output = output.min(capacity - input);
            let meta = RequestMeta {
                id: RequestId(i as u64),
                input_len: input,
                output_len: output,
                priority: if high { PriorityPair::HIGH } else { PriorityPair::NORMAL },
                arrival: SimTime::from_millis(arrival),
            };
            engine.add_request(meta, SimTime::from_millis(arrival));
            expected.push((meta.id, output));
        }
        let mut now = SimTime::from_millis(100);
        let mut steps = 0u32;
        while let Some(plan) = engine.poll_step(now) {
            now = plan.finish_at();
            engine.complete_step(now);
            steps += 1;
            prop_assert!(engine.check_invariants());
            prop_assert!(steps < 60_000, "engine did not converge");
        }
        let finished = engine.take_finished();
        prop_assert_eq!(finished.len(), expected.len());
        for (id, want_output) in expected {
            let state = finished.iter().find(|s| s.meta.id == id).expect("finished");
            if state.aborted {
                // Only possible if the request could never fit; we sized
                // everything to fit, so this must not happen.
                prop_assert!(false, "request {} aborted unexpectedly", id);
            }
            prop_assert_eq!(state.generated, want_output, "token conservation for {}", id);
            prop_assert!(state.first_token_at.is_some());
        }
        prop_assert_eq!(engine.free_blocks(), engine.total_blocks());
        prop_assert!(!engine.has_work());
    }
}
