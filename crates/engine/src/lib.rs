//! vLLM-like instance engine for llumnix-rs.
//!
//! Reproduces the scheduling-relevant dynamics of a state-of-the-art LLM
//! inference engine (paper §2): continuous batching, paged KV-cache blocks
//! with dynamic allocation, all-at-once prefill admission, recompute-style
//! preemption — plus the hooks Llumnix's live migration needs (reservations,
//! drain, snapshot, commit).

#![warn(missing_docs)]
#![forbid(unsafe_code)]
#![deny(rust_2018_idioms)]

mod block;
mod instance;
mod queue;
mod request;

pub use block::{BlockError, BlockManager, ReservationId};
pub use instance::{
    DrainOutcome, EngineConfig, EngineEvent, EngineStats, InstanceEngine, InstanceId,
    PreemptionMode, StepKind, StepPlan,
};
pub use queue::{QueueOrder, WaitQueue};
pub use request::{Phase, Priority, PriorityPair, RequestId, RequestMeta, SeqState};
