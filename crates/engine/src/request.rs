//! Request types and per-request runtime state.
//!
//! A request arrives with a prompt and generates tokens autoregressively
//! until EOS. The *output length is ground truth known only to the trace*:
//! the engine consumes it to decide when EOS fires, but schedulers only ever
//! observe tokens generated so far — the paper's "execution unpredictability"
//! (§1) is preserved by construction.

use llumnix_sim::{SimDuration, SimTime};
use serde::{Deserialize, Serialize};

/// Unique request identifier.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct RequestId(pub u64);

impl core::fmt::Display for RequestId {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "r{}", self.0)
    }
}

/// Priority classes. `High > Normal` (paper §4.4.1: two classes today, the
/// design generalizes to more).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub enum Priority {
    /// Default class.
    #[default]
    Normal,
    /// Urgent class (e.g. interactive / paid tier).
    High,
}

/// A request's priorities: *scheduling* priority orders the queues,
/// *execution* priority earns a memory headroom on its instance (§4.4.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize, Default)]
pub struct PriorityPair {
    /// Queue-ordering priority.
    pub scheduling: Priority,
    /// Load-headroom priority.
    pub execution: Priority,
}

impl PriorityPair {
    /// Both priorities normal.
    pub const NORMAL: PriorityPair = PriorityPair {
        scheduling: Priority::Normal,
        execution: Priority::Normal,
    };

    /// Both priorities high (how §6.4 tags its 10% of requests).
    pub const HIGH: PriorityPair = PriorityPair {
        scheduling: Priority::High,
        execution: Priority::High,
    };

    /// Whether either component is high.
    pub fn any_high(&self) -> bool {
        self.scheduling == Priority::High || self.execution == Priority::High
    }
}

/// Immutable request description.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct RequestMeta {
    /// Unique id.
    pub id: RequestId,
    /// Prompt length in tokens.
    pub input_len: u32,
    /// Ground-truth output length (EOS position); not visible to policies.
    pub output_len: u32,
    /// Priorities.
    pub priority: PriorityPair,
    /// Arrival at the cluster frontend.
    pub arrival: SimTime,
}

impl RequestMeta {
    /// Final total sequence length (prompt + full output).
    pub fn final_total_len(&self) -> u32 {
        self.input_len + self.output_len
    }
}

/// Lifecycle phase of a request on an instance.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Phase {
    /// In the wait queue; no KV blocks held.
    Waiting,
    /// Admitted: blocks allocated, prefill (or recompute) step pending or
    /// in flight.
    Prefilling,
    /// In the running batch, decoding.
    Running,
    /// Removed from the batch for the final migration stage.
    Draining,
    /// EOS generated; terminal.
    Finished,
}

/// Full runtime state of a request resident on one instance.
///
/// This is exactly the state that travels with the request during a live
/// migration (everything except the KV cache itself, which the migration
/// copies block by block).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SeqState {
    /// Immutable description.
    pub meta: RequestMeta,
    /// Lifecycle phase on this instance.
    pub phase: Phase,
    /// Output tokens generated so far (survives preemption and migration).
    pub generated: u32,
    /// Tokens whose KV cache is resident on this instance. Zero while
    /// waiting; `input + generated` once prefilled/recomputed.
    pub cached_tokens: u32,
    /// KV blocks currently held on this instance.
    pub blocks_held: u32,
    /// When the request entered this instance's queue (re-set on preemption).
    pub enqueued_at: SimTime,
    /// First output token emission time.
    pub first_token_at: Option<SimTime>,
    /// Completion time.
    pub finished_at: Option<SimTime>,
    /// Number of preemptions suffered.
    pub preemptions: u32,
    /// Extra latency caused by preemptions (re-queuing + recompute).
    pub preemption_loss: SimDuration,
    /// When the latest preemption happened (pending loss accounting).
    pub preempted_at: Option<SimTime>,
    /// Pure decode compute time accumulated (stall-free), for Figure 13.
    pub decode_compute: SimDuration,
    /// Completed migrations of this request.
    pub migrations: u32,
    /// Total migration downtime observed.
    pub migration_downtime: SimDuration,
    /// Whether the request was aborted (it can never fit the instance);
    /// aborted requests produce no latency record.
    pub aborted: bool,
    /// Whether the request's KV cache currently lives in host memory
    /// (swap-mode preemption); readmission swaps it back in instead of
    /// recomputing.
    pub swapped_out: bool,
    /// When the most recent token was emitted.
    pub last_token_at: Option<SimTime>,
    /// The longest gap between consecutive emitted tokens — the worst
    /// user-visible stall (preemption, migration downtime, interference).
    pub max_token_gap: SimDuration,
}

impl SeqState {
    /// Fresh state for a newly dispatched request.
    pub fn new(meta: RequestMeta, enqueued_at: SimTime) -> Self {
        SeqState {
            meta,
            phase: Phase::Waiting,
            generated: 0,
            cached_tokens: 0,
            blocks_held: 0,
            enqueued_at,
            first_token_at: None,
            finished_at: None,
            preemptions: 0,
            preemption_loss: SimDuration::ZERO,
            preempted_at: None,
            decode_compute: SimDuration::ZERO,
            migrations: 0,
            migration_downtime: SimDuration::ZERO,
            aborted: false,
            swapped_out: false,
            last_token_at: None,
            max_token_gap: SimDuration::ZERO,
        }
    }

    /// Records a token emission at `now`, updating the worst-stall tracker.
    pub fn note_token(&mut self, now: SimTime) {
        if let Some(prev) = self.last_token_at {
            let gap = now.since(prev);
            if gap > self.max_token_gap {
                self.max_token_gap = gap;
            }
        }
        self.last_token_at = Some(now);
    }

    /// Tokens of KV the request needs resident to run: prompt plus whatever
    /// it has generated so far (a recompute after preemption must rebuild
    /// the KV of already-generated tokens too).
    pub fn required_tokens(&self) -> u32 {
        self.meta.input_len + self.generated
    }

    /// Current total sequence length (prompt + generated).
    pub fn total_len(&self) -> u32 {
        self.meta.input_len + self.generated
    }

    /// Whether EOS has been reached.
    pub fn is_complete(&self) -> bool {
        self.generated >= self.meta.output_len
    }

    /// Whether the request currently occupies the running batch.
    pub fn is_resident(&self) -> bool {
        matches!(self.phase, Phase::Prefilling | Phase::Running)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn meta() -> RequestMeta {
        RequestMeta {
            id: RequestId(1),
            input_len: 100,
            output_len: 50,
            priority: PriorityPair::NORMAL,
            arrival: SimTime::from_secs(1),
        }
    }

    #[test]
    fn priority_ordering() {
        assert!(Priority::High > Priority::Normal);
        assert!(PriorityPair::HIGH.any_high());
        assert!(!PriorityPair::NORMAL.any_high());
    }

    #[test]
    fn fresh_state() {
        let s = SeqState::new(meta(), SimTime::from_secs(2));
        assert_eq!(s.phase, Phase::Waiting);
        assert_eq!(s.required_tokens(), 100);
        assert_eq!(s.total_len(), 100);
        assert!(!s.is_complete());
        assert!(!s.is_resident());
    }

    #[test]
    fn required_tokens_grows_with_generation() {
        let mut s = SeqState::new(meta(), SimTime::ZERO);
        s.generated = 30;
        assert_eq!(s.required_tokens(), 130);
        assert!(!s.is_complete());
        s.generated = 50;
        assert!(s.is_complete());
    }

    #[test]
    fn final_total_len() {
        assert_eq!(meta().final_total_len(), 150);
    }

    #[test]
    fn display_request_id() {
        assert_eq!(RequestId(42).to_string(), "r42");
    }
}
