//! The per-instance wait queue.
//!
//! Ordering follows the paper's dispatching rule (§4.4.3): higher scheduling
//! priority first; within a priority class, first-come-first-serve by
//! arrival. Preempted requests keep their original arrival as the sort key,
//! so they resume near the front of their class — matching vLLM's behaviour
//! of rescheduling preempted sequences before newer arrivals.

use llumnix_sim::SimTime;

use crate::request::{Priority, RequestId};

/// Ordering discipline within a scheduling-priority class.
///
/// The paper's Llumnix uses FCFS (§4.4.3); shortest-job-first is the classic
/// head-of-line-blocking mitigation and is implemented for the local-
/// scheduling interplay the paper names as future work (§7).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum QueueOrder {
    /// First-come-first-serve by arrival (paper default).
    #[default]
    Fcfs,
    /// Smallest memory demand first (SJF-style); ties by arrival.
    ShortestFirst,
}

/// A queued entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Entry {
    id: RequestId,
    priority: Priority,
    arrival: SimTime,
    demand: u32,
}

/// Priority + FCFS wait queue.
///
/// # Examples
///
/// ```
/// use llumnix_engine::{Priority, RequestId, WaitQueue};
/// use llumnix_sim::SimTime;
///
/// let mut q = WaitQueue::new();
/// q.insert(RequestId(1), Priority::Normal, SimTime::from_secs(1));
/// q.insert(RequestId(2), Priority::High, SimTime::from_secs(5));
/// // High scheduling priority schedules first despite arriving later.
/// assert_eq!(q.pop_head(), Some(RequestId(2)));
/// assert_eq!(q.pop_head(), Some(RequestId(1)));
/// ```
#[derive(Debug, Clone, Default)]
pub struct WaitQueue {
    // Kept sorted: highest priority first, then by the order discipline.
    entries: Vec<Entry>,
    order: QueueOrder,
}

impl WaitQueue {
    /// Creates an empty FCFS queue.
    pub fn new() -> Self {
        WaitQueue::default()
    }

    /// Creates an empty queue with an explicit order discipline.
    pub fn with_order(order: QueueOrder) -> Self {
        WaitQueue {
            entries: Vec::new(),
            order,
        }
    }

    /// Inserts a request in scheduling order. `demand` is its memory demand
    /// in tokens (only consulted under [`QueueOrder::ShortestFirst`]).
    pub fn insert(&mut self, id: RequestId, priority: Priority, arrival: SimTime) {
        self.insert_with_demand(id, priority, arrival, 0)
    }

    /// [`WaitQueue::insert`] with an explicit memory demand.
    pub fn insert_with_demand(
        &mut self,
        id: RequestId,
        priority: Priority,
        arrival: SimTime,
        demand: u32,
    ) {
        let entry = Entry {
            id,
            priority,
            arrival,
            demand,
        };
        let order = self.order;
        let pos = self
            .entries
            .partition_point(|e| Self::before(order, e, &entry));
        self.entries.insert(pos, entry);
    }

    /// Strict scheduling order: does `a` schedule before `b`?
    fn before(order: QueueOrder, a: &Entry, b: &Entry) -> bool {
        match order {
            QueueOrder::Fcfs => (b.priority, a.arrival, a.id) < (a.priority, b.arrival, b.id),
            QueueOrder::ShortestFirst => {
                (b.priority, a.demand, a.arrival, a.id) < (a.priority, b.demand, b.arrival, b.id)
            }
        }
    }

    /// The head-of-line request, if any.
    pub fn head(&self) -> Option<RequestId> {
        self.entries.first().map(|e| e.id)
    }

    /// Removes and returns the head.
    pub fn pop_head(&mut self) -> Option<RequestId> {
        if self.entries.is_empty() {
            None
        } else {
            Some(self.entries.remove(0).id)
        }
    }

    /// Removes a specific request (e.g. aborted); returns whether it was
    /// present.
    pub fn remove(&mut self, id: RequestId) -> bool {
        let before = self.entries.len();
        self.entries.retain(|e| e.id != id);
        self.entries.len() != before
    }

    /// Whether `id` is queued.
    pub fn contains(&self, id: RequestId) -> bool {
        self.entries.iter().any(|e| e.id == id)
    }

    /// Queue length.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the queue is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Iterates queued ids in scheduling order.
    pub fn iter(&self) -> impl Iterator<Item = RequestId> + '_ {
        self.entries.iter().map(|e| e.id)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rid(n: u64) -> RequestId {
        RequestId(n)
    }

    #[test]
    fn fcfs_within_class() {
        let mut q = WaitQueue::new();
        q.insert(rid(2), Priority::Normal, SimTime::from_secs(2));
        q.insert(rid(1), Priority::Normal, SimTime::from_secs(1));
        q.insert(rid(3), Priority::Normal, SimTime::from_secs(3));
        let order: Vec<RequestId> = q.iter().collect();
        assert_eq!(order, vec![rid(1), rid(2), rid(3)]);
    }

    #[test]
    fn high_priority_jumps_ahead() {
        let mut q = WaitQueue::new();
        q.insert(rid(1), Priority::Normal, SimTime::from_secs(1));
        q.insert(rid(2), Priority::Normal, SimTime::from_secs(2));
        q.insert(rid(9), Priority::High, SimTime::from_secs(100));
        assert_eq!(q.head(), Some(rid(9)));
        assert_eq!(q.pop_head(), Some(rid(9)));
        assert_eq!(q.pop_head(), Some(rid(1)));
    }

    #[test]
    fn preempted_request_resumes_near_front() {
        let mut q = WaitQueue::new();
        q.insert(rid(5), Priority::Normal, SimTime::from_secs(5));
        // A preempted request re-enters with its original (earlier) arrival.
        q.insert(rid(1), Priority::Normal, SimTime::from_secs(1));
        assert_eq!(q.head(), Some(rid(1)));
    }

    #[test]
    fn ties_break_by_id() {
        let mut q = WaitQueue::new();
        let t = SimTime::from_secs(1);
        q.insert(rid(7), Priority::Normal, t);
        q.insert(rid(3), Priority::Normal, t);
        assert_eq!(q.iter().collect::<Vec<_>>(), vec![rid(3), rid(7)]);
    }

    #[test]
    fn remove_and_contains() {
        let mut q = WaitQueue::new();
        q.insert(rid(1), Priority::Normal, SimTime::ZERO);
        q.insert(rid(2), Priority::Normal, SimTime::ZERO);
        assert!(q.contains(rid(1)));
        assert!(q.remove(rid(1)));
        assert!(!q.contains(rid(1)));
        assert!(!q.remove(rid(1)));
        assert_eq!(q.len(), 1);
    }

    #[test]
    fn shortest_first_orders_by_demand() {
        let mut q = WaitQueue::with_order(QueueOrder::ShortestFirst);
        q.insert_with_demand(rid(1), Priority::Normal, SimTime::from_secs(1), 4_000);
        q.insert_with_demand(rid(2), Priority::Normal, SimTime::from_secs(2), 100);
        q.insert_with_demand(rid(3), Priority::Normal, SimTime::from_secs(3), 900);
        // Smallest demand first regardless of arrival.
        assert_eq!(q.iter().collect::<Vec<_>>(), vec![rid(2), rid(3), rid(1)]);
        // High scheduling priority still beats demand.
        q.insert_with_demand(rid(9), Priority::High, SimTime::from_secs(9), 9_000);
        assert_eq!(q.head(), Some(rid(9)));
    }

    #[test]
    fn shortest_first_ties_break_by_arrival() {
        let mut q = WaitQueue::with_order(QueueOrder::ShortestFirst);
        q.insert_with_demand(rid(2), Priority::Normal, SimTime::from_secs(2), 64);
        q.insert_with_demand(rid(1), Priority::Normal, SimTime::from_secs(1), 64);
        assert_eq!(q.pop_head(), Some(rid(1)));
    }

    #[test]
    fn empty_queue() {
        let mut q = WaitQueue::new();
        assert!(q.is_empty());
        assert_eq!(q.head(), None);
        assert_eq!(q.pop_head(), None);
    }
}
