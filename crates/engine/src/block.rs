//! Paged KV-cache block manager.
//!
//! Mirrors vLLM's PagedAttention allocator at the granularity that matters
//! for scheduling: blocks are fungible (we track counts, not addresses),
//! allocation is all-or-nothing per call, and migration *reservations*
//! (paper Figure 7's pre-allocate handshake) hold blocks on a destination
//! instance before any data moves, so a stage can never land without space.

use std::collections::HashMap;

use crate::request::RequestId;

/// Identifier for a migration reservation on a destination instance.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ReservationId(pub u64);

/// Errors from block-manager operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BlockError {
    /// Not enough free blocks to satisfy the call.
    OutOfBlocks {
        /// Blocks requested.
        requested: u32,
        /// Blocks free at the time.
        free: u32,
    },
    /// The request holds no allocation.
    UnknownRequest(RequestId),
    /// The reservation does not exist.
    UnknownReservation(ReservationId),
    /// The request already holds an allocation.
    AlreadyAllocated(RequestId),
}

impl core::fmt::Display for BlockError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            BlockError::OutOfBlocks { requested, free } => {
                write!(f, "out of blocks: requested {requested}, free {free}")
            }
            BlockError::UnknownRequest(id) => write!(f, "no allocation for {id}"),
            BlockError::UnknownReservation(ReservationId(id)) => {
                write!(f, "no reservation {id}")
            }
            BlockError::AlreadyAllocated(id) => write!(f, "{id} already allocated"),
        }
    }
}

impl std::error::Error for BlockError {}

/// Counting allocator for an instance's KV blocks.
///
/// # Examples
///
/// ```
/// use llumnix_engine::{BlockManager, RequestId};
///
/// let mut bm = BlockManager::new(10);
/// bm.allocate(RequestId(1), 4).unwrap();
/// let reservation = bm.reserve(3).unwrap();
/// assert_eq!(bm.free_blocks(), 3);
/// // The reservation becomes an allocation at migration commit.
/// bm.commit_reservation(reservation, RequestId(2)).unwrap();
/// assert_eq!(bm.blocks_of(RequestId(2)), 3);
/// ```
#[derive(Debug, Clone)]
pub struct BlockManager {
    total: u32,
    allocations: HashMap<RequestId, u32>,
    reservations: HashMap<ReservationId, u32>,
    next_reservation: u64,
}

impl BlockManager {
    /// Creates a manager over `total` blocks.
    pub fn new(total: u32) -> Self {
        BlockManager {
            total,
            allocations: HashMap::new(),
            reservations: HashMap::new(),
            next_reservation: 0,
        }
    }

    /// Total blocks on the instance.
    pub fn total_blocks(&self) -> u32 {
        self.total
    }

    /// Blocks currently allocated to requests.
    pub fn allocated_blocks(&self) -> u32 {
        self.allocations.values().sum()
    }

    /// Blocks held by migration reservations.
    pub fn reserved_blocks(&self) -> u32 {
        self.reservations.values().sum()
    }

    /// Free (unallocated, unreserved) blocks.
    pub fn free_blocks(&self) -> u32 {
        self.total - self.allocated_blocks() - self.reserved_blocks()
    }

    /// Fraction of blocks in use (allocations + reservations).
    pub fn utilization(&self) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        1.0 - self.free_blocks() as f64 / self.total as f64
    }

    /// Blocks allocated to `id`, or 0.
    pub fn blocks_of(&self, id: RequestId) -> u32 {
        self.allocations.get(&id).copied().unwrap_or(0)
    }

    /// Allocates exactly `blocks` to `id` (all-or-nothing). The request must
    /// not already hold an allocation.
    pub fn allocate(&mut self, id: RequestId, blocks: u32) -> Result<(), BlockError> {
        if self.allocations.contains_key(&id) {
            return Err(BlockError::AlreadyAllocated(id));
        }
        let free = self.free_blocks();
        if blocks > free {
            return Err(BlockError::OutOfBlocks {
                requested: blocks,
                free,
            });
        }
        self.allocations.insert(id, blocks);
        Ok(())
    }

    /// Grows `id`'s allocation by `extra` blocks (decode-time growth).
    pub fn grow(&mut self, id: RequestId, extra: u32) -> Result<(), BlockError> {
        if !self.allocations.contains_key(&id) {
            return Err(BlockError::UnknownRequest(id));
        }
        let free = self.free_blocks();
        if extra > free {
            return Err(BlockError::OutOfBlocks {
                requested: extra,
                free,
            });
        }
        *self.allocations.get_mut(&id).expect("checked above") += extra;
        Ok(())
    }

    /// Releases `id`'s allocation, returning the freed block count.
    pub fn release(&mut self, id: RequestId) -> Result<u32, BlockError> {
        self.allocations
            .remove(&id)
            .ok_or(BlockError::UnknownRequest(id))
    }

    /// Reserves `blocks` for an incoming migration stage (destination side of
    /// the pre-allocate handshake). Fails without side effects when space is
    /// insufficient, which makes the source abort the migration.
    pub fn reserve(&mut self, blocks: u32) -> Result<ReservationId, BlockError> {
        let free = self.free_blocks();
        if blocks > free {
            return Err(BlockError::OutOfBlocks {
                requested: blocks,
                free,
            });
        }
        let id = ReservationId(self.next_reservation);
        self.next_reservation += 1;
        self.reservations.insert(id, blocks);
        Ok(id)
    }

    /// Grows an existing reservation by `extra` blocks (later stages).
    pub fn grow_reservation(&mut self, id: ReservationId, extra: u32) -> Result<(), BlockError> {
        if !self.reservations.contains_key(&id) {
            return Err(BlockError::UnknownReservation(id));
        }
        let free = self.free_blocks();
        if extra > free {
            return Err(BlockError::OutOfBlocks {
                requested: extra,
                free,
            });
        }
        *self.reservations.get_mut(&id).expect("checked above") += extra;
        Ok(())
    }

    /// Aborts a reservation, returning its blocks to the free pool.
    pub fn release_reservation(&mut self, id: ReservationId) -> Result<u32, BlockError> {
        self.reservations
            .remove(&id)
            .ok_or(BlockError::UnknownReservation(id))
    }

    /// Commits a reservation: its blocks become `req`'s allocation (migration
    /// commit on the destination).
    pub fn commit_reservation(
        &mut self,
        id: ReservationId,
        req: RequestId,
    ) -> Result<u32, BlockError> {
        if self.allocations.contains_key(&req) {
            return Err(BlockError::AlreadyAllocated(req));
        }
        let blocks = self
            .reservations
            .remove(&id)
            .ok_or(BlockError::UnknownReservation(id))?;
        self.allocations.insert(req, blocks);
        Ok(blocks)
    }

    /// Internal consistency check: allocation + reservation + free == total.
    pub fn check_invariants(&self) -> bool {
        self.allocated_blocks() + self.reserved_blocks() + self.free_blocks() == self.total
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rid(n: u64) -> RequestId {
        RequestId(n)
    }

    #[test]
    fn allocate_grow_release() {
        let mut bm = BlockManager::new(10);
        bm.allocate(rid(1), 4).unwrap();
        assert_eq!(bm.free_blocks(), 6);
        bm.grow(rid(1), 2).unwrap();
        assert_eq!(bm.blocks_of(rid(1)), 6);
        assert_eq!(bm.release(rid(1)).unwrap(), 6);
        assert_eq!(bm.free_blocks(), 10);
        assert!(bm.check_invariants());
    }

    #[test]
    fn allocation_is_all_or_nothing() {
        let mut bm = BlockManager::new(5);
        bm.allocate(rid(1), 3).unwrap();
        let err = bm.allocate(rid(2), 4).unwrap_err();
        assert_eq!(
            err,
            BlockError::OutOfBlocks {
                requested: 4,
                free: 2
            }
        );
        // Failed allocation left no residue.
        assert_eq!(bm.free_blocks(), 2);
        assert_eq!(bm.blocks_of(rid(2)), 0);
    }

    #[test]
    fn double_allocation_rejected() {
        let mut bm = BlockManager::new(5);
        bm.allocate(rid(1), 1).unwrap();
        assert_eq!(
            bm.allocate(rid(1), 1).unwrap_err(),
            BlockError::AlreadyAllocated(rid(1))
        );
    }

    #[test]
    fn grow_unknown_rejected() {
        let mut bm = BlockManager::new(5);
        assert_eq!(
            bm.grow(rid(9), 1).unwrap_err(),
            BlockError::UnknownRequest(rid(9))
        );
        assert_eq!(
            bm.release(rid(9)).unwrap_err(),
            BlockError::UnknownRequest(rid(9))
        );
    }

    #[test]
    fn reservations_hold_space() {
        let mut bm = BlockManager::new(10);
        let r = bm.reserve(6).unwrap();
        assert_eq!(bm.free_blocks(), 4);
        // Allocation can't take reserved space.
        assert!(bm.allocate(rid(1), 5).is_err());
        bm.grow_reservation(r, 2).unwrap();
        assert_eq!(bm.reserved_blocks(), 8);
        assert_eq!(bm.release_reservation(r).unwrap(), 8);
        assert_eq!(bm.free_blocks(), 10);
        assert!(bm.check_invariants());
    }

    #[test]
    fn commit_turns_reservation_into_allocation() {
        let mut bm = BlockManager::new(10);
        let r = bm.reserve(6).unwrap();
        let blocks = bm.commit_reservation(r, rid(7)).unwrap();
        assert_eq!(blocks, 6);
        assert_eq!(bm.blocks_of(rid(7)), 6);
        assert_eq!(bm.reserved_blocks(), 0);
        // The reservation is consumed.
        assert!(bm.release_reservation(r).is_err());
        assert!(bm.check_invariants());
    }

    #[test]
    fn commit_rejects_existing_allocation_and_keeps_reservation() {
        let mut bm = BlockManager::new(10);
        bm.allocate(rid(7), 2).unwrap();
        let r = bm.reserve(3).unwrap();
        assert_eq!(
            bm.commit_reservation(r, rid(7)).unwrap_err(),
            BlockError::AlreadyAllocated(rid(7))
        );
        // Reservation untouched by the failed commit.
        assert_eq!(bm.reserved_blocks(), 3);
    }

    #[test]
    fn reserve_fails_cleanly_when_full() {
        let mut bm = BlockManager::new(4);
        bm.allocate(rid(1), 3).unwrap();
        assert!(bm.reserve(2).is_err());
        assert_eq!(bm.free_blocks(), 1);
        assert!(bm.check_invariants());
    }

    #[test]
    fn utilization() {
        let mut bm = BlockManager::new(10);
        assert_eq!(bm.utilization(), 0.0);
        bm.allocate(rid(1), 5).unwrap();
        assert!((bm.utilization() - 0.5).abs() < 1e-12);
        let _ = bm.reserve(5).unwrap();
        assert!((bm.utilization() - 1.0).abs() < 1e-12);
        assert_eq!(BlockManager::new(0).utilization(), 0.0);
    }
}
