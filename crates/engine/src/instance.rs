//! The per-instance inference engine.
//!
//! [`InstanceEngine`] reproduces the scheduling-relevant behaviour of a vLLM
//! instance (§2): continuous batching (requests join/leave the running batch
//! at iteration boundaries), dynamic paged KV allocation, all-at-once prefill
//! admission (the fragmentation driver), and recompute-style preemption when
//! decode growth runs out of blocks. Step durations come from the calibrated
//! cost model; the engine itself is deterministic.
//!
//! The engine also exposes the hooks live migration needs: reservations on
//! the destination, drain/snapshot/commit on the source, and a small
//! decode-overhead factor while migrations are in flight (§6.2 measures ≈1%).

use std::collections::{BTreeSet, HashMap};

use llumnix_model::{CostModel, DecodeBatch, DecodeCostMemo, InstanceSpec, PrefillBatch};
use llumnix_sim::{SimDuration, SimTime};

use crate::block::{BlockError, BlockManager, ReservationId};
use crate::queue::{QueueOrder, WaitQueue};
use crate::request::{Phase, RequestId, RequestMeta, SeqState};

/// Unique instance identifier.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct InstanceId(pub u32);

impl core::fmt::Display for InstanceId {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "i{}", self.0)
    }
}

/// Engine tunables.
#[derive(Debug, Clone)]
pub struct EngineConfig {
    /// Max prompt tokens prefetched in one prefill step (vLLM's
    /// `max_num_batched_tokens`-style budget).
    pub max_prefill_tokens_per_step: u32,
    /// Decode/prefill slowdown while a migration touches this instance
    /// (paper §6.2: ≈1%).
    pub migration_overhead_factor: f64,
    /// How preempted requests recover their KV cache.
    pub preemption_mode: PreemptionMode,
    /// Cap on concurrently running sequences (vLLM's `max_num_seqs`).
    pub max_batch_size: usize,
    /// Queue ordering within a scheduling-priority class.
    pub queue_order: QueueOrder,
    /// Blocks kept free at admission (vLLM's `watermark`): a new request is
    /// only admitted if `needed + watermark` blocks are free, leaving slack
    /// for the running batch's growth and reducing immediate re-preemption.
    /// 0 reproduces the calibrated behaviour of this repo's experiments.
    pub admission_watermark_blocks: u32,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            max_prefill_tokens_per_step: 4096,
            migration_overhead_factor: 1.01,
            preemption_mode: PreemptionMode::Recompute,
            max_batch_size: 256,
            queue_order: QueueOrder::Fcfs,
            admission_watermark_blocks: 0,
        }
    }
}

/// vLLM's two preemption-recovery strategies.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum PreemptionMode {
    /// Drop the KV cache and recompute it when rescheduled (the mode the
    /// paper's experiments run under).
    #[default]
    Recompute,
    /// Swap the KV cache to host memory over PCIe and swap it back in when
    /// rescheduled. Swap-out overlaps with compute (a side copy stream);
    /// swap-in stalls the readmission step for the transfer time.
    Swap,
}

/// What a planned step computes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StepKind {
    /// Prefill (or preemption recompute) of the listed requests.
    Prefill(Vec<RequestId>),
    /// One decode iteration for the listed requests.
    Decode(Vec<RequestId>),
}

/// A step the engine has committed to run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StepPlan {
    /// What the step computes.
    pub kind: StepKind,
    /// When the step started.
    pub started: SimTime,
    /// How long it runs.
    pub duration: SimDuration,
}

impl StepPlan {
    /// When the step finishes.
    pub fn finish_at(&self) -> SimTime {
        self.started + self.duration
    }
}

/// Events surfaced to the cluster on step completion and drains.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EngineEvent {
    /// The request emitted its first token (prefill done).
    FirstToken(RequestId),
    /// The request generated EOS and finished.
    Finished(RequestId),
    /// The request was preempted (blocks released, back to the queue).
    Preempted(RequestId),
    /// The request left the batch for its final migration stage.
    Drained(RequestId),
    /// The request can never fit on this instance and was aborted.
    Aborted(RequestId),
}

/// Outcome of a drain request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DrainOutcome {
    /// Removed from the batch immediately (no step in flight).
    Drained,
    /// A step is in flight; the drain completes when it finishes.
    Pending,
    /// The request is not in the running batch.
    NotRunning,
}

/// Running counters for one instance.
#[derive(Debug, Clone, Copy, Default)]
pub struct EngineStats {
    /// Decode steps executed.
    pub decode_steps: u64,
    /// Prefill steps executed.
    pub prefill_steps: u64,
    /// Preemptions performed.
    pub preemptions: u64,
    /// Requests finished on this instance.
    pub finished: u64,
    /// Total busy time (steps in flight).
    pub busy_time: SimDuration,
}

/// A vLLM-like serving instance.
///
/// `Clone` supports the sim-level snapshot/fork capability: a clone is an
/// independent engine with identical batches, block ledgers, and in-flight
/// step, continuing byte-identically.
#[derive(Clone)]
pub struct InstanceEngine {
    /// Instance id.
    pub id: InstanceId,
    spec: InstanceSpec,
    config: EngineConfig,
    blocks: BlockManager,
    waiting: WaitQueue,
    prefill_pending: Vec<RequestId>,
    running: Vec<RequestId>,
    /// Per-request state. Hot lookups keep it a hash map; every iteration
    /// over it must either be order-insensitive or sort before use.
    states: HashMap<RequestId, SeqState>,
    in_flight: Option<StepPlan>,
    /// Drains deferred to the step boundary. A `BTreeSet` so the boundary
    /// flush emits `Drained` events in id order, not hasher order.
    drain_requested: BTreeSet<RequestId>,
    active_migrations: u32,
    finished: Vec<SeqState>,
    pending_events: Vec<EngineEvent>,
    stats: EngineStats,
    version: u64,
    decode_memo: DecodeCostMemo,
}

impl InstanceEngine {
    /// Creates an idle instance.
    pub fn new(id: InstanceId, spec: InstanceSpec, config: EngineConfig) -> Self {
        let blocks = BlockManager::new(spec.geometry.total_blocks);
        let waiting = WaitQueue::with_order(config.queue_order);
        InstanceEngine {
            id,
            spec,
            config,
            blocks,
            waiting,
            prefill_pending: Vec::new(),
            running: Vec::new(),
            states: HashMap::new(),
            in_flight: None,
            drain_requested: BTreeSet::new(),
            active_migrations: 0,
            finished: Vec::new(),
            pending_events: Vec::new(),
            stats: EngineStats::default(),
            version: 0,
            decode_memo: DecodeCostMemo::new(),
        }
    }

    /// The instance spec.
    pub fn spec(&self) -> &InstanceSpec {
        &self.spec
    }

    /// Running counters.
    pub fn stats(&self) -> &EngineStats {
        &self.stats
    }

    /// A counter bumped by every mutating call, so load reports derived from
    /// this engine can be cached and invalidated without tracking which
    /// mutation touched which signal.
    pub fn version(&self) -> u64 {
        self.version
    }

    fn touch(&mut self) {
        self.version = self.version.wrapping_add(1);
    }

    // ---- request intake -------------------------------------------------

    /// Enqueues a newly dispatched request.
    pub fn add_request(&mut self, meta: RequestMeta, now: SimTime) {
        self.touch();
        debug_assert!(!self.states.contains_key(&meta.id), "duplicate {}", meta.id);
        let state = SeqState::new(meta, now);
        self.waiting.insert_with_demand(
            meta.id,
            meta.priority.scheduling,
            meta.arrival,
            state.required_tokens(),
        );
        self.states.insert(meta.id, state);
    }

    /// Aborts a request wherever it is (failure injection / cancellations).
    /// Returns its state if it was known.
    pub fn abort_request(&mut self, id: RequestId) -> Option<SeqState> {
        self.touch();
        self.waiting.remove(id);
        self.prefill_pending.retain(|&r| r != id);
        self.running.retain(|&r| r != id);
        self.drain_requested.remove(&id);
        if self.blocks.blocks_of(id) > 0 {
            let _ = self.blocks.release(id);
        }
        self.states.remove(&id)
    }

    // ---- step loop -------------------------------------------------------

    /// Whether a step is currently in flight.
    pub fn step_in_flight(&self) -> bool {
        self.in_flight.is_some()
    }

    /// When the in-flight step (if any) completes. Until then the engine
    /// produces no events on its own: steps are planned one at a time, and a
    /// new one starts only from a completion or an external kick. The sharded
    /// core's window autotuner leans on exactly this to bound when an
    /// instance can next emit anything (DESIGN.md §12).
    pub fn in_flight_finish(&self) -> Option<SimTime> {
        self.in_flight.as_ref().map(StepPlan::finish_at)
    }

    /// Whether the instance has any request in any phase.
    pub fn has_work(&self) -> bool {
        !self.waiting.is_empty() || !self.prefill_pending.is_empty() || !self.running.is_empty()
    }

    /// Plans the next step if the engine is idle and work is runnable.
    ///
    /// Performs admission (all-or-nothing block allocation for the
    /// head-of-line request), preemption when decode growth cannot be
    /// satisfied, and returns the planned step. The caller schedules a
    /// completion event at `plan.finish_at()` and then calls
    /// [`InstanceEngine::complete_step`].
    pub fn poll_step(&mut self, now: SimTime) -> Option<StepPlan> {
        if self.in_flight.is_some() {
            return None;
        }
        self.touch();
        self.admit(now);
        let plan = if !self.prefill_pending.is_empty() {
            Some(self.plan_prefill(now))
        } else {
            self.plan_decode(now)
        };
        if let Some(p) = &plan {
            self.in_flight = Some(p.clone());
        }
        plan
    }

    /// Admits waiting requests while the head-of-line request fits (both in
    /// blocks and under the batch-size cap).
    fn admit(&mut self, now: SimTime) {
        while let Some(head) = self.waiting.head() {
            if self.running.len() + self.prefill_pending.len() >= self.config.max_batch_size {
                break;
            }
            let state = self.states.get(&head).expect("queued request has state");
            let needed = self
                .spec
                .geometry
                .blocks_for_tokens(state.required_tokens());
            let watermark = self.config.admission_watermark_blocks;
            if needed.saturating_add(watermark) > self.blocks.total_blocks() {
                // Can never fit on this instance: abort rather than deadlock.
                self.waiting.pop_head();
                let mut state = self.states.remove(&head).expect("present");
                state.finished_at = Some(now);
                state.aborted = true;
                self.finished.push(state);
                self.pending_events.push(EngineEvent::Aborted(head));
                continue;
            }
            if self.blocks.free_blocks() < needed.saturating_add(watermark) {
                break;
            }
            match self.blocks.allocate(head, needed) {
                Ok(()) => {
                    self.waiting.pop_head();
                    let state = self.states.get_mut(&head).expect("present");
                    state.phase = Phase::Prefilling;
                    state.blocks_held = needed;
                    self.prefill_pending.push(head);
                }
                Err(BlockError::OutOfBlocks { .. }) => break,
                Err(e) => unreachable!("admission allocate: {e}"),
            }
        }
    }

    /// Plans a prefill step over pending admissions, within the token budget.
    ///
    /// Swapped-out requests in the batch contribute a PCIe swap-in transfer
    /// instead of prefill compute.
    fn plan_prefill(&mut self, now: SimTime) -> StepPlan {
        let mut ids = Vec::new();
        let mut total = 0u64;
        let mut max = 0u64;
        let mut swap_tokens = 0u64;
        let budget = self.config.max_prefill_tokens_per_step as u64;
        let mut rest = Vec::new();
        for id in std::mem::take(&mut self.prefill_pending) {
            let s = &self.states[&id];
            let tokens = s.required_tokens() as u64;
            if !ids.is_empty() && total + tokens > budget {
                rest.push(id);
                continue;
            }
            if s.swapped_out {
                swap_tokens += tokens;
            } else {
                total += tokens;
                max = max.max(tokens);
            }
            ids.push(id);
        }
        self.prefill_pending = rest;
        let compute = self.spec.cost.prefill_step(PrefillBatch {
            num_seqs: ids.iter().filter(|id| !self.states[id].swapped_out).count() as u32,
            total_tokens: total,
            max_tokens: max,
        });
        let swap_in = self.swap_in_time(swap_tokens);
        let duration = (compute + swap_in).mul_f64(self.overhead_factor());
        self.stats.prefill_steps += 1;
        StepPlan {
            kind: StepKind::Prefill(ids),
            started: now,
            duration,
        }
    }

    /// PCIe transfer time to swap `tokens` of KV back into device memory.
    fn swap_in_time(&self, tokens: u64) -> SimDuration {
        if tokens == 0 {
            return SimDuration::ZERO;
        }
        let bytes = self.spec.model.kv_bytes_per_token() * tokens;
        SimDuration::from_millis(1)
            + SimDuration::from_secs_f64(bytes as f64 / self.spec.transfer.pcie_bandwidth)
    }

    /// Plans one decode iteration, preempting if block growth cannot fit.
    fn plan_decode(&mut self, now: SimTime) -> Option<StepPlan> {
        if self.running.is_empty() {
            return None;
        }
        // Grow each sequence's allocation for the token this step appends.
        // Victims are chosen lowest-execution-priority first, then latest
        // arrival (vLLM preempts the most recent request).
        loop {
            let mut needed_per_req: Vec<(RequestId, u32)> = Vec::new();
            let mut total_needed = 0u32;
            for &id in &self.running {
                let s = &self.states[&id];
                let target = self.spec.geometry.blocks_for_tokens(s.cached_tokens + 1);
                let extra = target.saturating_sub(s.blocks_held);
                if extra > 0 {
                    needed_per_req.push((id, extra));
                    total_needed += extra;
                }
            }
            if total_needed <= self.blocks.free_blocks() {
                for (id, extra) in needed_per_req {
                    self.blocks.grow(id, extra).expect("checked total");
                    self.states.get_mut(&id).expect("running").blocks_held += extra;
                }
                break;
            }
            if !self.preempt_one(now) {
                // Only one request left and it still cannot grow: it can
                // never proceed here. Preempt it too; admission will abort
                // it if it cannot ever fit.
                if !self.running.is_empty() {
                    let id = self.running[0];
                    self.preempt(id, now);
                    continue;
                }
                return None;
            }
        }
        if self.running.is_empty() {
            return None;
        }
        let total_tokens: u64 = self
            .running
            .iter()
            .map(|id| self.states[id].total_len() as u64)
            .sum();
        let duration = self
            .decode_memo
            .decode_step(
                &self.spec.cost,
                DecodeBatch {
                    num_seqs: self.running.len() as u32,
                    total_tokens,
                },
            )
            .mul_f64(self.overhead_factor());
        self.stats.decode_steps += 1;
        Some(StepPlan {
            kind: StepKind::Decode(self.running.clone()),
            started: now,
            duration,
        })
    }

    /// Preempts the best victim among running requests, if more than one is
    /// running. Returns whether a victim was preempted.
    fn preempt_one(&mut self, now: SimTime) -> bool {
        if self.running.len() <= 1 {
            return false;
        }
        let victim = self
            .running
            .iter()
            .copied()
            .min_by_key(|id| {
                let s = &self.states[id];
                // Lowest execution priority first; break ties by latest
                // arrival (newest request loses).
                (
                    s.meta.priority.execution,
                    core::cmp::Reverse(s.meta.arrival),
                    core::cmp::Reverse(s.meta.id),
                )
            })
            .expect("non-empty running");
        self.preempt(victim, now);
        true
    }

    /// Preempts `id`: releases its blocks and re-queues it for recompute or
    /// swap-in, per the configured [`PreemptionMode`].
    fn preempt(&mut self, id: RequestId, now: SimTime) {
        self.running.retain(|&r| r != id);
        let _ = self.blocks.release(id);
        let mode = self.config.preemption_mode;
        let s = self.states.get_mut(&id).expect("running request has state");
        s.phase = Phase::Waiting;
        s.cached_tokens = 0;
        s.blocks_held = 0;
        s.swapped_out = mode == PreemptionMode::Swap;
        s.preemptions += 1;
        s.preempted_at = Some(now);
        s.enqueued_at = now;
        self.stats.preemptions += 1;
        let demand = s.required_tokens();
        let (sched, arrival) = (s.meta.priority.scheduling, s.meta.arrival);
        self.waiting.insert_with_demand(id, sched, arrival, demand);
        // An in-progress drain of a preempted request is void: the migration
        // coordinator observes the Preempted event and aborts.
        self.drain_requested.remove(&id);
        self.pending_events.push(EngineEvent::Preempted(id));
    }

    /// Drains events produced outside `complete_step` (preemptions during
    /// step planning, admission-time aborts). Callers should collect these
    /// after every [`InstanceEngine::poll_step`].
    pub fn take_pending_events(&mut self) -> Vec<EngineEvent> {
        self.touch();
        std::mem::take(&mut self.pending_events)
    }

    /// Completes the in-flight step, applying token/bookkeeping effects.
    ///
    /// # Panics
    ///
    /// Panics if no step is in flight (a scheduling logic error).
    pub fn complete_step(&mut self, now: SimTime) -> Vec<EngineEvent> {
        self.touch();
        let plan = self.in_flight.take().expect("complete_step without a step");
        self.stats.busy_time += plan.duration;
        let mut events = std::mem::take(&mut self.pending_events);
        match plan.kind {
            StepKind::Prefill(ids) => {
                for id in ids {
                    // The request may have been aborted mid-step.
                    let Some(s) = self.states.get_mut(&id) else {
                        continue;
                    };
                    s.cached_tokens = s.required_tokens();
                    if s.swapped_out {
                        // Swap-in restores the KV; no new token is produced.
                        s.swapped_out = false;
                        if let Some(t) = s.preempted_at.take() {
                            s.preemption_loss += now.since(t);
                        }
                        s.phase = Phase::Running;
                        self.running.push(id);
                        continue;
                    }
                    s.generated += 1;
                    s.note_token(now);
                    // Prefill's emitted token needs its KV slot for the next
                    // iteration; growth is handled at the next decode plan.
                    if s.first_token_at.is_none() {
                        s.first_token_at = Some(now);
                        events.push(EngineEvent::FirstToken(id));
                    }
                    if let Some(t) = s.preempted_at.take() {
                        s.preemption_loss += now.since(t);
                    }
                    if s.is_complete() {
                        events.push(EngineEvent::Finished(id));
                        self.finish(id, now);
                    } else {
                        let s = self.states.get_mut(&id).expect("present");
                        s.phase = Phase::Running;
                        self.running.push(id);
                    }
                }
            }
            StepKind::Decode(ids) => {
                for id in ids {
                    // Skip requests that left the batch mid-step (aborted).
                    if !self.running.contains(&id) {
                        continue;
                    }
                    let s = self.states.get_mut(&id).expect("running request");
                    s.generated += 1;
                    s.cached_tokens += 1;
                    s.note_token(now);
                    s.decode_compute += plan.duration;
                    if s.is_complete() {
                        events.push(EngineEvent::Finished(id));
                        self.running.retain(|&r| r != id);
                        self.drain_requested.remove(&id);
                        self.finish(id, now);
                    }
                }
            }
        }
        // Apply drains requested while the step was in flight, in id order.
        let pending: Vec<RequestId> = std::mem::take(&mut self.drain_requested)
            .into_iter()
            .collect();
        for id in pending {
            if self.running.contains(&id) {
                self.do_drain(id);
                events.push(EngineEvent::Drained(id));
            }
        }
        events
    }

    /// Marks `id` finished and parks its state for collection.
    fn finish(&mut self, id: RequestId, now: SimTime) {
        let _ = self.blocks.release(id);
        let mut s = self.states.remove(&id).expect("finishing request");
        s.phase = Phase::Finished;
        s.finished_at = Some(now);
        s.blocks_held = 0;
        self.stats.finished += 1;
        self.finished.push(s);
    }

    /// Takes the states of requests that finished (or were aborted at
    /// admission) since the last call.
    pub fn take_finished(&mut self) -> Vec<SeqState> {
        self.touch();
        std::mem::take(&mut self.finished)
    }

    // ---- migration hooks -------------------------------------------------

    /// Requests that a running request leave the batch for its final
    /// migration stage.
    pub fn request_drain(&mut self, id: RequestId) -> DrainOutcome {
        self.touch();
        if !self.running.contains(&id) {
            return DrainOutcome::NotRunning;
        }
        if self.in_flight.is_some() {
            self.drain_requested.insert(id);
            return DrainOutcome::Pending;
        }
        self.do_drain(id);
        DrainOutcome::Drained
    }

    fn do_drain(&mut self, id: RequestId) {
        self.running.retain(|&r| r != id);
        self.states.get_mut(&id).expect("draining request").phase = Phase::Draining;
    }

    /// Cancels a pending (not yet executed) drain request, e.g. when the
    /// migration that asked for it aborts before the step boundary.
    pub fn cancel_drain(&mut self, id: RequestId) {
        self.touch();
        self.drain_requested.remove(&id);
    }

    /// Re-inserts a drained request into the batch (migration aborted after
    /// the drain, e.g. destination failure).
    pub fn undrain(&mut self, id: RequestId) {
        self.touch();
        let s = self.states.get_mut(&id).expect("undrain unknown request");
        assert_eq!(s.phase, Phase::Draining, "undrain of non-draining {id}");
        s.phase = Phase::Running;
        self.running.push(id);
    }

    /// Read-only state of a resident request.
    pub fn state(&self, id: RequestId) -> Option<&SeqState> {
        self.states.get(&id)
    }

    /// Mutable state access for the migration coordinator's accounting.
    pub fn state_mut(&mut self, id: RequestId) -> Option<&mut SeqState> {
        self.touch();
        self.states.get_mut(&id)
    }

    /// Running requests eligible to migrate out (decoding, not already
    /// draining), as `(id, execution priority, current length)`.
    pub fn migratable_requests(&self) -> Vec<(RequestId, crate::request::Priority, u32)> {
        self.running
            .iter()
            .filter(|id| !self.drain_requested.contains(id))
            .map(|id| {
                let s = &self.states[id];
                (*id, s.meta.priority.execution, s.total_len())
            })
            .collect()
    }

    /// Removes a migrated-out request entirely, releasing its blocks
    /// (the source side of the migration commit). Returns its state.
    pub fn finish_migration_out(&mut self, id: RequestId) -> SeqState {
        self.touch();
        let _ = self.blocks.release(id);
        let mut s = self
            .states
            .remove(&id)
            .expect("migrating request has state");
        s.blocks_held = 0;
        s
    }

    /// Installs a migrated-in request: its reservation becomes a live
    /// allocation and it joins the running batch directly (no re-prefill —
    /// the KV arrived with it).
    pub fn insert_migrated(
        &mut self,
        mut state: SeqState,
        reservation: ReservationId,
    ) -> Result<(), BlockError> {
        self.touch();
        let id = state.meta.id;
        let blocks = self.blocks.commit_reservation(reservation, id)?;
        state.blocks_held = blocks;
        state.phase = Phase::Running;
        self.running.push(id);
        self.states.insert(id, state);
        Ok(())
    }

    /// Reserves blocks for an incoming migration stage.
    pub fn reserve_blocks(&mut self, blocks: u32) -> Result<ReservationId, BlockError> {
        self.touch();
        self.blocks.reserve(blocks)
    }

    /// Grows an incoming migration's reservation.
    pub fn grow_reservation(&mut self, id: ReservationId, extra: u32) -> Result<(), BlockError> {
        self.touch();
        self.blocks.grow_reservation(id, extra)
    }

    /// Releases an aborted migration's reservation.
    pub fn release_reservation(&mut self, id: ReservationId) -> Result<u32, BlockError> {
        self.touch();
        self.blocks.release_reservation(id)
    }

    /// Registers that a migration started touching this instance.
    pub fn migration_started(&mut self) {
        self.touch();
        self.active_migrations += 1;
    }

    /// Registers that a migration stopped touching this instance.
    pub fn migration_ended(&mut self) {
        self.touch();
        debug_assert!(self.active_migrations > 0);
        self.active_migrations = self.active_migrations.saturating_sub(1);
    }

    fn overhead_factor(&self) -> f64 {
        if self.active_migrations > 0 {
            self.config.migration_overhead_factor
        } else {
            1.0
        }
    }

    // ---- load queries ----------------------------------------------------

    /// Free KV blocks.
    pub fn free_blocks(&self) -> u32 {
        self.blocks.free_blocks()
    }

    /// Total KV blocks.
    pub fn total_blocks(&self) -> u32 {
        self.blocks.total_blocks()
    }

    /// Blocks physically held by a request.
    pub fn physical_blocks_of(&self, id: RequestId) -> u32 {
        self.blocks.blocks_of(id)
    }

    /// A [`DecodeBatch`] summary of the current running batch, used by the
    /// migration coordinator to estimate the current step time.
    pub fn decode_batch_hint(&self) -> DecodeBatch {
        DecodeBatch {
            num_seqs: self.running.len() as u32,
            total_tokens: self
                .running
                .iter()
                .map(|id| self.states[id].total_len() as u64)
                .sum(),
        }
    }

    /// Number of requests in the running batch (the freeness denominator).
    pub fn batch_size(&self) -> usize {
        self.running.len() + self.prefill_pending.len()
    }

    /// Number of queued requests.
    pub fn waiting_len(&self) -> usize {
        self.waiting.len()
    }

    /// Ids in the running batch.
    pub fn running_ids(&self) -> &[RequestId] {
        &self.running
    }

    /// Ids admitted and awaiting prefill.
    pub fn prefill_pending_ids(&self) -> &[RequestId] {
        &self.prefill_pending
    }

    /// Queued ids in scheduling order.
    pub fn waiting_ids(&self) -> Vec<RequestId> {
        self.waiting.iter().collect()
    }

    /// Number of live (unfinished) requests the engine tracks, in any phase:
    /// queued, admitted, inside an in-flight step, running, or draining.
    pub fn tracked_requests(&self) -> usize {
        self.states.len()
    }

    /// Every live request the engine tracks, in a deterministic redispatch
    /// order: the running batch, then pending prefills, then the queue, then
    /// anything else (draining or swapped states) in ascending id order.
    /// Covers exactly the [`tracked_requests`](Self::tracked_requests) set —
    /// the roster a failure handler must account for when the instance dies.
    pub fn tracked_ids(&self) -> Vec<RequestId> {
        let mut seen = std::collections::BTreeSet::new();
        let mut out: Vec<RequestId> = Vec::with_capacity(self.states.len());
        for id in self
            .running
            .iter()
            .chain(self.prefill_pending.iter())
            .copied()
            .chain(self.waiting.iter())
        {
            if seen.insert(id) {
                out.push(id);
            }
        }
        let mut rest: Vec<RequestId> = self
            .states
            .keys()
            .filter(|id| !seen.contains(id))
            .copied()
            .collect();
        rest.sort_unstable();
        out.extend(rest);
        debug_assert_eq!(out.len(), self.states.len(), "tracked_ids missed a state");
        out
    }

    /// Ids currently drained out of the batch for a final migration stage,
    /// in ascending id order.
    pub fn draining_ids(&self) -> Vec<RequestId> {
        let mut ids: Vec<RequestId> = self
            .states
            .iter()
            .filter(|(_, s)| s.phase == Phase::Draining)
            .map(|(&id, _)| id)
            .collect();
        ids.sort_unstable();
        ids
    }

    /// The head-of-line queued request and its block demand, if any.
    pub fn head_of_line_demand(&self) -> Option<(RequestId, u32)> {
        self.waiting.head().map(|id| {
            let s = &self.states[&id];
            (
                id,
                self.spec.geometry.blocks_for_tokens(s.required_tokens()),
            )
        })
    }

    /// Sum of blocks demanded by *all* queued requests (INFaaS++'s queue
    /// pressure signal).
    pub fn queued_demand_blocks(&self) -> u32 {
        self.waiting
            .iter()
            .map(|id| {
                self.spec
                    .geometry
                    .blocks_for_tokens(self.states[&id].required_tokens())
            })
            .sum()
    }

    /// Verifies internal invariants (tests and debug assertions).
    pub fn check_invariants(&self) -> bool {
        let block_sum: u32 = self.states.values().map(|s| s.blocks_held).sum();
        block_sum == self.blocks.allocated_blocks() && self.blocks.check_invariants()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::request::PriorityPair;
    use llumnix_model::InstanceSpec;

    fn meta(id: u64, input: u32, output: u32, arrival_s: u64) -> RequestMeta {
        RequestMeta {
            id: RequestId(id),
            input_len: input,
            output_len: output,
            priority: PriorityPair::NORMAL,
            arrival: SimTime::from_secs(arrival_s),
        }
    }

    fn engine(capacity_tokens: u32) -> InstanceEngine {
        InstanceEngine::new(
            InstanceId(0),
            InstanceSpec::tiny_for_tests(capacity_tokens),
            EngineConfig::default(),
        )
    }

    /// Runs the engine until idle, returning all events with times.
    fn run_to_idle(
        e: &mut InstanceEngine,
        mut now: SimTime,
    ) -> (SimTime, Vec<(SimTime, EngineEvent)>) {
        let mut events = Vec::new();
        while let Some(plan) = e.poll_step(now) {
            now = plan.finish_at();
            for ev in e.complete_step(now) {
                events.push((now, ev));
            }
            assert!(e.check_invariants());
        }
        (now, events)
    }

    #[test]
    fn single_request_lifecycle() {
        let mut e = engine(1024);
        e.add_request(meta(1, 32, 4, 0), SimTime::ZERO);
        assert!(e.has_work());
        let (_, events) = run_to_idle(&mut e, SimTime::ZERO);
        let kinds: Vec<&EngineEvent> = events.iter().map(|(_, ev)| ev).collect();
        assert!(matches!(kinds[0], EngineEvent::FirstToken(RequestId(1))));
        assert!(matches!(
            kinds.last().expect("events"),
            EngineEvent::Finished(RequestId(1))
        ));
        let fin = e.take_finished();
        assert_eq!(fin.len(), 1);
        assert_eq!(fin[0].generated, 4);
        assert!(fin[0].first_token_at.is_some());
        assert_eq!(e.free_blocks(), e.total_blocks());
        assert!(!e.has_work());
    }

    #[test]
    fn output_of_one_finishes_at_prefill() {
        let mut e = engine(1024);
        e.add_request(meta(1, 32, 1, 0), SimTime::ZERO);
        let (_, events) = run_to_idle(&mut e, SimTime::ZERO);
        assert_eq!(events.len(), 2);
        assert!(matches!(events[0].1, EngineEvent::FirstToken(_)));
        assert!(matches!(events[1].1, EngineEvent::Finished(_)));
        // Exactly one step ran (the prefill).
        assert_eq!(e.stats().prefill_steps, 1);
        assert_eq!(e.stats().decode_steps, 0);
    }

    #[test]
    fn continuous_batching_admits_mid_flight() {
        let mut e = engine(4096);
        e.add_request(meta(1, 64, 50, 0), SimTime::ZERO);
        // Run a couple of steps, then a second request arrives.
        let p1 = e.poll_step(SimTime::ZERO).expect("prefill");
        let t1 = p1.finish_at();
        e.complete_step(t1);
        e.add_request(meta(2, 64, 8, 0), t1);
        let (_, events) = run_to_idle(&mut e, t1);
        // Request 2 must finish long before request 1.
        let fin2 = events
            .iter()
            .find(|(_, ev)| matches!(ev, EngineEvent::Finished(RequestId(2))))
            .expect("r2 finishes");
        let fin1 = events
            .iter()
            .find(|(_, ev)| matches!(ev, EngineEvent::Finished(RequestId(1))))
            .expect("r1 finishes");
        assert!(fin2.0 < fin1.0, "continuous batching lets r2 leave early");
    }

    #[test]
    fn admission_blocks_when_memory_full() {
        // Capacity 96 tokens = 6 blocks. First request takes 4 blocks
        // (64 tokens), second needs 4 — must queue.
        let mut e = engine(96);
        e.add_request(meta(1, 64, 40, 0), SimTime::ZERO);
        e.add_request(meta(2, 64, 4, 0), SimTime::ZERO);
        let plan = e.poll_step(SimTime::ZERO).expect("step");
        match &plan.kind {
            StepKind::Prefill(ids) => assert_eq!(ids.as_slice(), &[RequestId(1)]),
            other => panic!("expected prefill, got {other:?}"),
        }
        assert_eq!(e.waiting_len(), 1);
        let (_, hol_demand) = e.head_of_line_demand().expect("queued head");
        assert_eq!(hol_demand, 4);
    }

    #[test]
    fn preemption_on_decode_growth() {
        // 6 blocks total. r1: 40 input → 3 blocks; r2: 40 input → 3 blocks.
        // Both admitted (6 blocks). Decode growth soon needs a 4th block for
        // one of them → the later request is preempted.
        let mut e = engine(96);
        e.add_request(meta(1, 40, 30, 0), SimTime::ZERO);
        e.add_request(meta(2, 40, 30, 1), SimTime::ZERO);
        let (_, events) = run_to_idle(&mut e, SimTime::ZERO);
        let preempted: Vec<RequestId> = events
            .iter()
            .filter_map(|(_, ev)| match ev {
                EngineEvent::Preempted(id) => Some(*id),
                _ => None,
            })
            .collect();
        assert!(
            preempted.contains(&RequestId(2)),
            "expected r2 preemption event, got {preempted:?}"
        );
        assert!(
            e.stats().preemptions > 0,
            "expected at least one preemption"
        );
        let fin = e.take_finished();
        assert_eq!(fin.len(), 2);
        // The later request (r2) was the victim.
        let r2 = fin.iter().find(|s| s.meta.id == RequestId(2)).expect("r2");
        assert!(r2.preemptions > 0);
        assert!(!r2.preemption_loss.is_zero());
        let r1 = fin.iter().find(|s| s.meta.id == RequestId(1)).expect("r1");
        assert_eq!(r1.preemptions, 0);
        // Both still completed fully.
        assert_eq!(r2.generated, 30);
        assert_eq!(r1.generated, 30);
    }

    #[test]
    fn oversized_request_is_aborted_not_deadlocked() {
        let mut e = engine(96);
        e.add_request(meta(1, 200, 10, 0), SimTime::ZERO);
        let plan = e.poll_step(SimTime::ZERO);
        assert!(plan.is_none());
        let fin = e.take_finished();
        assert_eq!(fin.len(), 1);
        assert_eq!(fin[0].generated, 0, "aborted before generating");
        assert!(!e.has_work());
    }

    #[test]
    fn high_scheduling_priority_admitted_first() {
        let mut e = engine(96);
        // Fill the instance so both new requests queue.
        e.add_request(meta(1, 80, 60, 0), SimTime::ZERO);
        let p = e.poll_step(SimTime::ZERO).expect("prefill r1");
        let t = p.finish_at();
        e.complete_step(t);
        e.add_request(meta(2, 40, 4, 1), t);
        let mut high = meta(3, 40, 4, 2);
        high.priority = PriorityPair::HIGH;
        e.add_request(high, t);
        // r3 arrived later but has high scheduling priority.
        assert_eq!(e.waiting_ids(), vec![RequestId(3), RequestId(2)]);
    }

    #[test]
    fn drain_waits_for_step_boundary() {
        let mut e = engine(1024);
        e.add_request(meta(1, 32, 50, 0), SimTime::ZERO);
        // Complete prefill so r1 decodes.
        let p = e.poll_step(SimTime::ZERO).expect("prefill");
        let t = p.finish_at();
        e.complete_step(t);
        let d = e.poll_step(t).expect("decode");
        // Mid-step drain is deferred.
        assert_eq!(e.request_drain(RequestId(1)), DrainOutcome::Pending);
        let t2 = d.finish_at();
        let events = e.complete_step(t2);
        assert!(events.contains(&EngineEvent::Drained(RequestId(1))));
        assert_eq!(e.state(RequestId(1)).expect("state").phase, Phase::Draining);
        // Blocks are still held at the source until commit.
        assert!(e.physical_blocks_of(RequestId(1)) > 0);
        // Finish the migration out; blocks release.
        let s = e.finish_migration_out(RequestId(1));
        assert_eq!(s.meta.id, RequestId(1));
        assert_eq!(e.free_blocks(), e.total_blocks());
    }

    #[test]
    fn drain_immediate_when_idle() {
        let mut e = engine(1024);
        e.add_request(meta(1, 32, 50, 0), SimTime::ZERO);
        let p = e.poll_step(SimTime::ZERO).expect("prefill");
        let t = p.finish_at();
        e.complete_step(t);
        // No step in flight now.
        assert_eq!(e.request_drain(RequestId(1)), DrainOutcome::Drained);
        assert_eq!(e.request_drain(RequestId(1)), DrainOutcome::NotRunning);
        // Undrain puts it back.
        e.undrain(RequestId(1));
        assert!(e.running_ids().contains(&RequestId(1)));
    }

    #[test]
    fn migrated_in_request_joins_batch_directly() {
        let mut src = engine(1024);
        src.add_request(meta(1, 32, 50, 0), SimTime::ZERO);
        let p = src.poll_step(SimTime::ZERO).expect("prefill");
        let t = p.finish_at();
        src.complete_step(t);
        assert_eq!(src.request_drain(RequestId(1)), DrainOutcome::Drained);
        let state = src.finish_migration_out(RequestId(1));

        let mut dst = engine(1024);
        let blocks = dst.spec().geometry.blocks_for_tokens(state.cached_tokens);
        let r = dst.reserve_blocks(blocks).expect("space");
        dst.insert_migrated(state, r).expect("commit");
        assert_eq!(dst.running_ids(), &[RequestId(1)]);
        // No prefill needed: next step is a decode.
        let plan = dst.poll_step(t).expect("decode");
        assert!(matches!(plan.kind, StepKind::Decode(_)));
        // And the request runs to completion on the destination.
        dst.complete_step(plan.finish_at());
        let (_, events) = run_to_idle(&mut dst, plan.finish_at());
        assert!(events
            .iter()
            .any(|(_, ev)| matches!(ev, EngineEvent::Finished(RequestId(1)))));
        let fin = dst.take_finished();
        assert_eq!(fin[0].generated, 50);
        assert!(dst.check_invariants());
    }

    #[test]
    fn migration_overhead_factor_applies() {
        let mut e = engine(1024);
        e.add_request(meta(1, 32, 10, 0), SimTime::ZERO);
        let p = e.poll_step(SimTime::ZERO).expect("prefill");
        let t = p.finish_at();
        e.complete_step(t);
        let base = e.poll_step(t).expect("decode").duration;
        e.complete_step(t + base);
        e.migration_started();
        let slowed = e.poll_step(t + base).expect("decode").duration;
        assert!(slowed > base);
        let ratio = slowed.as_secs_f64() / base.as_secs_f64();
        assert!((ratio - 1.01).abs() < 1e-3, "overhead ratio {ratio}");
        e.complete_step(t + base + slowed);
        e.migration_ended();
        let back = e.poll_step(t + base + slowed).expect("decode").duration;
        // The sequence grew by two tokens meanwhile, so compare ratios.
        let back_ratio = back.as_secs_f64() / base.as_secs_f64();
        assert!((back_ratio - 1.0).abs() < 1e-3, "back ratio {back_ratio}");
    }

    #[test]
    fn abort_request_cleans_up_everywhere() {
        let mut e = engine(1024);
        e.add_request(meta(1, 32, 50, 0), SimTime::ZERO);
        e.add_request(meta(2, 32, 50, 0), SimTime::ZERO);
        let p = e.poll_step(SimTime::ZERO).expect("prefill");
        let t = p.finish_at();
        e.complete_step(t);
        // r1/r2 both running now. Abort r1 mid-decode-step.
        let d = e.poll_step(t).expect("decode");
        assert!(e.abort_request(RequestId(1)).is_some());
        let _ = e.complete_step(d.finish_at());
        assert!(e.check_invariants());
        assert!(!e.running_ids().contains(&RequestId(1)));
        // r2 unaffected.
        assert!(e.running_ids().contains(&RequestId(2)));
        assert!(e.abort_request(RequestId(99)).is_none());
    }

    fn swap_engine(capacity: u32) -> InstanceEngine {
        InstanceEngine::new(
            InstanceId(0),
            InstanceSpec::tiny_for_tests(capacity),
            EngineConfig {
                preemption_mode: PreemptionMode::Swap,
                ..EngineConfig::default()
            },
        )
    }

    #[test]
    fn swap_preemption_resumes_without_recompute() {
        // Same memory-pressure scenario as `preemption_on_decode_growth`,
        // but with swap-mode recovery.
        let mut e = swap_engine(96);
        e.add_request(meta(1, 40, 30, 0), SimTime::ZERO);
        e.add_request(meta(2, 40, 30, 1), SimTime::ZERO);
        let (_, _) = run_to_idle(&mut e, SimTime::ZERO);
        assert!(e.stats().preemptions > 0, "expected preemption");
        let fin = e.take_finished();
        assert_eq!(fin.len(), 2);
        for s in &fin {
            // Token conservation holds through swap round trips.
            assert_eq!(s.generated, 30);
            assert!(!s.swapped_out, "flag cleared after swap-in");
        }
        let victim = fin.iter().find(|s| s.preemptions > 0).expect("victim");
        assert!(!victim.preemption_loss.is_zero());
        assert!(e.check_invariants());
        assert_eq!(e.free_blocks(), e.total_blocks());
    }

    #[test]
    fn swap_in_cheaper_than_recompute_for_long_sequences() {
        // Compare the readmission step duration for a 2k-token preempted
        // request under both modes: swap-in is a PCIe copy, recompute is a
        // full prefill.
        let run = |mode: PreemptionMode| -> SimDuration {
            let mut e = InstanceEngine::new(
                InstanceId(0),
                InstanceSpec::llama_7b_a10(),
                EngineConfig {
                    preemption_mode: mode,
                    ..EngineConfig::default()
                },
            );
            e.add_request(meta(1, 2_048, 100, 0), SimTime::ZERO);
            let p = e.poll_step(SimTime::ZERO).expect("prefill");
            let t = p.finish_at();
            e.complete_step(t);
            // Force a preemption by draining blocks via a fake reservation.
            let free = e.free_blocks();
            let _r = e.reserve_blocks(free).expect("reserve all");
            // Next decode growth fails -> the lone request preempts itself.
            assert!(e.poll_step(t).is_none());
            let s = e.state(RequestId(1)).expect("state");
            assert_eq!(s.phase, Phase::Waiting);
            assert_eq!(s.preemptions, 1);
            // Release the pressure and readmit.
            let _ = e.release_reservation(_r);
            let plan = e.poll_step(t).expect("readmission step");
            plan.duration
        };
        let swap = run(PreemptionMode::Swap);
        let recompute = run(PreemptionMode::Recompute);
        assert!(
            swap.as_secs_f64() * 3.0 < recompute.as_secs_f64(),
            "swap-in {swap} should be much cheaper than recompute {recompute}"
        );
    }

    #[test]
    fn admission_watermark_holds_back_slack() {
        // Capacity 6 blocks; watermark 2. A 64-token request needs 4 blocks;
        // with the watermark it needs 6 free, so a second 4-block request
        // must wait even though its blocks exist.
        let mut e = InstanceEngine::new(
            InstanceId(0),
            InstanceSpec::tiny_for_tests(96),
            EngineConfig {
                admission_watermark_blocks: 2,
                ..EngineConfig::default()
            },
        );
        e.add_request(meta(1, 32, 8, 0), SimTime::ZERO); // 2 blocks + 2 slack OK
        e.add_request(meta(2, 48, 8, 0), SimTime::ZERO); // 3 blocks + 2 slack > 4 free
        let plan = e.poll_step(SimTime::ZERO).expect("prefill r1");
        match plan.kind {
            StepKind::Prefill(ref ids) => assert_eq!(ids.as_slice(), &[RequestId(1)]),
            ref other => panic!("expected prefill, got {other:?}"),
        }
        assert_eq!(e.waiting_len(), 1, "r2 held back by the watermark");
        // Both still finish once space frees.
        let t = plan.finish_at();
        e.complete_step(t);
        let (_, _) = run_to_idle(&mut e, t);
        assert_eq!(e.take_finished().len(), 2);
    }

    #[test]
    fn max_batch_size_caps_admission() {
        let mut e = InstanceEngine::new(
            InstanceId(0),
            InstanceSpec::tiny_for_tests(4096),
            EngineConfig {
                max_batch_size: 2,
                ..EngineConfig::default()
            },
        );
        for i in 0..5 {
            e.add_request(meta(i, 32, 20, i), SimTime::ZERO);
        }
        let plan = e.poll_step(SimTime::ZERO).expect("prefill");
        match plan.kind {
            StepKind::Prefill(ref ids) => assert_eq!(ids.len(), 2, "cap applies"),
            ref other => panic!("expected prefill, got {other:?}"),
        }
        assert_eq!(e.waiting_len(), 3);
        // All requests still complete eventually.
        let t = plan.finish_at();
        e.complete_step(t);
        let (_, _) = run_to_idle(&mut e, t);
        assert_eq!(e.take_finished().len(), 5);
    }

    #[test]
    fn queued_demand_counts_all_waiting() {
        let mut e = engine(96);
        e.add_request(meta(1, 80, 60, 0), SimTime::ZERO);
        let p = e.poll_step(SimTime::ZERO).expect("prefill");
        e.complete_step(p.finish_at());
        e.add_request(meta(2, 40, 4, 1), p.finish_at());
        e.add_request(meta(3, 20, 4, 2), p.finish_at());
        // r2 needs 3 blocks, r3 needs 2.
        assert_eq!(e.queued_demand_blocks(), 5);
    }
}
