//! The migration coordinator: the paper's Figure 7 handshake as an event-
//! driven state machine.
//!
//! A migration proceeds through background copy stages that exploit the
//! append-only KV cache (§4.2): stage *k* copies the tokens generated during
//! stage *k−1* while decoding continues. When the remaining delta can be
//! copied within roughly one decode step, the request is drained from the
//! source batch, the last delta is copied (this is the downtime), and the
//! request resumes on the destination. Before every stage the destination
//! pre-allocates blocks; after every stage the source re-checks that the
//! request is still alive. Either side failing, the destination running out
//! of memory, or the request finishing/being preempted aborts the migration
//! and releases the reservation.

use std::collections::BTreeMap;

use llumnix_engine::{DrainOutcome, InstanceEngine, InstanceId, Phase, RequestId, ReservationId};
use llumnix_model::{CostModel, TransferMode};
use llumnix_sim::{SimDuration, SimTime};

use crate::types::{
    AbortReason, CommitOutcome, CommitResult, MigrationConfig, MigrationId, StageOutcome,
    StartOutcome,
};

/// Internal per-migration phase.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum MigPhase {
    /// A background copy stage is in flight.
    Copying,
    /// Drain requested; waiting for the source's step boundary.
    AwaitingDrain,
    /// Request drained; final copy in flight, commit scheduled.
    FinalCopy {
        /// When the request left the source batch (downtime start).
        drain_time: SimTime,
    },
}

/// One active migration.
#[derive(Debug, Clone)]
struct Migration {
    request: RequestId,
    src: InstanceId,
    dst: InstanceId,
    reservation: ReservationId,
    reserved_blocks: u32,
    copied_tokens: u32,
    stages: u32,
    phase: MigPhase,
}

/// Counters across a coordinator's lifetime.
#[derive(Debug, Clone, Copy, Default)]
pub struct CoordinatorStats {
    /// Migrations started.
    pub started: u64,
    /// Migrations committed.
    pub committed: u64,
    /// Migrations aborted.
    pub aborted: u64,
    /// Sum of downtimes of committed migrations.
    pub total_downtime: SimDuration,
    /// Sum of stage counts of committed migrations.
    pub total_stages: u64,
}

/// Per-instance counts of active migrations using the instance as a source
/// (`.0`) or destination (`.1`). Entries are removed when both hit zero.
type EndpointCounts = BTreeMap<InstanceId, (u32, u32)>;

/// Drives all live migrations in a cluster.
///
/// All bookkeeping lives in `BTreeMap`s: the teardown scans
/// ([`MigrationCoordinator::migrating_from`],
/// [`MigrationCoordinator::abort_for_failed_instance`]) iterate these maps
/// and feed their order into the event queue, so the iteration order must be
/// a pure function of the simulation state, never of a hasher seed.
///
/// `Clone` supports the sim-level snapshot/fork capability: a clone carries
/// every reservation, handshake stage, and endpoint counter, so forked runs
/// resume mid-migration byte-identically.
#[derive(Clone)]
pub struct MigrationCoordinator {
    config: MigrationConfig,
    next_id: u64,
    active: BTreeMap<MigrationId, Migration>,
    by_request: BTreeMap<RequestId, MigrationId>,
    /// Incrementally maintained src/dst counters so the per-tick teardown
    /// and scale-down checks ([`MigrationCoordinator::touches`],
    /// [`MigrationCoordinator::is_migration_source`]) are O(1) instead of a
    /// scan over every active migration.
    endpoint_counts: EndpointCounts,
    stats: CoordinatorStats,
}

impl MigrationCoordinator {
    /// Creates a coordinator.
    pub fn new(config: MigrationConfig) -> Self {
        MigrationCoordinator {
            config,
            next_id: 0,
            active: BTreeMap::new(),
            by_request: BTreeMap::new(),
            endpoint_counts: BTreeMap::new(),
            stats: CoordinatorStats::default(),
        }
    }

    /// Lifetime counters.
    pub fn stats(&self) -> &CoordinatorStats {
        &self.stats
    }

    /// Number of in-flight migrations.
    pub fn active_count(&self) -> usize {
        self.active.len()
    }

    /// The migration (if any) currently moving `request`, with its endpoints.
    pub fn lookup_by_request(
        &self,
        request: RequestId,
    ) -> Option<(MigrationId, InstanceId, InstanceId)> {
        let mid = *self.by_request.get(&request)?;
        let m = &self.active[&mid];
        Some((mid, m.src, m.dst))
    }

    /// Endpoints of an active migration.
    pub fn endpoints(&self, id: MigrationId) -> Option<(InstanceId, InstanceId)> {
        self.active.get(&id).map(|m| (m.src, m.dst))
    }

    /// Whether `request` is mid-migration.
    pub fn is_migrating(&self, request: RequestId) -> bool {
        self.by_request.contains_key(&request)
    }

    /// Every instance that is the source of at least one active migration,
    /// in id order. Source engines are the only place a live migration can
    /// be advanced from below — the migrating request finishing, being
    /// preempted, or draining all happen at a source step boundary — so this
    /// set bounds where migration-sensitive events can originate.
    pub fn source_instances(&self) -> impl Iterator<Item = InstanceId> + '_ {
        self.endpoint_counts
            .iter()
            .filter(|(_, &(src, _))| src > 0)
            .map(|(&id, _)| id)
    }

    /// All requests currently migrating out of `instance`.
    pub fn migrating_from(&self, instance: InstanceId) -> Vec<RequestId> {
        if !self.is_migration_source(instance) {
            return Vec::new();
        }
        self.active
            .values()
            .filter(|m| m.src == instance)
            .map(|m| m.request)
            .collect()
    }

    /// Whether any active migration moves a request out of `instance`. O(1).
    pub fn is_migration_source(&self, instance: InstanceId) -> bool {
        let fast = self
            .endpoint_counts
            .get(&instance)
            .is_some_and(|&(src, _)| src > 0);
        debug_assert_eq!(
            fast,
            self.active.values().any(|m| m.src == instance),
            "endpoint counters diverged from the active set (source side)"
        );
        fast
    }

    /// Whether any active migration uses `instance` as source or
    /// destination (it must not be torn down while one does). O(1).
    pub fn touches(&self, instance: InstanceId) -> bool {
        let fast = self
            .endpoint_counts
            .get(&instance)
            .is_some_and(|&(src, dst)| src > 0 || dst > 0);
        debug_assert_eq!(
            fast,
            self.active
                .values()
                .any(|m| m.src == instance || m.dst == instance),
            "endpoint counters diverged from the active set"
        );
        fast
    }

    /// Registers a started migration's endpoints in the counters.
    fn count_endpoints(&mut self, src: InstanceId, dst: InstanceId) {
        self.endpoint_counts.entry(src).or_default().0 += 1;
        self.endpoint_counts.entry(dst).or_default().1 += 1;
    }

    /// Unregisters a finished/aborted migration's endpoints.
    fn uncount_endpoints(&mut self, src: InstanceId, dst: InstanceId) {
        for (id, is_src) in [(src, true), (dst, false)] {
            let e = self.endpoint_counts.get_mut(&id).expect("counted at start");
            if is_src {
                e.0 -= 1;
            } else {
                e.1 -= 1;
            }
            if *e == (0, 0) {
                self.endpoint_counts.remove(&id);
            }
        }
    }

    // ---- protocol steps ---------------------------------------------------

    /// Starts migrating `request` from `src` to `dst`.
    ///
    /// Performs the stage-0 pre-allocate handshake; on success the caller
    /// must schedule a stage-done event at the returned time.
    pub fn start(
        &mut self,
        request: RequestId,
        src: &mut InstanceEngine,
        dst: &mut InstanceEngine,
        now: SimTime,
    ) -> StartOutcome {
        if self.by_request.contains_key(&request) {
            return StartOutcome::Refused(AbortReason::RequestNotMigratable);
        }
        let Some(state) = src.state(request) else {
            return StartOutcome::Refused(AbortReason::RequestNotMigratable);
        };
        if state.phase != Phase::Running {
            return StartOutcome::Refused(AbortReason::RequestNotMigratable);
        }
        let cached = state.cached_tokens;
        let blocks = src.spec().geometry.blocks_for_tokens(cached);
        let reservation = match dst.reserve_blocks(blocks) {
            Ok(r) => r,
            Err(_) => return StartOutcome::Refused(AbortReason::DestinationOutOfMemory),
        };
        src.migration_started();
        dst.migration_started();
        let transfer = &src.spec().transfer;
        let copy = transfer.copy_time(cached, &src.spec().model, TransferMode::GlooFused);
        let stage_done_at = now + transfer.handshake_rtt + copy;
        let id = MigrationId(self.next_id);
        self.next_id += 1;
        self.active.insert(
            id,
            Migration {
                request,
                src: src.id,
                dst: dst.id,
                reservation,
                reserved_blocks: blocks,
                copied_tokens: cached,
                stages: 1,
                phase: MigPhase::Copying,
            },
        );
        self.by_request.insert(request, id);
        self.count_endpoints(src.id, dst.id);
        self.stats.started += 1;
        StartOutcome::Started { id, stage_done_at }
    }

    /// Handles a stage-done event. Returns `None` for stale events
    /// (the migration was aborted in the meantime).
    pub fn on_stage_done(
        &mut self,
        id: MigrationId,
        src: &mut InstanceEngine,
        dst: &mut InstanceEngine,
        now: SimTime,
    ) -> Option<StageOutcome> {
        let m = self.active.get(&id)?;
        debug_assert_eq!(m.phase, MigPhase::Copying, "stage event in {:?}", m.phase);
        let request = m.request;
        // Post-stage liveness check (paper Figure 7): the request may have
        // finished or been preempted while the stage copied.
        let alive = match src.state(request) {
            None => Some(AbortReason::RequestFinished),
            Some(s) if s.phase == Phase::Waiting || s.phase == Phase::Prefilling => {
                Some(AbortReason::RequestPreempted)
            }
            Some(_) => None,
        };
        if let Some(reason) = alive {
            self.abort(id, src, dst, reason);
            return Some(StageOutcome::Aborted(reason));
        }
        let cached_now = src.state(request).expect("alive").cached_tokens;
        let m = self.active.get_mut(&id).expect("present");
        let delta = cached_now.saturating_sub(m.copied_tokens);
        // Pre-allocate for the delta (plus one in-flight token of slack).
        let target_blocks = src.spec().geometry.blocks_for_tokens(cached_now + 1);
        if target_blocks > m.reserved_blocks {
            let extra = target_blocks - m.reserved_blocks;
            if dst.grow_reservation(m.reservation, extra).is_err() {
                self.abort(id, src, dst, AbortReason::DestinationOutOfMemory);
                return Some(StageOutcome::Aborted(AbortReason::DestinationOutOfMemory));
            }
            let m = self.active.get_mut(&id).expect("present");
            m.reserved_blocks = target_blocks;
        }
        let m = self.active.get_mut(&id).expect("present");
        let transfer = src.spec().transfer.clone();
        let copy = transfer.copy_time(delta, &src.spec().model, TransferMode::GlooFused);
        let step_estimate = src.spec().cost.decode_step(src.decode_batch_hint());
        let force_final = m.stages >= self.config.max_stages;
        if delta == 0 || copy <= step_estimate || force_final {
            // Final stage: drain the request out of the batch, then copy the
            // last delta; that copy (plus commit) is the downtime.
            match src.request_drain(request) {
                DrainOutcome::Drained => {
                    let commit_at = self.begin_final_copy(id, src, now);
                    Some(StageOutcome::FinalCopy { commit_at })
                }
                DrainOutcome::Pending => {
                    self.active.get_mut(&id).expect("present").phase = MigPhase::AwaitingDrain;
                    Some(StageOutcome::DrainRequested)
                }
                DrainOutcome::NotRunning => {
                    self.abort(id, src, dst, AbortReason::RequestPreempted);
                    Some(StageOutcome::Aborted(AbortReason::RequestPreempted))
                }
            }
        } else {
            m.copied_tokens = cached_now;
            m.stages += 1;
            m.phase = MigPhase::Copying;
            Some(StageOutcome::NextStage {
                copy_done_at: now + transfer.handshake_rtt + copy,
            })
        }
    }

    /// Handles the source's `Drained` event for `request`. Returns the
    /// migration id and the commit time to schedule, or `None` if no
    /// migration is awaiting this drain.
    pub fn on_drained(
        &mut self,
        request: RequestId,
        src: &mut InstanceEngine,
        now: SimTime,
    ) -> Option<(MigrationId, SimTime)> {
        let id = *self.by_request.get(&request)?;
        if self.active[&id].phase != MigPhase::AwaitingDrain {
            return None;
        }
        let commit_at = self.begin_final_copy(id, src, now);
        Some((id, commit_at))
    }

    /// Starts the final copy of a drained request; returns the commit time.
    fn begin_final_copy(
        &mut self,
        id: MigrationId,
        src: &mut InstanceEngine,
        now: SimTime,
    ) -> SimTime {
        let m = self.active.get_mut(&id).expect("present");
        let cached = src
            .state(m.request)
            .expect("drained request has state")
            .cached_tokens;
        let delta = cached.saturating_sub(m.copied_tokens);
        let transfer = &src.spec().transfer;
        let copy = transfer.copy_time(delta, &src.spec().model, TransferMode::GlooFused);
        let commit_at = now + transfer.handshake_rtt + copy + transfer.commit_overhead;
        m.stages += 1;
        m.phase = MigPhase::FinalCopy { drain_time: now };
        commit_at
    }

    /// Handles the commit event: moves the request's state to the
    /// destination and resumes it there. Returns [`CommitResult::Stale`] for
    /// events whose migration was already gone.
    ///
    /// The reservation was sized at the last stage boundary with one token
    /// of slack, but tokens generated while the drain was pending can outgrow
    /// it (`begin_final_copy` never re-grows). Committing an undersized
    /// reservation would silently under-account the request's KV blocks on
    /// the destination, so the reservation is re-validated *before* the
    /// source state is torn down: grow it to fit, or abort gracefully
    /// (release the reservation, resume the request on the source).
    pub fn on_commit(
        &mut self,
        id: MigrationId,
        src: &mut InstanceEngine,
        dst: &mut InstanceEngine,
        now: SimTime,
    ) -> CommitResult {
        let Some(m) = self.active.get(&id) else {
            return CommitResult::Stale;
        };
        let MigPhase::FinalCopy { drain_time } = m.phase else {
            return CommitResult::Stale;
        };
        let request = m.request;
        let Some(state) = src.state(request) else {
            // The request died at the source after the drain; nothing left
            // to move.
            self.abort(id, src, dst, AbortReason::RequestFinished);
            return CommitResult::AbortedAtCommit(AbortReason::RequestFinished);
        };
        let needed = src.spec().geometry.blocks_for_tokens(state.cached_tokens);
        let m = self.active.get_mut(&id).expect("present");
        if needed > m.reserved_blocks {
            let extra = needed - m.reserved_blocks;
            if dst.grow_reservation(m.reservation, extra).is_err() {
                self.abort(id, src, dst, AbortReason::DestinationOutOfMemory);
                return CommitResult::AbortedAtCommit(AbortReason::DestinationOutOfMemory);
            }
            let m = self.active.get_mut(&id).expect("present");
            m.reserved_blocks = needed;
        }
        let m = self.active.remove(&id).expect("present");
        self.by_request.remove(&m.request);
        self.uncount_endpoints(m.src, m.dst);
        let mut state = src.finish_migration_out(m.request);
        let downtime = now.since(drain_time);
        state.migrations += 1;
        state.migration_downtime += downtime;
        dst.insert_migrated(state, m.reservation)
            .expect("reservation grown to fit at commit");
        src.migration_ended();
        dst.migration_ended();
        self.stats.committed += 1;
        self.stats.total_downtime += downtime;
        self.stats.total_stages += m.stages as u64;
        CommitResult::Committed(CommitOutcome {
            request: m.request,
            src: m.src,
            dst: m.dst,
            downtime,
            stages: m.stages,
        })
    }

    /// Aborts a migration: releases the destination reservation, restores a
    /// drained request to the source batch, and clears all records.
    pub fn abort(
        &mut self,
        id: MigrationId,
        src: &mut InstanceEngine,
        dst: &mut InstanceEngine,
        _reason: AbortReason,
    ) {
        let Some(m) = self.active.remove(&id) else {
            return;
        };
        self.by_request.remove(&m.request);
        self.uncount_endpoints(m.src, m.dst);
        let _ = dst.release_reservation(m.reservation);
        // A drain that has not executed yet must not fire for a dead
        // migration, and a request already drained goes back into the batch —
        // its KV blocks were never released at the source.
        src.cancel_drain(m.request);
        if let Some(s) = src.state(m.request) {
            if s.phase == Phase::Draining {
                src.undrain(m.request);
            }
        }
        src.migration_ended();
        dst.migration_ended();
        self.stats.aborted += 1;
    }

    /// Aborts every migration touching a failed instance. The caller passes
    /// the surviving peer engine per migration via `peers`; migrations whose
    /// peer also failed are simply dropped.
    ///
    /// Returns the aborted migration ids with their abort reasons.
    pub fn abort_for_failed_instance(
        &mut self,
        failed: InstanceId,
        peers: &mut BTreeMap<InstanceId, &mut InstanceEngine>,
    ) -> Vec<(MigrationId, RequestId, AbortReason)> {
        let affected: Vec<MigrationId> = self
            .active
            .iter()
            .filter(|(_, m)| m.src == failed || m.dst == failed)
            .map(|(&id, _)| id)
            .collect();
        let mut out = Vec::new();
        for id in affected {
            let m = self.active.remove(&id).expect("present");
            self.by_request.remove(&m.request);
            self.uncount_endpoints(m.src, m.dst);
            let reason = if m.src == failed {
                AbortReason::SourceFailed
            } else {
                AbortReason::DestinationFailed
            };
            match reason {
                AbortReason::SourceFailed => {
                    // The request died with its source; release the
                    // destination's reservation.
                    if let Some(dst) = peers.get_mut(&m.dst) {
                        let _ = dst.release_reservation(m.reservation);
                        dst.migration_ended();
                    }
                }
                AbortReason::DestinationFailed => {
                    // The request survives on the source; cancel any pending
                    // drain and resume it if it was already drained.
                    if let Some(src) = peers.get_mut(&m.src) {
                        src.cancel_drain(m.request);
                        if src.state(m.request).map(|s| s.phase) == Some(Phase::Draining) {
                            src.undrain(m.request);
                        }
                        src.migration_ended();
                    }
                }
                _ => unreachable!("failure reasons only"),
            }
            self.stats.aborted += 1;
            out.push((id, m.request, reason));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use llumnix_engine::{EngineConfig, PriorityPair, RequestMeta};
    use llumnix_model::InstanceSpec;

    fn engine(id: u32, capacity: u32) -> InstanceEngine {
        InstanceEngine::new(
            InstanceId(id),
            InstanceSpec::tiny_for_tests(capacity),
            EngineConfig::default(),
        )
    }

    fn meta(id: u64, input: u32, output: u32) -> RequestMeta {
        RequestMeta {
            id: RequestId(id),
            input_len: input,
            output_len: output,
            priority: PriorityPair::NORMAL,
            arrival: SimTime::ZERO,
        }
    }

    /// Brings a request to the Running phase on `e` and returns the time.
    fn start_running(e: &mut InstanceEngine, m: RequestMeta) -> SimTime {
        e.add_request(m, SimTime::ZERO);
        let p = e.poll_step(SimTime::ZERO).expect("prefill");
        let t = p.finish_at();
        e.complete_step(t);
        t
    }

    /// Unwraps a committed migration's outcome.
    fn committed(r: CommitResult) -> CommitOutcome {
        match r {
            CommitResult::Committed(c) => c,
            other => panic!("expected a commit, got {other:?}"),
        }
    }

    #[test]
    fn full_migration_two_stages() {
        let mut src = engine(0, 4096);
        let mut dst = engine(1, 4096);
        let t = start_running(&mut src, meta(1, 512, 100));
        let mut coord = MigrationCoordinator::new(MigrationConfig::default());
        let out = coord.start(RequestId(1), &mut src, &mut dst, t);
        let StartOutcome::Started { id, stage_done_at } = out else {
            panic!("refused: {out:?}");
        };
        assert!(stage_done_at > t);
        assert!(coord.is_migrating(RequestId(1)));
        // The source keeps decoding during stage 0; simulate a few steps.
        let mut now = t;
        while now < stage_done_at {
            let plan = src.poll_step(now).expect("decode continues");
            now = plan.finish_at();
            src.complete_step(now);
        }
        // Stage 0 done: only a handful of tokens were generated meanwhile,
        // so the coordinator goes final.
        let outcome = coord
            .on_stage_done(id, &mut src, &mut dst, stage_done_at)
            .expect("active");
        let commit_at = match outcome {
            StageOutcome::FinalCopy { commit_at } => commit_at,
            StageOutcome::DrainRequested => {
                // Drain deferred to the step boundary we already passed;
                // finish the in-flight step to trigger it.
                let plan_end = now;
                let events = if src.step_in_flight() {
                    src.complete_step(plan_end)
                } else {
                    vec![]
                };
                assert!(events
                    .iter()
                    .any(|e| matches!(e, llumnix_engine::EngineEvent::Drained(_))));
                let (mid, commit_at) = coord
                    .on_drained(RequestId(1), &mut src, plan_end)
                    .expect("awaiting drain");
                assert_eq!(mid, id);
                commit_at
            }
            other => panic!("unexpected outcome {other:?}"),
        };
        let commit = committed(coord.on_commit(id, &mut src, &mut dst, commit_at));
        assert_eq!(commit.request, RequestId(1));
        assert_eq!(commit.stages, 2, "paper: migrations take two stages");
        // Downtime is the constant ~20–30 ms band, far below a blocking copy.
        let dt = commit.downtime.as_millis_f64();
        assert!((15.0..40.0).contains(&dt), "downtime {dt} ms");
        // Request now lives on dst only.
        assert!(src.state(RequestId(1)).is_none());
        assert!(dst.running_ids().contains(&RequestId(1)));
        assert!(src.check_invariants() && dst.check_invariants());
        assert_eq!(src.free_blocks(), src.total_blocks());
        assert!(!coord.is_migrating(RequestId(1)));
        assert_eq!(coord.stats().committed, 1);
    }

    #[test]
    fn refused_when_destination_full() {
        let mut src = engine(0, 4096);
        let mut dst = engine(1, 96);
        // Fill the destination completely.
        let _ = start_running(&mut dst, meta(9, 80, 50));
        let t = start_running(&mut src, meta(1, 512, 100));
        let mut coord = MigrationCoordinator::new(MigrationConfig::default());
        let out = coord.start(RequestId(1), &mut src, &mut dst, t);
        assert_eq!(
            out,
            StartOutcome::Refused(AbortReason::DestinationOutOfMemory)
        );
        assert_eq!(coord.active_count(), 0);
        assert!(dst.check_invariants());
    }

    #[test]
    fn refused_for_unknown_or_queued_request() {
        let mut src = engine(0, 4096);
        let mut dst = engine(1, 4096);
        let mut coord = MigrationCoordinator::new(MigrationConfig::default());
        let out = coord.start(RequestId(42), &mut src, &mut dst, SimTime::ZERO);
        assert_eq!(
            out,
            StartOutcome::Refused(AbortReason::RequestNotMigratable)
        );
        // Queued (not yet prefilled) requests are not migratable either.
        src.add_request(meta(1, 64, 10), SimTime::ZERO);
        let out = coord.start(RequestId(1), &mut src, &mut dst, SimTime::ZERO);
        assert_eq!(
            out,
            StartOutcome::Refused(AbortReason::RequestNotMigratable)
        );
    }

    #[test]
    fn aborts_when_request_finishes_mid_migration() {
        let mut src = engine(0, 4096);
        let mut dst = engine(1, 4096);
        // Tiny output: the request will finish during stage 0's copy.
        let t = start_running(&mut src, meta(1, 2048, 2));
        let mut coord = MigrationCoordinator::new(MigrationConfig::default());
        let StartOutcome::Started { id, stage_done_at } =
            coord.start(RequestId(1), &mut src, &mut dst, t)
        else {
            panic!("refused");
        };
        // Run the source until the request finishes.
        let mut now = t;
        while src.has_work() {
            let Some(plan) = src.poll_step(now) else {
                break;
            };
            now = plan.finish_at();
            src.complete_step(now);
        }
        assert!(src.state(RequestId(1)).is_none(), "request finished");
        let outcome = coord
            .on_stage_done(id, &mut src, &mut dst, stage_done_at.max(now))
            .expect("active");
        assert_eq!(outcome, StageOutcome::Aborted(AbortReason::RequestFinished));
        // Reservation fully released.
        assert_eq!(dst.free_blocks(), dst.total_blocks());
        assert_eq!(coord.stats().aborted, 1);
        assert_eq!(coord.active_count(), 0);
    }

    #[test]
    fn aborts_when_request_preempted_mid_migration() {
        let mut src = engine(0, 96);
        let mut dst = engine(1, 4096);
        // r1 runs; r2 arrives and will force r1's (later arrival loses: make
        // the migrating request the later one so it is the victim).
        let t = start_running(&mut src, meta(2, 40, 60));
        src.add_request(meta(3, 40, 60), t);
        let p = src.poll_step(t).expect("prefill r3");
        let t2 = p.finish_at();
        src.complete_step(t2);
        // Migrate r3 (arrived later → preemption victim).
        let mut coord = MigrationCoordinator::new(MigrationConfig::default());
        let StartOutcome::Started { id, stage_done_at } =
            coord.start(RequestId(3), &mut src, &mut dst, t2)
        else {
            panic!("refused");
        };
        // Decode until r3 is preempted (blocks exhausted).
        let mut now = t2;
        let mut preempted = false;
        for _ in 0..200 {
            let Some(plan) = src.poll_step(now) else {
                break;
            };
            now = plan.finish_at();
            let events = src.complete_step(now);
            if events
                .iter()
                .any(|e| matches!(e, llumnix_engine::EngineEvent::Preempted(RequestId(3))))
            {
                preempted = true;
                break;
            }
        }
        assert!(preempted, "r3 should get preempted under memory pressure");
        let outcome = coord
            .on_stage_done(id, &mut src, &mut dst, stage_done_at.max(now))
            .expect("active");
        assert_eq!(
            outcome,
            StageOutcome::Aborted(AbortReason::RequestPreempted)
        );
        assert_eq!(dst.free_blocks(), dst.total_blocks());
    }

    #[test]
    fn long_sequence_stays_two_stages() {
        // Paper §6.2: for all tested lengths (up to 8k) migration takes two
        // stages because copying outpaces token generation.
        let mut src = InstanceEngine::new(
            InstanceId(0),
            InstanceSpec::llama_7b_a10(),
            EngineConfig::default(),
        );
        let mut dst = InstanceEngine::new(
            InstanceId(1),
            InstanceSpec::llama_7b_a10(),
            EngineConfig::default(),
        );
        let t = start_running(&mut src, meta(1, 8192, 400));
        let mut coord = MigrationCoordinator::new(MigrationConfig::default());
        let StartOutcome::Started { id, stage_done_at } =
            coord.start(RequestId(1), &mut src, &mut dst, t)
        else {
            panic!("refused");
        };
        let mut now = t;
        while now < stage_done_at {
            let plan = src.poll_step(now).expect("decoding");
            now = plan.finish_at();
            src.complete_step(now);
        }
        let outcome = coord
            .on_stage_done(id, &mut src, &mut dst, stage_done_at)
            .expect("active");
        let commit_at = match outcome {
            StageOutcome::FinalCopy { commit_at } => commit_at,
            StageOutcome::DrainRequested => {
                let events = src.complete_step(now);
                assert!(events
                    .iter()
                    .any(|e| matches!(e, llumnix_engine::EngineEvent::Drained(_))));
                coord
                    .on_drained(RequestId(1), &mut src, now)
                    .expect("awaiting")
                    .1
            }
            other => panic!("expected final copy for 8k seq, got {other:?}"),
        };
        let commit = committed(coord.on_commit(id, &mut src, &mut dst, commit_at));
        assert_eq!(commit.stages, 2);
        assert!(commit.downtime < SimDuration::from_millis(50));
    }

    #[test]
    fn destination_failure_restores_drained_request() {
        let mut src = engine(0, 4096);
        let mut dst = engine(1, 4096);
        let t = start_running(&mut src, meta(1, 512, 100));
        let mut coord = MigrationCoordinator::new(MigrationConfig::default());
        let StartOutcome::Started { id, stage_done_at } =
            coord.start(RequestId(1), &mut src, &mut dst, t)
        else {
            panic!("refused");
        };
        // Reach the final-copy phase (source idle → drain immediate).
        let outcome = coord
            .on_stage_done(id, &mut src, &mut dst, stage_done_at)
            .expect("active");
        assert!(matches!(outcome, StageOutcome::FinalCopy { .. }));
        assert_eq!(
            src.state(RequestId(1)).expect("state").phase,
            Phase::Draining
        );
        // Destination fails before commit.
        coord.abort(id, &mut src, &mut dst, AbortReason::DestinationFailed);
        assert_eq!(
            src.state(RequestId(1)).expect("state").phase,
            Phase::Running
        );
        assert!(src.running_ids().contains(&RequestId(1)));
        assert_eq!(dst.free_blocks(), dst.total_blocks());
        // A stale commit event later is ignored.
        assert_eq!(
            coord.on_commit(id, &mut src, &mut dst, stage_done_at),
            CommitResult::Stale
        );
    }

    #[test]
    fn abort_for_failed_instance_source_side() {
        let mut src = engine(0, 4096);
        let mut dst = engine(1, 4096);
        let t = start_running(&mut src, meta(1, 512, 100));
        let mut coord = MigrationCoordinator::new(MigrationConfig::default());
        let StartOutcome::Started { .. } = coord.start(RequestId(1), &mut src, &mut dst, t) else {
            panic!("refused");
        };
        let mut peers: BTreeMap<InstanceId, &mut InstanceEngine> = BTreeMap::new();
        peers.insert(InstanceId(1), &mut dst);
        let aborted = coord.abort_for_failed_instance(InstanceId(0), &mut peers);
        assert_eq!(aborted.len(), 1);
        assert_eq!(aborted[0].2, AbortReason::SourceFailed);
        assert_eq!(dst.free_blocks(), dst.total_blocks());
        assert_eq!(coord.active_count(), 0);
    }

    #[test]
    fn destination_oom_mid_stage_aborts_and_releases() {
        // Start a migration, then fill the destination so the next stage's
        // reservation growth fails -> DestinationOutOfMemory abort.
        let mut src = engine(0, 4096);
        let mut dst = engine(1, 160);
        let t = start_running(&mut src, meta(1, 120, 500));
        let mut coord = MigrationCoordinator::new(MigrationConfig::default());
        let StartOutcome::Started { id, stage_done_at } =
            coord.start(RequestId(1), &mut src, &mut dst, t)
        else {
            panic!("refused");
        };
        // Fill the destination's remaining blocks behind the reservation.
        let free = dst.free_blocks();
        let _hog = dst.reserve_blocks(free).expect("fill destination");
        // Decode at the source so the delta needs extra blocks.
        let mut now = t;
        for _ in 0..40 {
            let Some(plan) = src.poll_step(now) else {
                break;
            };
            now = plan.finish_at();
            src.complete_step(now);
        }
        let outcome = coord
            .on_stage_done(id, &mut src, &mut dst, stage_done_at.max(now))
            .expect("active");
        assert_eq!(
            outcome,
            StageOutcome::Aborted(AbortReason::DestinationOutOfMemory)
        );
        // The migration's own 8-block reservation (120 tokens) was released;
        // only the hog reservation remains.
        assert_eq!(dst.free_blocks(), 8);
        let _ = dst.release_reservation(_hog);
        assert_eq!(dst.free_blocks(), dst.total_blocks());
        // The request keeps running at the source, untouched.
        assert_eq!(
            src.state(RequestId(1)).expect("alive").phase,
            Phase::Running
        );
        assert!(src.poll_step(now).is_some());
    }

    #[test]
    fn max_stages_forces_the_final_stage() {
        // Make copying much slower than decoding so deltas never shrink:
        // without the max-stages guard the migration would chase its own
        // tail forever.
        let mut spec = InstanceSpec::tiny_for_tests(8192);
        // Copy rate ~39 tokens/s, decode rate ~45 tokens/s: the delta grows
        // a little every stage instead of shrinking.
        spec.transfer.network_bandwidth = 2.08e7;
        spec.transfer.pcie_bandwidth = 1e9;
        let mut src = InstanceEngine::new(InstanceId(0), spec.clone(), EngineConfig::default());
        let mut dst = InstanceEngine::new(InstanceId(1), spec, EngineConfig::default());
        let t = start_running(&mut src, meta(1, 64, 100_000));
        let mut coord = MigrationCoordinator::new(MigrationConfig { max_stages: 3 });
        let StartOutcome::Started {
            id,
            mut stage_done_at,
        } = coord.start(RequestId(1), &mut src, &mut dst, t)
        else {
            panic!("refused");
        };
        let mut now = t;
        let commit_at = loop {
            while now < stage_done_at {
                let Some(plan) = src.poll_step(now) else {
                    break;
                };
                now = plan.finish_at();
                let events = src.complete_step(now);
                if events
                    .iter()
                    .any(|e| matches!(e, llumnix_engine::EngineEvent::Drained(_)))
                {
                    break;
                }
            }
            if let Some((_, at)) = coord.on_drained(RequestId(1), &mut src, now) {
                break at;
            }
            match coord
                .on_stage_done(id, &mut src, &mut dst, stage_done_at.max(now))
                .expect("active")
            {
                StageOutcome::NextStage { copy_done_at } => stage_done_at = copy_done_at,
                StageOutcome::FinalCopy { commit_at } => break commit_at,
                StageOutcome::DrainRequested => {
                    let plan = src.poll_step(now).expect("step to drain");
                    now = plan.finish_at();
                    let events = src.complete_step(now);
                    assert!(events
                        .iter()
                        .any(|e| matches!(e, llumnix_engine::EngineEvent::Drained(_))));
                    break coord
                        .on_drained(RequestId(1), &mut src, now)
                        .expect("awaiting")
                        .1;
                }
                StageOutcome::Aborted(r) => panic!("unexpected abort {r}"),
            }
        };
        let commit = committed(coord.on_commit(id, &mut src, &mut dst, commit_at));
        assert!(
            commit.stages <= 4,
            "max_stages must bound the stage count, got {}",
            commit.stages
        );
        assert!(dst.running_ids().contains(&RequestId(1)));
    }

    #[test]
    fn migrating_from_lists_sources() {
        let mut src = engine(0, 4096);
        let mut dst = engine(1, 4096);
        let t = start_running(&mut src, meta(1, 512, 100));
        let mut coord = MigrationCoordinator::new(MigrationConfig::default());
        let StartOutcome::Started { id, .. } = coord.start(RequestId(1), &mut src, &mut dst, t)
        else {
            panic!("refused");
        };
        assert_eq!(coord.migrating_from(InstanceId(0)), vec![RequestId(1)]);
        assert!(coord.migrating_from(InstanceId(1)).is_empty());
        assert_eq!(coord.endpoints(id), Some((InstanceId(0), InstanceId(1))));
        assert_eq!(
            coord.lookup_by_request(RequestId(1)),
            Some((id, InstanceId(0), InstanceId(1)))
        );
        // Endpoint counters agree with the listings on both sides.
        assert!(coord.is_migration_source(InstanceId(0)));
        assert!(!coord.is_migration_source(InstanceId(1)));
        assert!(coord.touches(InstanceId(0)));
        assert!(coord.touches(InstanceId(1)));
        assert!(!coord.touches(InstanceId(7)));
        coord.abort(id, &mut src, &mut dst, AbortReason::DestinationFailed);
        assert!(!coord.touches(InstanceId(0)));
        assert!(!coord.touches(InstanceId(1)));
        assert!(!coord.is_migration_source(InstanceId(0)));
        assert!(coord.migrating_from(InstanceId(0)).is_empty());
    }

    /// Regression for the `BTreeMap` conversion: the teardown scans iterate
    /// the active set, and their order feeds the event queue. With several
    /// in-flight migrations both listings must come back in ascending
    /// (creation) order every time — under the old `HashMap` books the order
    /// was a function of the hasher seed.
    #[test]
    fn teardown_scans_iterate_in_creation_order() {
        let mut engines: Vec<InstanceEngine> = (0..4).map(|i| engine(i, 4096)).collect();
        let mut coord = MigrationCoordinator::new(MigrationConfig::default());
        // Three migrations out of instance 0, started for requests 7, 3, 5
        // (ids deliberately not in insertion order).
        for (req, dst) in [(7u64, 1usize), (3, 2), (5, 3)] {
            let t = start_running(&mut engines[0], meta(req, 256, 100));
            let (src, rest) = engines.split_at_mut(1);
            let out = coord.start(RequestId(req), &mut src[0], &mut rest[dst - 1], t);
            assert!(matches!(out, StartOutcome::Started { .. }), "{out:?}");
        }
        // `migrating_from` lists by ascending MigrationId = start order.
        assert_eq!(
            coord.migrating_from(InstanceId(0)),
            vec![RequestId(7), RequestId(3), RequestId(5)]
        );
        // A source failure aborts them in the same deterministic order.
        let (src, rest) = engines.split_at_mut(1);
        let mut peers: BTreeMap<InstanceId, &mut InstanceEngine> = BTreeMap::new();
        for e in rest.iter_mut() {
            peers.insert(e.id, e);
        }
        let aborted = coord.abort_for_failed_instance(InstanceId(0), &mut peers);
        let order: Vec<(MigrationId, RequestId)> =
            aborted.iter().map(|&(id, req, _)| (id, req)).collect();
        assert_eq!(
            order,
            vec![
                (MigrationId(0), RequestId(7)),
                (MigrationId(1), RequestId(3)),
                (MigrationId(2), RequestId(5)),
            ]
        );
        drop(peers);
        let _ = src;
        assert_eq!(coord.active_count(), 0);
    }

    /// Brings a fresh migration to the FinalCopy phase on an idle source
    /// (drain is immediate) and returns `(coord, id, commit_at)`.
    fn reach_final_copy(
        src: &mut InstanceEngine,
        dst: &mut InstanceEngine,
    ) -> (MigrationCoordinator, MigrationId, SimTime) {
        let t = start_running(src, meta(1, 512, 100));
        let mut coord = MigrationCoordinator::new(MigrationConfig::default());
        let StartOutcome::Started { id, stage_done_at } = coord.start(RequestId(1), src, dst, t)
        else {
            panic!("refused");
        };
        let outcome = coord
            .on_stage_done(id, src, dst, stage_done_at)
            .expect("active");
        let StageOutcome::FinalCopy { commit_at } = outcome else {
            panic!("idle source should drain immediately, got {outcome:?}");
        };
        (coord, id, commit_at)
    }

    /// Regression: tokens generated while the drain was pending can outgrow
    /// the one-token slack reserved at the last stage boundary. The commit
    /// must re-grow the reservation so the destination's block accounting
    /// covers every cached token — the old code committed the undersized
    /// reservation silently.
    #[test]
    fn commit_regrows_reservation_outgrown_by_late_tokens() {
        let mut src = engine(0, 4096);
        let mut dst = engine(1, 4096);
        let (mut coord, id, commit_at) = reach_final_copy(&mut src, &mut dst);
        // Force the edge: four extra blocks' worth of tokens land between
        // the final stage boundary and the commit (a drain that slips past
        // a step boundary while the final copy is in flight).
        let state = src.state_mut(RequestId(1)).expect("draining");
        state.cached_tokens += 64;
        let cached = state.cached_tokens;
        let needed = src.spec().geometry.blocks_for_tokens(cached);
        let commit = committed(coord.on_commit(id, &mut src, &mut dst, commit_at));
        assert_eq!(commit.request, RequestId(1));
        let landed = dst.state(RequestId(1)).expect("migrated");
        assert_eq!(landed.cached_tokens, cached);
        assert_eq!(
            landed.blocks_held, needed,
            "destination must hold blocks for every cached token"
        );
        assert!(dst.check_invariants());
        assert_eq!(dst.free_blocks(), dst.total_blocks() - needed);
    }

    /// When the outgrown reservation cannot grow (destination out of memory
    /// at commit time), the commit aborts gracefully: reservation released,
    /// request resumed on the source — instead of panicking or committing an
    /// undersized allocation.
    #[test]
    fn commit_aborts_gracefully_when_reservation_cannot_grow() {
        let mut src = engine(0, 4096);
        let mut dst = engine(1, 4096);
        let (mut coord, id, commit_at) = reach_final_copy(&mut src, &mut dst);
        src.state_mut(RequestId(1)).expect("draining").cached_tokens += 64;
        // Fill the destination so grow_reservation must fail.
        let free = dst.free_blocks();
        let hog = dst.reserve_blocks(free).expect("fill destination");
        let result = coord.on_commit(id, &mut src, &mut dst, commit_at);
        assert_eq!(
            result,
            CommitResult::AbortedAtCommit(AbortReason::DestinationOutOfMemory)
        );
        // The request resumed on the source; the migration reservation was
        // released (only the hog remains).
        let s = src.state(RequestId(1)).expect("still at source");
        assert_eq!(s.phase, Phase::Running);
        assert!(src.running_ids().contains(&RequestId(1)));
        let _ = dst.release_reservation(hog);
        assert_eq!(dst.free_blocks(), dst.total_blocks());
        assert!(dst.state(RequestId(1)).is_none());
        assert_eq!(coord.stats().committed, 0);
        assert_eq!(coord.stats().aborted, 1);
        assert_eq!(coord.active_count(), 0);
        assert!(!coord.touches(InstanceId(0)) && !coord.touches(InstanceId(1)));
        // A replayed commit event is stale.
        assert_eq!(
            coord.on_commit(id, &mut src, &mut dst, commit_at),
            CommitResult::Stale
        );
    }

    /// A request preempted while the coordinator awaits its drain: the abort
    /// must cancel the still-pending drain (so no spurious `Drained` fires at
    /// the next step boundary), release the reservation, and leave stats
    /// consistent.
    #[test]
    fn abort_while_awaiting_drain_cancels_pending_drain() {
        let mut src = engine(0, 4096);
        let mut dst = engine(1, 4096);
        let t = start_running(&mut src, meta(1, 512, 100));
        let mut coord = MigrationCoordinator::new(MigrationConfig::default());
        let StartOutcome::Started { id, stage_done_at } =
            coord.start(RequestId(1), &mut src, &mut dst, t)
        else {
            panic!("refused");
        };
        // Put a decode step in flight so the drain defers to its boundary.
        let plan = src.poll_step(t).expect("decode");
        let step_end = plan.finish_at();
        let outcome = coord
            .on_stage_done(id, &mut src, &mut dst, stage_done_at)
            .expect("active");
        assert_eq!(outcome, StageOutcome::DrainRequested);
        // The request is preempted before the boundary; the serving layer
        // observes the Preempted event and aborts the migration.
        coord.abort(id, &mut src, &mut dst, AbortReason::RequestPreempted);
        assert_eq!(dst.free_blocks(), dst.total_blocks());
        assert_eq!(coord.stats().aborted, 1);
        assert_eq!(coord.active_count(), 0);
        assert!(!coord.touches(InstanceId(0)) && !coord.touches(InstanceId(1)));
        // The cancelled drain must not fire at the step boundary.
        let events = src.complete_step(step_end);
        assert!(
            !events
                .iter()
                .any(|e| matches!(e, llumnix_engine::EngineEvent::Drained(_))),
            "cancelled drain fired anyway: {events:?}"
        );
        assert_eq!(
            src.state(RequestId(1)).expect("alive").phase,
            Phase::Running
        );
        // A late Drained event for the dead migration resolves to nothing.
        assert!(coord.on_drained(RequestId(1), &mut src, step_end).is_none());
    }

    /// Source instance fails during the final copy: the destination's
    /// reservation is released and the late commit event is stale.
    #[test]
    fn source_failure_during_final_copy_releases_reservation() {
        let mut src = engine(0, 4096);
        let mut dst = engine(1, 4096);
        let (mut coord, id, commit_at) = reach_final_copy(&mut src, &mut dst);
        let mut peers: BTreeMap<InstanceId, &mut InstanceEngine> = BTreeMap::new();
        peers.insert(InstanceId(1), &mut dst);
        let aborted = coord.abort_for_failed_instance(InstanceId(0), &mut peers);
        assert_eq!(aborted.len(), 1);
        assert_eq!(aborted[0].2, AbortReason::SourceFailed);
        drop(peers);
        assert_eq!(dst.free_blocks(), dst.total_blocks());
        assert_eq!(coord.stats().aborted, 1);
        assert_eq!(coord.active_count(), 0);
        assert!(!coord.touches(InstanceId(0)) && !coord.touches(InstanceId(1)));
        assert_eq!(
            coord.on_commit(id, &mut src, &mut dst, commit_at),
            CommitResult::Stale
        );
    }

    /// Destination instance fails during the final copy: the drained request
    /// is restored to the source batch and the late commit event is stale.
    #[test]
    fn destination_failure_during_final_copy_restores_request() {
        let mut src = engine(0, 4096);
        let mut dst = engine(1, 4096);
        let (mut coord, id, commit_at) = reach_final_copy(&mut src, &mut dst);
        assert_eq!(
            src.state(RequestId(1)).expect("state").phase,
            Phase::Draining
        );
        let mut peers: BTreeMap<InstanceId, &mut InstanceEngine> = BTreeMap::new();
        peers.insert(InstanceId(0), &mut src);
        let aborted = coord.abort_for_failed_instance(InstanceId(1), &mut peers);
        assert_eq!(aborted.len(), 1);
        assert_eq!(aborted[0].2, AbortReason::DestinationFailed);
        drop(peers);
        assert_eq!(
            src.state(RequestId(1)).expect("state").phase,
            Phase::Running
        );
        assert!(src.running_ids().contains(&RequestId(1)));
        assert_eq!(coord.stats().aborted, 1);
        assert!(!coord.touches(InstanceId(0)) && !coord.touches(InstanceId(1)));
        assert_eq!(
            coord.on_commit(id, &mut src, &mut dst, commit_at),
            CommitResult::Stale
        );
    }
}
