//! Rescheduling baselines for the Figure 10 comparison.
//!
//! The paper contrasts live migration against two straightforward ways to
//! move a request between instances: *recomputing* its KV cache on the
//! destination, and a *blocking copy* of the whole KV cache (non-blocking
//! for other requests, but the moved request stalls for the full transfer).
//! Both incur downtime that grows with the sequence length; live migration's
//! downtime is constant.

use llumnix_model::{CostModel, InstanceSpec, TransferMode};
use llumnix_sim::SimDuration;

/// How a request is rescheduled to another instance.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReschedulePolicy {
    /// The paper's pipelined live migration (near-zero constant downtime).
    LiveMigration,
    /// Drop the KV cache and recompute it on the destination.
    Recompute,
    /// Stop the request and copy its whole KV cache, then resume.
    BlockingCopy,
}

impl ReschedulePolicy {
    /// All policies in Figure 10's order.
    pub const ALL: [ReschedulePolicy; 3] = [
        ReschedulePolicy::LiveMigration,
        ReschedulePolicy::Recompute,
        ReschedulePolicy::BlockingCopy,
    ];

    /// Display label.
    pub fn label(&self) -> &'static str {
        match self {
            ReschedulePolicy::LiveMigration => "migration",
            ReschedulePolicy::Recompute => "recompute",
            ReschedulePolicy::BlockingCopy => "blocking-copy",
        }
    }
}

/// Downtime the *moved request* observes when rescheduled with `policy`
/// at sequence length `tokens` on the given instance type.
///
/// # Examples
///
/// ```
/// use llumnix_migration::{reschedule_downtime, ReschedulePolicy};
/// use llumnix_model::InstanceSpec;
///
/// let spec = InstanceSpec::llama_7b_a10();
/// let live = reschedule_downtime(ReschedulePolicy::LiveMigration, 8_192, &spec);
/// let recompute = reschedule_downtime(ReschedulePolicy::Recompute, 8_192, &spec);
/// // Live migration's downtime stays in the constant ~20-30 ms band.
/// assert!(live.as_millis_f64() < 40.0);
/// assert!(recompute.as_secs_f64() > live.as_secs_f64() * 10.0);
/// ```
///
/// For [`ReschedulePolicy::LiveMigration`] this is the analytic steady-state
/// value (final-delta copy + commit); the event-driven coordinator measures
/// the same quantity dynamically and the Figure 10 bench reports both.
pub fn reschedule_downtime(
    policy: ReschedulePolicy,
    tokens: u32,
    spec: &InstanceSpec,
) -> SimDuration {
    let transfer = &spec.transfer;
    match policy {
        ReschedulePolicy::LiveMigration => {
            // The final stage copies roughly the tokens generated during one
            // background stage; bound it by one decode iteration's worth of
            // a small batch (the paper's measured 20–30 ms constant band).
            let final_delta = final_stage_tokens(tokens, spec);
            transfer.handshake_rtt
                + transfer.copy_time(final_delta, &spec.model, TransferMode::GlooFused)
                + transfer.commit_overhead
        }
        ReschedulePolicy::Recompute => {
            // Requeue on the destination and rebuild the KV from scratch.
            transfer.commit_overhead + spec.cost.recompute(tokens as u64)
        }
        ReschedulePolicy::BlockingCopy => {
            transfer.handshake_rtt
                + transfer.copy_time(tokens, &spec.model, TransferMode::GlooFused)
                + transfer.commit_overhead
        }
    }
}

/// Tokens generated during the last background copy stage — the amount the
/// final (blocking) stage must move.
fn final_stage_tokens(tokens: u32, spec: &InstanceSpec) -> u32 {
    // Stage 0 copies `tokens` at the transfer bandwidth while decoding
    // continues; new tokens appear once per decode step.
    let copy = spec
        .transfer
        .copy_time(tokens, &spec.model, TransferMode::GlooFused)
        .as_secs_f64();
    let step = spec
        .cost
        .decode_step(llumnix_model::DecodeBatch {
            num_seqs: 1,
            total_tokens: tokens as u64,
        })
        .as_secs_f64();
    if step <= 0.0 {
        return 1;
    }
    // Tokens from stage 0; stage 1 then copies those while ~0–1 more appear.
    let stage0_tokens = (copy / step).ceil() as u32;
    stage0_tokens.clamp(1, tokens)
}

#[cfg(test)]
mod tests {
    use super::*;
    use llumnix_model::InstanceSpec;

    #[test]
    fn migration_downtime_constant_in_length() {
        let spec = InstanceSpec::llama_7b_a10();
        let short = reschedule_downtime(ReschedulePolicy::LiveMigration, 1024, &spec);
        let long = reschedule_downtime(ReschedulePolicy::LiveMigration, 8192, &spec);
        let ratio = long.as_secs_f64() / short.as_secs_f64();
        assert!(
            ratio < 1.5,
            "migration downtime must be ~constant: {short} → {long}"
        );
        let ms = long.as_millis_f64();
        assert!((15.0..40.0).contains(&ms), "downtime {ms} ms");
    }

    #[test]
    fn baseline_downtimes_grow_linearly() {
        let spec = InstanceSpec::llama_7b_a10();
        for policy in [ReschedulePolicy::Recompute, ReschedulePolicy::BlockingCopy] {
            let short = reschedule_downtime(policy, 1024, &spec).as_secs_f64();
            let long = reschedule_downtime(policy, 8192, &spec).as_secs_f64();
            assert!(
                long > short * 4.0,
                "{} downtime should grow with length: {short} → {long}",
                policy.label()
            );
        }
    }

    #[test]
    fn figure10_recompute_30b_8k_near_3_5s() {
        let spec = InstanceSpec::llama_30b_4xa10();
        let t = reschedule_downtime(ReschedulePolicy::Recompute, 8192, &spec).as_secs_f64();
        assert!((2.8..4.2).contains(&t), "30B 8k recompute downtime {t:.2}s");
    }

    #[test]
    fn figure10_baseline_vs_migration_ratio() {
        // Paper: baseline downtimes reach up to 111× that of migration.
        let spec = InstanceSpec::llama_30b_4xa10();
        let mig = reschedule_downtime(ReschedulePolicy::LiveMigration, 8192, &spec).as_secs_f64();
        let rec = reschedule_downtime(ReschedulePolicy::Recompute, 8192, &spec).as_secs_f64();
        let ratio = rec / mig;
        assert!(
            (30.0..200.0).contains(&ratio),
            "recompute/migration ratio {ratio:.0}x"
        );
    }

    #[test]
    fn labels_are_distinct() {
        let labels: Vec<&str> = ReschedulePolicy::ALL.iter().map(|p| p.label()).collect();
        assert_eq!(labels.len(), 3);
        assert!(labels.contains(&"migration"));
    }
}
