//! Live migration of LLM requests (paper §4.2 and Figure 7).
//!
//! The [`MigrationCoordinator`] drives multi-stage pipelined KV-cache copies
//! that exploit the append-only KV cache: decoding continues through every
//! background stage, and only the final one-iteration delta is copied with
//! the request out of the batch — giving a near-zero downtime that is
//! constant in sequence length. A fine-grained handshake (pre-allocate /
//! liveness check / commit / abort) keeps both instances consistent through
//! completions, preemptions, memory pressure, and instance failures.
//!
//! [`reschedule_downtime`] models the naive baselines (recompute, blocking
//! copy) the paper compares against in Figure 10.

#![warn(missing_docs)]
#![forbid(unsafe_code)]
#![deny(rust_2018_idioms)]

mod baselines;
mod coordinator;
mod types;

pub use baselines::{reschedule_downtime, ReschedulePolicy};
pub use coordinator::{CoordinatorStats, MigrationCoordinator};
pub use types::{
    AbortReason, CommitOutcome, CommitResult, MigrationConfig, MigrationId, StageOutcome,
    StartOutcome,
};
