//! Migration identifiers, configuration, and outcome types.

use llumnix_engine::{InstanceId, RequestId};
use llumnix_sim::{SimDuration, SimTime};

/// Unique identifier of one migration attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct MigrationId(pub u64);

impl core::fmt::Display for MigrationId {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "m{}", self.0)
    }
}

/// Why a migration was aborted. Mirrors the abort arms of the paper's
/// Figure 7 handshake.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AbortReason {
    /// The destination could not reserve (or grow) the required blocks.
    DestinationOutOfMemory,
    /// The request finished at the source during migration.
    RequestFinished,
    /// The request was preempted at the source during migration.
    RequestPreempted,
    /// The request was not in a migratable phase when migration started.
    RequestNotMigratable,
    /// The source instance failed.
    SourceFailed,
    /// The destination instance failed.
    DestinationFailed,
    /// The migration link between source and destination went down.
    LinkFailed,
}

impl core::fmt::Display for AbortReason {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        let s = match self {
            AbortReason::DestinationOutOfMemory => "destination out of memory",
            AbortReason::RequestFinished => "request finished mid-migration",
            AbortReason::RequestPreempted => "request preempted mid-migration",
            AbortReason::RequestNotMigratable => "request not migratable",
            AbortReason::SourceFailed => "source instance failed",
            AbortReason::DestinationFailed => "destination instance failed",
            AbortReason::LinkFailed => "migration link failed",
        };
        f.write_str(s)
    }
}

/// Migration tunables.
#[derive(Debug, Clone)]
pub struct MigrationConfig {
    /// Upper bound on copy stages before the final stage is forced,
    /// guaranteeing termination even if decode outpaces copying.
    pub max_stages: u32,
}

impl Default for MigrationConfig {
    fn default() -> Self {
        MigrationConfig { max_stages: 16 }
    }
}

/// Result of starting a migration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StartOutcome {
    /// Stage 0 copying began; a stage-done event should fire at `stage_done_at`.
    Started {
        /// The new migration's id.
        id: MigrationId,
        /// When stage 0's copy completes.
        stage_done_at: SimTime,
    },
    /// The handshake refused the migration (no state was created).
    Refused(AbortReason),
}

/// Result of a stage-done event.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StageOutcome {
    /// Another background stage began; schedule the next stage-done event.
    NextStage {
        /// When the next stage's copy completes.
        copy_done_at: SimTime,
    },
    /// The remaining delta is small: a drain was requested and will complete
    /// at the source's next step boundary (wait for the `Drained` event).
    DrainRequested,
    /// The source was idle, so the drain happened immediately and the final
    /// copy is under way; schedule the commit event.
    FinalCopy {
        /// When the commit fires and the request resumes on the destination.
        commit_at: SimTime,
    },
    /// The migration aborted (reservation released, source state intact).
    Aborted(AbortReason),
}

/// Result of a commit event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CommitResult {
    /// The request's state moved to the destination and resumed there.
    Committed(CommitOutcome),
    /// The commit-time reservation check failed (the final delta outgrew the
    /// slack and the destination could not grow it, or the request died);
    /// the migration aborted and the request, if alive, resumed on the
    /// source. The caller should re-kick both endpoints.
    AbortedAtCommit(AbortReason),
    /// Stale event: the migration was aborted (or already committed) before
    /// this event fired. Nothing changed.
    Stale,
}

/// Outcome details of a committed migration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CommitOutcome {
    /// The migrated request.
    pub request: RequestId,
    /// Source instance it left.
    pub src: InstanceId,
    /// Destination instance it resumed on.
    pub dst: InstanceId,
    /// Downtime the request observed (drain → resume).
    pub downtime: SimDuration,
    /// Number of copy stages used (including the final one).
    pub stages: u32,
}
