//! Property tests for the live-migration protocol: random request shapes
//! and random interleavings of decoding with protocol events must preserve
//! the handshake's invariants — no double residency, exact token
//! conservation, and no leaked blocks or reservations on any path.

use llumnix_engine::{
    EngineConfig, EngineEvent, InstanceEngine, InstanceId, Phase, PriorityPair, RequestId,
    RequestMeta,
};
use llumnix_migration::{
    CommitResult, MigrationConfig, MigrationCoordinator, StageOutcome, StartOutcome,
};
use llumnix_model::InstanceSpec;
use llumnix_sim::SimTime;
use proptest::prelude::*;

fn engine(id: u32, capacity: u32) -> InstanceEngine {
    InstanceEngine::new(
        InstanceId(id),
        InstanceSpec::tiny_for_tests(capacity),
        EngineConfig::default(),
    )
}

fn start_running(e: &mut InstanceEngine, meta: RequestMeta) -> SimTime {
    e.add_request(meta, SimTime::ZERO);
    let mut now = SimTime::ZERO;
    while e.state(meta.id).is_some_and(|s| s.phase != Phase::Running) {
        let plan = e.poll_step(now).expect("step towards running");
        now = plan.finish_at();
        e.complete_step(now);
    }
    now
}

proptest! {
    /// A migration of a request with arbitrary shape, racing against its own
    /// decoding, always ends in exactly one of: committed on the destination
    /// with all tokens intact, or aborted with the source untouched. Either
    /// way no block or reservation leaks.
    #[test]
    fn migration_commits_or_aborts_cleanly(
        input in 16u32..3_000,
        output in 1u32..400,
        dst_load in 0u32..3_000,
        start_after_steps in 0u32..50,
    ) {
        let mut src = engine(0, 4_096);
        let mut dst = engine(1, 4_096);
        // Preload the destination.
        if dst_load > 16 {
            let _ = start_running(&mut dst, RequestMeta {
                id: RequestId(99),
                input_len: dst_load,
                output_len: 100_000,
                priority: PriorityPair::NORMAL,
                arrival: SimTime::ZERO,
            });
        }
        let meta = RequestMeta {
            id: RequestId(1),
            input_len: input,
            output_len: output,
            priority: PriorityPair::NORMAL,
            arrival: SimTime::ZERO,
        };
        let mut now = start_running(&mut src, meta);
        // Decode a random while before migrating (the request may finish).
        for _ in 0..start_after_steps {
            let Some(plan) = src.poll_step(now) else { break };
            now = plan.finish_at();
            src.complete_step(now);
        }
        let mut coord = MigrationCoordinator::new(MigrationConfig::default());
        let outcome = coord.start(RequestId(1), &mut src, &mut dst, now);
        let StartOutcome::Started { id, mut stage_done_at } = outcome else {
            // Refused: nothing may have been reserved.
            prop_assert!(dst.check_invariants());
            prop_assert!(src.check_invariants());
            return Ok(());
        };
        // Drive the race to completion.
        let mut committed = false;
        let mut aborted = false;
        let mut guard = 0u32;
        'protocol: loop {
            guard += 1;
            prop_assert!(guard < 10_000, "protocol did not converge");
            while now < stage_done_at {
                let Some(plan) = src.poll_step(now) else { break };
                now = plan.finish_at();
                let events = src.complete_step(now);
                if events.iter().any(|e| matches!(e, EngineEvent::Drained(_))) {
                    let (mid, commit_at) = coord
                        .on_drained(RequestId(1), &mut src, now)
                        .expect("awaiting drain");
                    let out = coord.on_commit(mid, &mut src, &mut dst, commit_at);
                    prop_assert!(matches!(out, CommitResult::Committed(_)));
                    committed = true;
                    break 'protocol;
                }
            }
            let now_at = stage_done_at.max(now);
            match coord.on_stage_done(id, &mut src, &mut dst, now_at) {
                Some(StageOutcome::NextStage { copy_done_at }) => {
                    stage_done_at = copy_done_at;
                }
                Some(StageOutcome::FinalCopy { commit_at }) => {
                    let out = coord.on_commit(id, &mut src, &mut dst, commit_at);
                    prop_assert!(matches!(out, CommitResult::Committed(_)));
                    committed = true;
                    break;
                }
                Some(StageOutcome::DrainRequested) => {
                    // Continue decoding; Drained fires at the step boundary.
                    if !src.step_in_flight() {
                        // Source idle but drain pending is impossible.
                        prop_assert!(false, "drain pending on idle source");
                    }
                }
                Some(StageOutcome::Aborted(_)) => {
                    aborted = true;
                    break;
                }
                None => {
                    aborted = true; // stale: aborted elsewhere
                    break;
                }
            }
        }
        prop_assert!(committed ^ aborted);
        // Exactly-one-residency and conservation.
        let on_src = src.state(RequestId(1)).is_some();
        let on_dst = dst.state(RequestId(1)).is_some();
        if committed {
            prop_assert!(!on_src && on_dst, "committed ⇒ destination-only");
            // Run the request to completion on the destination.
            let mut steps = 0u32;
            while dst.state(RequestId(1)).is_some() {
                let Some(plan) = dst.poll_step(now) else { break };
                now = plan.finish_at();
                dst.complete_step(now);
                steps += 1;
                prop_assert!(steps < 100_000);
            }
            let fin = dst.take_finished();
            let s = fin.iter().find(|s| s.meta.id == RequestId(1)).expect("finished");
            prop_assert_eq!(s.generated, output, "token conservation");
            prop_assert_eq!(s.migrations, 1);
        } else {
            // Aborted: the request either finished at the source or is still
            // whole there; the destination holds nothing for it.
            prop_assert!(!on_dst || !on_src, "no double residency");
        }
        prop_assert!(src.check_invariants());
        prop_assert!(dst.check_invariants());
        // No reservation leaks on the destination: free + allocations add up.
        prop_assert_eq!(
            dst.free_blocks() + (dst.total_blocks() - dst.free_blocks()),
            dst.total_blocks()
        );
        prop_assert_eq!(coord.active_count(), 0);
        let stats = coord.stats();
        prop_assert_eq!(stats.started, stats.committed + stats.aborted);
    }
}
