//! Property tests for the serving sim's snapshot/fork capability.
//!
//! The resume invariant (DESIGN.md §13): for any point between two units of
//! work, snapshot → resume → run-to-completion is byte-identical to the
//! uninterrupted run. These tests fork full serving runs at random event
//! boundaries across random workloads, schedulers, shard counts, and fault
//! plans — including forks landing mid-migration-handshake, mid-restart, and
//! between planned faults — and compare every observable of the output,
//! float accumulators and diagnostic counters included.

use llumnix_core::{
    FaultPlan, FaultPlanConfig, SchedulerKind, ServingConfig, ServingOutput, ServingSim,
    ShardConfig,
};
use llumnix_model::InstanceSpec;
use llumnix_sim::{SimDuration, SimRng, SimTime};
use llumnix_workload::{presets, Arrivals, Trace};
use proptest::prelude::*;

/// One randomized serving scenario to fork.
#[derive(Debug, Clone, Copy)]
struct Scenario {
    seed: u64,
    requests: usize,
    /// Arrival rate ×10 (integer so the strategy stays integral).
    rate_x10: u32,
    scheduler_idx: u8,
    /// 0 = classic event loop; otherwise the windowed core's shard count.
    shards: u8,
    faults: bool,
    /// Fork point in milliseconds of simulated time.
    fork_ms: u64,
}

fn scenario() -> impl Strategy<Value = Scenario> {
    (
        (0u64..1_000_000, 80usize..160, 30u32..80),
        (
            0u8..3,
            prop_oneof![Just(0u8), Just(1u8), Just(3u8), Just(4u8)],
            any::<bool>(),
            500u64..25_000,
        ),
    )
        .prop_map(
            |((seed, requests, rate_x10), (scheduler_idx, shards, faults, fork_ms))| Scenario {
                seed,
                requests,
                rate_x10,
                scheduler_idx,
                shards,
                faults,
                fork_ms,
            },
        )
}

fn build(s: Scenario) -> (ServingConfig, Trace) {
    let scheduler = match s.scheduler_idx {
        0 => SchedulerKind::Llumnix,
        1 => SchedulerKind::RoundRobin,
        _ => SchedulerKind::InfaasPlusPlus,
    };
    let rate = f64::from(s.rate_x10) / 10.0;
    let trace = presets::by_name("S-S", s.requests, Arrivals::poisson(rate))
        .expect("preset")
        .with_max_total_tokens(2_000)
        .generate(&SimRng::new(s.seed));
    let mut cfg = ServingConfig::new(scheduler, 3).with_spec(InstanceSpec::tiny_for_tests(2048));
    if s.faults {
        // Dense churn (~1 crash / 4 s plus stragglers and link outages) so
        // forks routinely land between a crash and its restart.
        let fc = FaultPlanConfig::none()
            .with_crashes(900.0, Some(SimDuration::from_secs(2)))
            .with_slowdowns(1200.0, (1.5, 3.0), SimDuration::from_secs(5))
            .with_link_failures(600.0, SimDuration::from_secs(2))
            .with_horizon(SimDuration::from_secs(600));
        cfg = cfg.with_faults(FaultPlan::generate(&fc, &SimRng::new(s.seed ^ 0x5eed)));
    }
    if s.shards > 0 {
        cfg.shard = Some(ShardConfig::new(s.shards as usize).with_force_parallel());
    }
    (cfg, trace)
}

/// Byte-identical-output check over every public observable, including the
/// diagnostics the bench JSON omits (critical path, window stats, series).
fn assert_same(a: &ServingOutput, b: &ServingOutput) -> Result<(), TestCaseError> {
    prop_assert_eq!(a.records.len(), b.records.len());
    for (x, y) in a.records.iter().zip(&b.records) {
        prop_assert_eq!(x.id, y.id);
        prop_assert_eq!(x.first_token, y.first_token);
        prop_assert_eq!(x.finish, y.finish);
        prop_assert_eq!(x.preemptions, y.preemptions);
        prop_assert_eq!(x.preemption_loss, y.preemption_loss);
        prop_assert_eq!(x.migrations, y.migrations);
        prop_assert_eq!(x.migration_downtime, y.migration_downtime);
        prop_assert_eq!(x.max_token_gap, y.max_token_gap);
    }
    prop_assert_eq!(a.aborted, b.aborted);
    prop_assert_eq!(a.events_processed, b.events_processed);
    prop_assert_eq!(a.critical_path_events, b.critical_path_events);
    prop_assert_eq!(a.window_stats, b.window_stats);
    prop_assert_eq!(a.makespan, b.makespan);
    prop_assert_eq!(a.avg_instances, b.avg_instances);
    prop_assert_eq!(a.migration_stats.started, b.migration_stats.started);
    prop_assert_eq!(a.migration_stats.committed, b.migration_stats.committed);
    prop_assert_eq!(a.migration_stats.aborted, b.migration_stats.aborted);
    prop_assert_eq!(
        a.migration_stats.total_downtime,
        b.migration_stats.total_downtime
    );
    prop_assert_eq!(&a.fault_stats, &b.fault_stats);
    prop_assert_eq!(a.stalls, b.stalls);
    prop_assert_eq!(a.high_step_batches, b.high_step_batches);
    for (s, t) in [
        (&a.fragmentation, &b.fragmentation),
        (&a.free_blocks, &b.free_blocks),
        (&a.hol_satisfiable, &b.hol_satisfiable),
        (&a.queued, &b.queued),
        (&a.instances, &b.instances),
    ] {
        prop_assert_eq!(s.points(), t.points(), "series {} must match", &s.name);
    }
    Ok(())
}

proptest! {
    // Each case is three full serving runs; keep the count modest.
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// snapshot → resume → run is byte-identical to the uninterrupted run
    /// at a random event boundary, for random workloads, schedulers, shard
    /// counts (classic, 1, 3, 4), and fault plans — and the donor sim is
    /// unharmed by being snapshotted.
    #[test]
    fn snapshot_resume_is_byte_identical(s in scenario()) {
        let (cfg, trace) = build(s);
        let cold = ServingSim::new(cfg.clone(), trace.clone()).run();
        let mut warm = ServingSim::new(cfg, trace);
        warm.run_until(SimTime::ZERO + SimDuration::from_millis(s.fork_ms));
        let snap = warm.snapshot();
        let resumed = ServingSim::resume(&snap).run();
        assert_same(&cold, &resumed)?;
        // The donor keeps running to the same output after the snapshot.
        assert_same(&cold, &warm.run())?;
    }
}
