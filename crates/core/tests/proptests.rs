//! Property tests for the core scheduling layer.
//!
//! The llumlet memoizes its load report behind the engine's version counter;
//! these tests drive a llumlet through arbitrary event sequences and check
//! the cached [`Llumlet::report`] never drifts from the from-scratch
//! [`Llumlet::report_fresh`].

use llumnix_core::{HeadroomConfig, Llumlet, QueuingRule};
use llumnix_engine::{
    EngineConfig, InstanceEngine, InstanceId, PriorityPair, RequestId, RequestMeta,
};
use llumnix_model::InstanceSpec;
use llumnix_sim::SimTime;
use proptest::prelude::*;

/// A random llumlet-visible event.
#[derive(Debug, Clone, Copy)]
enum Op {
    /// Admit a request (input tokens, output tokens, high priority).
    Add(u32, u32, bool),
    /// Run one engine step to completion, if one is runnable.
    Step,
    /// Abort a request by id.
    Abort(u64),
    /// Ask a request to drain out.
    Drain(u64),
    /// Flip the terminating flag serving.rs sets directly.
    SetTerminating(bool),
    /// Advance time without touching the engine.
    AdvanceMillis(u64),
}

fn op() -> impl Strategy<Value = Op> {
    prop_oneof![
        (1u32..300, 1u32..40, any::<bool>()).prop_map(|(i, o, h)| Op::Add(i, o, h)),
        Just(Op::Step),
        (0u64..30).prop_map(Op::Abort),
        (0u64..30).prop_map(Op::Drain),
        any::<bool>().prop_map(Op::SetTerminating),
        (1u64..5_000).prop_map(Op::AdvanceMillis),
    ]
}

proptest! {
    /// After every event, the memoized report equals a from-scratch one for
    /// both the paper-default headroom and a time-sensitive gradual rule —
    /// queried twice so both the miss and the hit path are checked.
    #[test]
    fn cached_report_never_diverges_from_fresh(ops in prop::collection::vec(op(), 1..80)) {
        let mut llumlet = Llumlet::new(
            InstanceEngine::new(
                InstanceId(0),
                InstanceSpec::tiny_for_tests(4096),
                EngineConfig::default(),
            ),
            SimTime::ZERO,
            None,
        );
        let configs = [
            HeadroomConfig::DISABLED,
            HeadroomConfig::paper_default(),
            HeadroomConfig::paper_default()
                .with_queuing_rule(QueuingRule::Gradual { ramp_secs: 10.0 }),
        ];
        let mut now = SimTime::ZERO;
        let mut next_id = 0u64;
        for op in ops {
            match op {
                Op::Add(input, output, high) => {
                    let meta = RequestMeta {
                        id: RequestId(next_id),
                        input_len: input,
                        output_len: output,
                        priority: if high { PriorityPair::HIGH } else { PriorityPair::NORMAL },
                        arrival: now,
                    };
                    next_id += 1;
                    llumlet.engine.add_request(meta, now);
                }
                Op::Step => {
                    if let Some(plan) = llumlet.engine.poll_step(now) {
                        now = plan.finish_at();
                        llumlet.engine.complete_step(now);
                    }
                }
                Op::Abort(id) => {
                    let _ = llumlet.engine.abort_request(RequestId(id));
                }
                Op::Drain(id) => {
                    let _ = llumlet.engine.request_drain(RequestId(id));
                }
                Op::SetTerminating(t) => llumlet.terminating = t,
                Op::AdvanceMillis(ms) => now += llumnix_sim::SimDuration::from_millis(ms),
            }
            for headroom in &configs {
                let fresh = llumlet.report_fresh(now, headroom);
                prop_assert_eq!(llumlet.report(now, headroom), fresh, "miss path, op {:?}", op);
                prop_assert_eq!(llumlet.report(now, headroom), fresh, "hit path, op {:?}", op);
            }
        }
    }
}
