//! Property tests for the core scheduling layer.
//!
//! The llumlet memoizes its load report behind the engine's version counter;
//! these tests drive a llumlet through arbitrary event sequences and check
//! the cached [`Llumlet::report`] never drifts from the from-scratch
//! [`Llumlet::report_fresh`]. On top of that cache sits the incremental
//! dispatch index; the fleet-level test below drives a whole store + index
//! through arbitrary event sequences and checks every selection path
//! (dispatch for both priority classes, round-robin, INFaaS++, migration
//! pairing, termination victim) against a from-scratch rescan of fresh
//! reports.

use llumnix_core::policy::{pair_migrations, LoadReport};
use llumnix_core::{
    DispatchIndex, Dispatcher, HeadroomConfig, IndexPolicy, InstanceStore, Llumlet,
    MigrationThresholds, QueuingRule, SchedulerKind,
};
use llumnix_engine::{
    EngineConfig, InstanceEngine, InstanceId, PriorityPair, RequestId, RequestMeta,
};
use llumnix_model::InstanceSpec;
use llumnix_sim::{SimDuration, SimTime};
use proptest::prelude::*;

/// A random llumlet-visible event.
#[derive(Debug, Clone, Copy)]
enum Op {
    /// Admit a request (input tokens, output tokens, high priority).
    Add(u32, u32, bool),
    /// Run one engine step to completion, if one is runnable.
    Step,
    /// Abort a request by id.
    Abort(u64),
    /// Ask a request to drain out.
    Drain(u64),
    /// Flip the terminating flag serving.rs sets directly.
    SetTerminating(bool),
    /// Advance time without touching the engine.
    AdvanceMillis(u64),
}

fn op() -> impl Strategy<Value = Op> {
    prop_oneof![
        (1u32..300, 1u32..40, any::<bool>()).prop_map(|(i, o, h)| Op::Add(i, o, h)),
        Just(Op::Step),
        (0u64..30).prop_map(Op::Abort),
        (0u64..30).prop_map(Op::Drain),
        any::<bool>().prop_map(Op::SetTerminating),
        (1u64..5_000).prop_map(Op::AdvanceMillis),
    ]
}

proptest! {
    /// After every event, the memoized report equals a from-scratch one for
    /// both the paper-default headroom and a time-sensitive gradual rule —
    /// queried twice so both the miss and the hit path are checked.
    #[test]
    fn cached_report_never_diverges_from_fresh(ops in prop::collection::vec(op(), 1..80)) {
        let mut llumlet = Llumlet::new(
            InstanceEngine::new(
                InstanceId(0),
                InstanceSpec::tiny_for_tests(4096),
                EngineConfig::default(),
            ),
            SimTime::ZERO,
            None,
        );
        let configs = [
            HeadroomConfig::DISABLED,
            HeadroomConfig::paper_default(),
            HeadroomConfig::paper_default()
                .with_queuing_rule(QueuingRule::Gradual { ramp_secs: 10.0 }),
        ];
        let mut now = SimTime::ZERO;
        let mut next_id = 0u64;
        for op in ops {
            match op {
                Op::Add(input, output, high) => {
                    let meta = RequestMeta {
                        id: RequestId(next_id),
                        input_len: input,
                        output_len: output,
                        priority: if high { PriorityPair::HIGH } else { PriorityPair::NORMAL },
                        arrival: now,
                    };
                    next_id += 1;
                    llumlet.engine.add_request(meta, now);
                }
                Op::Step => {
                    if let Some(plan) = llumlet.engine.poll_step(now) {
                        now = plan.finish_at();
                        llumlet.engine.complete_step(now);
                    }
                }
                Op::Abort(id) => {
                    let _ = llumlet.engine.abort_request(RequestId(id));
                }
                Op::Drain(id) => {
                    let _ = llumlet.engine.request_drain(RequestId(id));
                }
                Op::SetTerminating(t) => llumlet.terminating = t,
                Op::AdvanceMillis(ms) => now += llumnix_sim::SimDuration::from_millis(ms),
            }
            for headroom in &configs {
                let fresh = llumlet.report_fresh(now, headroom);
                prop_assert_eq!(llumlet.report(now, headroom), fresh, "miss path, op {:?}", op);
                prop_assert_eq!(llumlet.report(now, headroom), fresh, "hit path, op {:?}", op);
            }
        }
    }
}

/// A random fleet-visible event.
#[derive(Debug, Clone, Copy)]
enum FleetOp {
    /// Admit a request on the `i`-th live instance.
    AddTo(u8, u32, u32, bool),
    /// Run one engine step on the `i`-th live instance.
    StepOn(u8),
    /// Abort request `id` on the `i`-th live instance.
    AbortOn(u8, u64),
    /// Flip the terminating flag on the `i`-th live instance.
    SetTerminating(u8, bool),
    /// Launch a new instance (startup delay in millis, 0 = immediate).
    Launch(u16),
    /// Launch a new instance mid-startup and immediately mark it
    /// terminating — the scale-up-then-down churn edge where an instance is
    /// both starting and terminating at once (delay is never 0 here).
    LaunchTerminating(u16),
    /// Remove the `i`-th live instance (instance-failure path).
    Remove(u8),
    /// Advance time.
    AdvanceMillis(u16),
}

fn fleet_op() -> impl Strategy<Value = FleetOp> {
    // The vendored `prop_oneof!` picks arms uniformly; repeat the admit and
    // step arms to bias runs toward load changes over membership churn.
    fn add() -> impl Strategy<Value = FleetOp> {
        (any::<u8>(), 1u32..300, 1u32..40, any::<bool>())
            .prop_map(|(i, inp, out, h)| FleetOp::AddTo(i, inp, out, h))
    }
    fn step() -> impl Strategy<Value = FleetOp> {
        any::<u8>().prop_map(FleetOp::StepOn)
    }
    prop_oneof![
        add(),
        add(),
        add(),
        step(),
        step(),
        step(),
        (any::<u8>(), 0u64..40).prop_map(|(i, r)| FleetOp::AbortOn(i, r)),
        (any::<u8>(), any::<bool>()).prop_map(|(i, t)| FleetOp::SetTerminating(i, t)),
        (0u16..3_000).prop_map(FleetOp::Launch),
        (1u16..3_000).prop_map(FleetOp::LaunchTerminating),
        any::<u8>().prop_map(FleetOp::Remove),
        (1u16..5_000).prop_map(FleetOp::AdvanceMillis),
    ]
}

/// The serving simulator's refresh recipe, replicated over a bare store +
/// index: time-driven starting transitions, then the dirty set (or the whole
/// fleet under a time-sensitive queuing rule), through the *cached* report.
fn refresh(
    store: &mut InstanceStore,
    index: &mut DispatchIndex,
    starting_queue: &mut Vec<(SimTime, InstanceId)>,
    now: SimTime,
    headroom: &HeadroomConfig,
    refresh_all: bool,
) {
    let mut i = 0;
    while i < starting_queue.len() {
        if starting_queue[i].0 <= now {
            let (_, id) = starting_queue.swap_remove(i);
            let _ = store.get_mut(id);
        } else {
            i += 1;
        }
    }
    if refresh_all {
        for i in 0..store.order().len() {
            let id = store.order()[i];
            let _ = store.get_mut(id);
        }
    }
    let mut dirty = Vec::new();
    store.take_dirty(&mut dirty);
    for &id in &dirty {
        let Some(l) = store.get(id) else {
            index.remove(id);
            continue;
        };
        let report = l.report(now, headroom);
        if index.update(&report).became_starting {
            starting_queue.push((l.starting_until.expect("starting"), id));
        }
    }
    index.sync_order(store.order());
}

fn new_llumlet(id: u32, now: SimTime, starting_until: Option<SimTime>) -> Llumlet {
    Llumlet::new(
        InstanceEngine::new(
            InstanceId(id),
            InstanceSpec::tiny_for_tests(2048),
            EngineConfig::default(),
        ),
        now,
        starting_until,
    )
}

fn run_fleet_equivalence(
    ops: &[FleetOp],
    headroom: HeadroomConfig,
    refresh_all: bool,
) -> Result<(), TestCaseError> {
    let mut store = InstanceStore::new();
    let mut index = DispatchIndex::new(IndexPolicy::all());
    let mut starting_queue: Vec<(SimTime, InstanceId)> = Vec::new();
    let mut now = SimTime::ZERO;
    let mut next_instance = 3u32;
    let mut next_req = 0u64;
    // Round-robin dispatchers advanced in lockstep: both consume one counter
    // step per check round iff an instance is eligible.
    let mut rr_scan = Dispatcher::new();
    let mut rr_index = Dispatcher::new();
    for i in 0..3 {
        store.insert(InstanceId(i), new_llumlet(i, now, None));
    }
    let pick = |store: &InstanceStore, i: u8| -> Option<InstanceId> {
        if store.is_empty() {
            None
        } else {
            Some(store.order()[i as usize % store.len()])
        }
    };
    for &op in ops {
        match op {
            FleetOp::AddTo(i, input, output, high) => {
                if let Some(id) = pick(&store, i) {
                    let meta = RequestMeta {
                        id: RequestId(next_req),
                        input_len: input,
                        output_len: output,
                        priority: if high {
                            PriorityPair::HIGH
                        } else {
                            PriorityPair::NORMAL
                        },
                        arrival: now,
                    };
                    next_req += 1;
                    store
                        .get_mut(id)
                        .expect("live")
                        .engine
                        .add_request(meta, now);
                }
            }
            FleetOp::StepOn(i) => {
                if let Some(id) = pick(&store, i) {
                    let e = &mut store.get_mut(id).expect("live").engine;
                    if let Some(plan) = e.poll_step(now) {
                        now = plan.finish_at();
                        e.complete_step(now);
                    }
                }
            }
            FleetOp::AbortOn(i, r) => {
                if let Some(id) = pick(&store, i) {
                    let _ = store
                        .get_mut(id)
                        .expect("live")
                        .engine
                        .abort_request(RequestId(r));
                }
            }
            FleetOp::SetTerminating(i, t) => {
                if let Some(id) = pick(&store, i) {
                    store.get_mut(id).expect("live").terminating = t;
                }
            }
            FleetOp::Launch(delay_ms) => {
                let id = InstanceId(next_instance);
                next_instance += 1;
                let until = (delay_ms > 0).then(|| now + SimDuration::from_millis(delay_ms as u64));
                store.insert(id, new_llumlet(id.0, now, until));
            }
            FleetOp::LaunchTerminating(delay_ms) => {
                let id = InstanceId(next_instance);
                next_instance += 1;
                let until = now + SimDuration::from_millis(delay_ms as u64);
                let mut l = new_llumlet(id.0, now, Some(until));
                l.terminating = true;
                store.insert(id, l);
            }
            FleetOp::Remove(i) => {
                if store.len() > 1 {
                    if let Some(id) = pick(&store, i) {
                        store.remove(id);
                        index.remove(id);
                    }
                }
            }
            FleetOp::AdvanceMillis(ms) => now += SimDuration::from_millis(ms as u64),
        }
        refresh(
            &mut store,
            &mut index,
            &mut starting_queue,
            now,
            &headroom,
            refresh_all,
        );
        // From-scratch rescan over fresh (uncached) reports.
        let reports: Vec<LoadReport> = store
            .iter()
            .map(|(_, l)| l.report_fresh(now, &headroom))
            .collect();
        // Dispatch: freest for both priority classes, INFaaS++, round-robin.
        for high in [false, true] {
            let want = Dispatcher::new().dispatch_for(SchedulerKind::Llumnix, &reports, high);
            prop_assert_eq!(index.freest(high), want, "freest(high={}) {:?}", high, op);
        }
        let want = Dispatcher::new().dispatch_for(SchedulerKind::InfaasPlusPlus, &reports, false);
        prop_assert_eq!(index.least_memory_load(), want, "infaas {:?}", op);
        let want = rr_scan.dispatch_for(SchedulerKind::RoundRobin, &reports, false);
        let got = rr_index.dispatch_indexed(SchedulerKind::RoundRobin, &index, false);
        prop_assert_eq!(got, want, "round-robin {:?}", op);
        // Migration pairing at two threshold settings (the default dead band
        // and a tight one that pairs more aggressively).
        for thresholds in [
            MigrationThresholds::default(),
            MigrationThresholds {
                source_below: 120.0,
                destination_above: 150.0,
            },
        ] {
            let want = pair_migrations(&reports, thresholds);
            prop_assert_eq!(index.pair(thresholds), want, "pairing {:?}", op);
        }
        // Termination-victim selection.
        let want = reports
            .iter()
            .filter(|r| !r.terminating && !r.starting)
            .min_by_key(|r| (r.num_running, r.id))
            .map(|r| r.id);
        prop_assert_eq!(index.drain_victim(), want, "victim {:?}", op);
    }
    Ok(())
}

proptest! {
    /// The incremental index always selects the same instance as a
    /// from-scratch rescan of fresh reports, on every selection path, under
    /// arbitrary fleet event sequences (paper-default headroom).
    #[test]
    fn fleet_index_matches_rescan(ops in prop::collection::vec(fleet_op(), 1..60)) {
        run_fleet_equivalence(&ops, HeadroomConfig::paper_default(), false)?;
    }

    /// Same property under the time-sensitive `Gradual` queuing rule, where
    /// the refresh must sweep the whole fleet because reports drift with
    /// time alone.
    #[test]
    fn fleet_index_matches_rescan_gradual(ops in prop::collection::vec(fleet_op(), 1..40)) {
        let headroom = HeadroomConfig::paper_default()
            .with_queuing_rule(QueuingRule::Gradual { ramp_secs: 10.0 });
        run_fleet_equivalence(&ops, headroom, true)?;
    }
}
