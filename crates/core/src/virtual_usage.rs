//! Virtual usage and freeness — the paper's Algorithm 1.
//!
//! Virtual usage unifies Llumnix's scheduling goals into one load metric:
//!
//! * normal case — a request's virtual usage is its physical KV usage
//!   (routine load balancing);
//! * head-of-line queuing request — its *demand*, so queue pressure makes
//!   the instance look overloaded and load balancing de-fragments it;
//! * terminating instance — a fake request of infinite usage, so load
//!   balancing drains the instance;
//! * high execution priority — physical usage plus a headroom that keeps the
//!   instance's real load below the interference-free target, shared among
//!   co-located high-priority requests.
//!
//! Freeness is `F = (M − ΣV)/B` with usage measured in tokens and `B` the
//! batch size, i.e. *the number of decode steps the batch can still run for*
//! (§4.4.3) — each step consumes one token per running request.

use llumnix_engine::{InstanceEngine, Phase, Priority};
use llumnix_sim::SimTime;
use serde::{Deserialize, Serialize};

/// How a head-of-line queuing request's demand enters the virtual usage.
///
/// §4.4.2 names the trade-off explicitly: counting the full demand favours
/// reducing queuing delays (the rule Llumnix ships with), while "gradually
/// increasing the virtual usage of a queuing request until it reaches the
/// real memory demand" favours load balancing. Both are implemented so the
/// ablation benches can quantify the trade-off.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize, Default)]
pub enum QueuingRule {
    /// Count the head-of-line request's full demand immediately (paper
    /// default, Algorithm 1 line 4).
    #[default]
    FullDemand,
    /// Ramp the counted demand linearly from 0 to the full demand over
    /// `ramp_secs` of queuing time.
    Gradual {
        /// Seconds of queuing after which the full demand is counted.
        ramp_secs: f64,
    },
}

impl QueuingRule {
    /// The fraction of the demand counted after `queued_secs` of waiting.
    pub fn fraction(&self, queued_secs: f64) -> f64 {
        match self {
            QueuingRule::FullDemand => 1.0,
            QueuingRule::Gradual { ramp_secs } => {
                if *ramp_secs <= 0.0 {
                    1.0
                } else {
                    (queued_secs / ramp_secs).clamp(0.0, 1.0)
                }
            }
        }
    }
}

/// Virtual-usage policy configuration: execution-priority headroom and the
/// queuing-demand rule.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct HeadroomConfig {
    /// Target physical load (tokens) that preserves the ideal decode speed
    /// for high-priority requests. The paper measures 1,600 tokens on an A10
    /// (§6.4, from Figure 4 profiling). `None` disables priority headroom
    /// (Llumnix-base).
    pub high_priority_target_tokens: Option<u32>,
    /// Queuing-demand accounting rule.
    pub queuing_rule: QueuingRule,
}

impl HeadroomConfig {
    /// Priority-agnostic configuration (Llumnix-base).
    pub const DISABLED: HeadroomConfig = HeadroomConfig {
        high_priority_target_tokens: None,
        queuing_rule: QueuingRule::FullDemand,
    };

    /// The paper's §6.4 setting.
    pub fn paper_default() -> Self {
        HeadroomConfig {
            high_priority_target_tokens: Some(1_600),
            queuing_rule: QueuingRule::FullDemand,
        }
    }

    /// Replaces the queuing-demand rule.
    pub fn with_queuing_rule(mut self, rule: QueuingRule) -> Self {
        self.queuing_rule = rule;
        self
    }

    /// Debug-asserts that the headroom target fits the instance geometry.
    ///
    /// A target above the KV capacity is a misconfiguration — [`Self::headroom_for`]
    /// would silently clamp it to zero headroom, which *looks* like "no free
    /// space for high priority" instead of failing loudly. Call this wherever
    /// a `HeadroomConfig` is first paired with a concrete instance spec (the
    /// config alone does not know the capacity).
    pub fn validate_for_capacity(&self, capacity_tokens: u32) {
        if let Some(target) = self.high_priority_target_tokens {
            debug_assert!(
                target <= capacity_tokens,
                "high_priority_target_tokens ({target}) exceeds instance KV capacity \
                 ({capacity_tokens} tokens): the headroom would clamp to 0, masking the \
                 misconfiguration as zero free space"
            );
        }
    }

    /// Total headroom (tokens) granted to priority `p` on an instance with
    /// `capacity_tokens` of KV space.
    ///
    /// The subtraction saturates: if `target > capacity_tokens` the headroom
    /// clamps to 0 (no free space ever reported to high priority) rather than
    /// wrapping. That configuration is invalid — [`Self::validate_for_capacity`]
    /// debug-asserts against it where the config meets an instance spec — but
    /// release builds degrade to the clamp instead of panicking mid-sweep.
    pub fn headroom_for(&self, p: Priority, capacity_tokens: u32) -> f64 {
        match (p, self.high_priority_target_tokens) {
            (Priority::High, Some(target)) => capacity_tokens.saturating_sub(target) as f64,
            _ => 0.0,
        }
    }
}

/// A request as the virtual-usage calculation sees it.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RequestView {
    /// Physical KV usage in tokens (block-rounded).
    pub physical_tokens: u32,
    /// Memory demand in tokens (for queuing requests).
    pub demand_tokens: u32,
    /// Whether the request is waiting in the queue.
    pub is_queuing: bool,
    /// Whether it is the head-of-line queuing request.
    pub is_head_of_line: bool,
    /// How long the request has been queuing, in seconds (0 if resident).
    pub queued_secs: f64,
    /// Execution priority.
    pub execution_priority: Priority,
}

/// An instance as the freeness calculation sees it.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct InstanceView {
    /// Total KV capacity in tokens (`M`).
    pub capacity_tokens: u32,
    /// Running batch size (`B`).
    pub batch_size: usize,
    /// Whether the instance is draining for termination (fake ∞ request).
    pub terminating: bool,
    /// Per-request views (queued and resident).
    pub requests: Vec<RequestView>,
}

impl InstanceView {
    /// Builds the view from a live engine.
    pub fn from_engine(engine: &InstanceEngine, terminating: bool, now: SimTime) -> Self {
        let geometry = engine.spec().geometry;
        let mut requests = Vec::new();
        for &id in engine
            .running_ids()
            .iter()
            .chain(engine.prefill_pending_ids())
        {
            let s = engine.state(id).expect("resident request has state");
            requests.push(RequestView {
                physical_tokens: s.blocks_held * geometry.block_tokens,
                demand_tokens: s.required_tokens(),
                is_queuing: false,
                is_head_of_line: false,
                queued_secs: 0.0,
                execution_priority: s.meta.priority.execution,
            });
        }
        for (i, id) in engine.waiting_ids().into_iter().enumerate() {
            let s = engine.state(id).expect("queued request has state");
            let demand_blocks = geometry.blocks_for_tokens(s.required_tokens());
            requests.push(RequestView {
                physical_tokens: 0,
                demand_tokens: demand_blocks * geometry.block_tokens,
                is_queuing: true,
                is_head_of_line: i == 0,
                queued_secs: now.since(s.enqueued_at).as_secs_f64(),
                execution_priority: s.meta.priority.execution,
            });
        }
        // Blocks held by draining (mid-migration) requests and by incoming
        // migration reservations are real memory pressure too; account for
        // them as one anonymous normal-priority resident usage.
        let accounted: u32 = engine
            .running_ids()
            .iter()
            .chain(engine.prefill_pending_ids())
            .map(|&id| engine.state(id).expect("resident").blocks_held)
            .sum();
        let used = engine.total_blocks() - engine.free_blocks();
        let other = used.saturating_sub(accounted);
        if other > 0 {
            requests.push(RequestView {
                physical_tokens: other * geometry.block_tokens,
                demand_tokens: 0,
                is_queuing: false,
                is_head_of_line: false,
                queued_secs: 0.0,
                execution_priority: Priority::Normal,
            });
        }
        InstanceView {
            capacity_tokens: geometry.capacity_tokens(),
            batch_size: engine.batch_size(),
            terminating,
            requests,
        }
    }

    /// The number of resident requests per execution priority (the headroom
    /// divisor in Algorithm 1's `GetHeadroom`).
    fn resident_count(&self, p: Priority) -> usize {
        self.requests
            .iter()
            .filter(|r| !r.is_queuing && r.execution_priority == p)
            .count()
    }
}

/// Algorithm 1, `CalcVirtualUsage`: the virtual usage (tokens) of one request.
pub fn virtual_usage(req: &RequestView, instance: &InstanceView, cfg: &HeadroomConfig) -> f64 {
    if req.is_queuing {
        if req.is_head_of_line {
            return req.demand_tokens as f64 * cfg.queuing_rule.fraction(req.queued_secs);
        }
        return 0.0;
    }
    let count = instance.resident_count(req.execution_priority).max(1);
    req.physical_tokens as f64
        + cfg.headroom_for(req.execution_priority, instance.capacity_tokens) / count as f64
}

/// Algorithm 1, `CalcFreeness`: `(M − ΣV)/B`, in decode steps.
///
/// A terminating instance carries a fake request of infinite virtual usage
/// and reports `-∞`. An empty batch divides by 1.
///
/// # Examples
///
/// ```
/// use llumnix_core::{freeness, HeadroomConfig, InstanceView, RequestView};
/// use llumnix_engine::Priority;
///
/// let view = InstanceView {
///     capacity_tokens: 13_616,
///     batch_size: 4,
///     terminating: false,
///     requests: vec![RequestView {
///         physical_tokens: 1_616,
///         demand_tokens: 1_616,
///         is_queuing: false,
///         is_head_of_line: false,
///         queued_secs: 0.0,
///         execution_priority: Priority::Normal,
///     }],
/// };
/// // 12,000 free tokens across a batch of 4: 3,000 decode steps of slack.
/// assert_eq!(freeness(&view, &HeadroomConfig::DISABLED), 3_000.0);
/// ```
pub fn freeness(instance: &InstanceView, cfg: &HeadroomConfig) -> f64 {
    if instance.terminating {
        return f64::NEG_INFINITY;
    }
    let total_virtual: f64 = instance
        .requests
        .iter()
        .map(|r| virtual_usage(r, instance, cfg))
        .sum();
    let b = instance.batch_size.max(1) as f64;
    (instance.capacity_tokens as f64 - total_virtual) / b
}

/// Freeness straight from an engine.
pub fn engine_freeness(
    engine: &InstanceEngine,
    terminating: bool,
    now: SimTime,
    cfg: &HeadroomConfig,
) -> f64 {
    freeness(&InstanceView::from_engine(engine, terminating, now), cfg)
}

/// The INFaaS++ baseline's load signal: used blocks plus queued demand, as a
/// fraction of capacity (§6.1: "focus on the GPU memory load … also counts
/// in the memory required by queuing requests").
pub fn infaas_memory_load(engine: &InstanceEngine) -> f64 {
    let total = engine.total_blocks() as f64;
    if total == 0.0 {
        return 1.0;
    }
    let used = (engine.total_blocks() - engine.free_blocks()) as f64;
    let queued = engine.queued_demand_blocks() as f64;
    (used + queued) / total
}

/// An INFaaS-style freeness equivalent used so the baseline can share the
/// auto-scaler's thresholds (§6.5 gives both systems the same scaling
/// strategy): free tokens after queued demand, per batch member.
pub fn infaas_equivalent_freeness(engine: &InstanceEngine) -> f64 {
    let geometry = engine.spec().geometry;
    let capacity = geometry.capacity_tokens() as f64;
    let used = ((engine.total_blocks() - engine.free_blocks()) * geometry.block_tokens) as f64;
    let queued = (engine.queued_demand_blocks() * geometry.block_tokens) as f64;
    let b = engine.batch_size().max(1) as f64;
    (capacity - used - queued) / b
}

/// Phases that hold physical KV on the instance (used by tests).
pub fn holds_memory(phase: Phase) -> bool {
    matches!(phase, Phase::Prefilling | Phase::Running | Phase::Draining)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn resident(tokens: u32, p: Priority) -> RequestView {
        RequestView {
            physical_tokens: tokens,
            demand_tokens: tokens,
            is_queuing: false,
            is_head_of_line: false,
            queued_secs: 0.0,
            execution_priority: p,
        }
    }

    fn queued(demand: u32, head: bool) -> RequestView {
        RequestView {
            physical_tokens: 0,
            demand_tokens: demand,
            is_queuing: true,
            is_head_of_line: head,
            queued_secs: 10.0,
            execution_priority: Priority::Normal,
        }
    }

    fn view(requests: Vec<RequestView>) -> InstanceView {
        let batch = requests.iter().filter(|r| !r.is_queuing).count();
        InstanceView {
            capacity_tokens: 13_616,
            batch_size: batch,
            terminating: false,
            requests,
        }
    }

    #[test]
    fn normal_case_virtual_equals_physical() {
        let v = view(vec![resident(1000, Priority::Normal)]);
        let cfg = HeadroomConfig::paper_default();
        assert_eq!(virtual_usage(&v.requests[0], &v, &cfg), 1000.0);
        let f = freeness(&v, &cfg);
        assert!((f - 12_616.0).abs() < 1e-9);
    }

    #[test]
    fn head_of_line_demand_counts() {
        let v = view(vec![
            resident(12_000, Priority::Normal),
            queued(3_000, true),
            queued(2_000, false),
        ]);
        let cfg = HeadroomConfig::paper_default();
        // HOL contributes its demand; the second queued request contributes 0.
        assert_eq!(virtual_usage(&v.requests[1], &v, &cfg), 3_000.0);
        assert_eq!(virtual_usage(&v.requests[2], &v, &cfg), 0.0);
        // 13,616 − 12,000 − 3,000 < 0 → negative freeness flags overload.
        assert!(freeness(&v, &cfg) < 0.0);
    }

    #[test]
    fn high_priority_headroom_shared() {
        let cfg = HeadroomConfig::paper_default();
        // One high-priority request: full headroom (capacity − 1600).
        let v1 = view(vec![resident(500, Priority::High)]);
        let u1 = virtual_usage(&v1.requests[0], &v1, &cfg);
        assert!((u1 - (500.0 + (13_616.0 - 1_600.0))).abs() < 1e-9);
        // Two high-priority requests split the headroom.
        let v2 = view(vec![
            resident(500, Priority::High),
            resident(300, Priority::High),
        ]);
        let u2 = virtual_usage(&v2.requests[0], &v2, &cfg);
        assert!((u2 - (500.0 + (13_616.0 - 1_600.0) / 2.0)).abs() < 1e-9);
        // Normal requests on the same instance get no headroom.
        let v3 = view(vec![
            resident(500, Priority::High),
            resident(300, Priority::Normal),
        ]);
        let u3 = virtual_usage(&v3.requests[1], &v3, &cfg);
        assert_eq!(u3, 300.0);
    }

    #[test]
    fn headroom_caps_real_load_at_target() {
        // With one high-priority request, total virtual usage reaches
        // capacity exactly when physical load reaches the target.
        let cfg = HeadroomConfig::paper_default();
        let v = view(vec![
            resident(400, Priority::High),
            resident(1_300, Priority::Normal),
        ]);
        // Physical = 1,700 > 1,600 target ⇒ ΣV > capacity ⇒ negative freeness.
        assert!(freeness(&v, &cfg) < 0.0);
        let v_ok = view(vec![
            resident(400, Priority::High),
            resident(1_100, Priority::Normal),
        ]);
        // Physical = 1,500 < target ⇒ freeness still positive.
        assert!(freeness(&v_ok, &cfg) > 0.0);
    }

    #[test]
    fn disabled_headroom_ignores_priority() {
        let cfg = HeadroomConfig::DISABLED;
        let v = view(vec![resident(500, Priority::High)]);
        assert_eq!(virtual_usage(&v.requests[0], &v, &cfg), 500.0);
    }

    #[test]
    fn validate_accepts_target_within_capacity() {
        HeadroomConfig::paper_default().validate_for_capacity(13_616);
        HeadroomConfig::DISABLED.validate_for_capacity(0);
        // Boundary: target == capacity is legal (zero headroom by intent).
        let cfg = HeadroomConfig {
            high_priority_target_tokens: Some(2_048),
            queuing_rule: QueuingRule::FullDemand,
        };
        cfg.validate_for_capacity(2_048);
    }

    #[test]
    #[should_panic(expected = "exceeds instance KV capacity")]
    #[cfg(debug_assertions)]
    fn validate_rejects_oversized_target() {
        let cfg = HeadroomConfig {
            high_priority_target_tokens: Some(20_000),
            queuing_rule: QueuingRule::FullDemand,
        };
        cfg.validate_for_capacity(13_616);
    }

    #[test]
    fn oversized_target_clamps_headroom_to_zero() {
        // Release-mode behaviour of the documented clamp.
        let cfg = HeadroomConfig {
            high_priority_target_tokens: Some(20_000),
            queuing_rule: QueuingRule::FullDemand,
        };
        assert_eq!(cfg.headroom_for(Priority::High, 13_616), 0.0);
    }

    #[test]
    fn terminating_instance_is_infinitely_loaded() {
        let mut v = view(vec![resident(100, Priority::Normal)]);
        v.terminating = true;
        assert_eq!(freeness(&v, &HeadroomConfig::DISABLED), f64::NEG_INFINITY);
    }

    #[test]
    fn freeness_counts_steps_remaining() {
        // 4 running requests, 13,616 − 1,616 = 12,000 free tokens
        // ⇒ 3,000 steps per request.
        let v = view(vec![
            resident(404, Priority::Normal),
            resident(404, Priority::Normal),
            resident(404, Priority::Normal),
            resident(404, Priority::Normal),
        ]);
        let f = freeness(&v, &HeadroomConfig::DISABLED);
        assert!((f - 3_000.0).abs() < 1e-9);
    }

    #[test]
    fn empty_instance_freeness_is_capacity() {
        let v = view(vec![]);
        assert_eq!(freeness(&v, &HeadroomConfig::DISABLED), 13_616.0);
    }

    #[test]
    fn gradual_queuing_rule_ramps_demand() {
        let rule = QueuingRule::Gradual { ramp_secs: 10.0 };
        assert_eq!(rule.fraction(0.0), 0.0);
        assert!((rule.fraction(5.0) - 0.5).abs() < 1e-12);
        assert_eq!(rule.fraction(10.0), 1.0);
        assert_eq!(rule.fraction(100.0), 1.0);
        assert_eq!(QueuingRule::Gradual { ramp_secs: 0.0 }.fraction(0.0), 1.0);
        assert_eq!(QueuingRule::FullDemand.fraction(0.0), 1.0);

        // A freshly queued HOL request counts nothing under the gradual
        // rule, its full demand under the default rule.
        let mut v = view(vec![resident(12_000, Priority::Normal)]);
        v.requests.push(RequestView {
            physical_tokens: 0,
            demand_tokens: 3_000,
            is_queuing: true,
            is_head_of_line: true,
            queued_secs: 0.0,
            execution_priority: Priority::Normal,
        });
        let full = HeadroomConfig::DISABLED;
        let gradual =
            HeadroomConfig::DISABLED.with_queuing_rule(QueuingRule::Gradual { ramp_secs: 10.0 });
        assert!(freeness(&v, &full) < 0.0, "full demand overloads");
        assert!(freeness(&v, &gradual) > 0.0, "gradual rule does not, yet");
        // After 10 s of queuing both rules agree.
        v.requests.last_mut().expect("hol").queued_secs = 10.0;
        assert!((freeness(&v, &gradual) - freeness(&v, &full)).abs() < 1e-9);
    }

    #[test]
    fn engine_view_and_loads() {
        use llumnix_engine::{
            EngineConfig, InstanceEngine, InstanceId, PriorityPair, RequestId, RequestMeta,
        };
        use llumnix_model::InstanceSpec;
        use llumnix_sim::SimTime;

        let mut e = InstanceEngine::new(
            InstanceId(0),
            InstanceSpec::tiny_for_tests(160),
            EngineConfig::default(),
        );
        // Empty engine: freeness = capacity, infaas load = 0.
        assert_eq!(
            engine_freeness(&e, false, SimTime::from_secs(2), &HeadroomConfig::DISABLED),
            160.0
        );
        assert_eq!(infaas_memory_load(&e), 0.0);
        e.add_request(
            RequestMeta {
                id: RequestId(1),
                input_len: 100,
                output_len: 10,
                priority: PriorityPair::NORMAL,
                arrival: SimTime::ZERO,
            },
            SimTime::ZERO,
        );
        let p = e.poll_step(SimTime::ZERO).expect("prefill");
        e.complete_step(p.finish_at());
        // 100 tokens → 7 blocks → 112 tokens physical.
        let f = engine_freeness(&e, false, SimTime::from_secs(2), &HeadroomConfig::DISABLED);
        assert!((f - 48.0).abs() < 1e-9, "freeness {f}");
        assert!((infaas_memory_load(&e) - 0.7).abs() < 1e-9);
        // A queued second request shows up in demand-aware loads.
        e.add_request(
            RequestMeta {
                id: RequestId(2),
                input_len: 64,
                output_len: 4,
                priority: PriorityPair::NORMAL,
                arrival: SimTime::from_secs(1),
            },
            SimTime::from_secs(1),
        );
        let f2 = engine_freeness(&e, false, SimTime::from_secs(2), &HeadroomConfig::DISABLED);
        assert!(f2 < 0.0, "queued HOL demand should overload: {f2}");
        assert!(infaas_memory_load(&e) > 1.0);
        assert!(infaas_equivalent_freeness(&e) < 0.0);
        // Terminating flag dominates.
        assert_eq!(
            engine_freeness(&e, true, SimTime::from_secs(2), &HeadroomConfig::DISABLED),
            f64::NEG_INFINITY
        );
    }
}
