//! Llumnix core: the paper's contribution, hosted on the simulated substrate.
//!
//! * [`virtual_usage`](crate::virtual_usage) — Algorithm 1: virtual usages
//!   and instance freeness;
//! * [`Llumlet`] — the per-instance scheduler: load reports and migration
//!   victim selection;
//! * [`policy`] — the global scheduler's decisions: dispatch, migration
//!   pairing, auto-scaling, and the baseline schedulers;
//! * [`CentralScheduler`] — the §6.6 centralized-scheduler stall model;
//! * [`ServingSim`] — the end-to-end event-driven serving simulation every
//!   experiment runs on.

#![warn(missing_docs)]
#![forbid(unsafe_code)]
#![deny(rust_2018_idioms)]

mod central;
pub mod index;
mod llumlet;
pub mod policy;
mod serving;
mod shard;
pub mod store;
pub mod virtual_usage;

pub use central::{CentralScheduler, CentralSchedulerModel};
pub use index::{DispatchIndex, IndexPolicy, IndexReads, MergedIndex};
pub use llumlet::Llumlet;
pub use llumnix_faults::{FaultKind, FaultPlan, FaultPlanConfig, PlannedFault};
pub use policy::{
    pair_migrations, AutoScaleConfig, AutoScaler, Dispatcher, LoadReport, MigrationThresholds,
    ScaleAction, SchedulerKind, VictimPolicy,
};
pub use serving::{
    run_serving, FailureSpec, ServingConfig, ServingOutput, ServingSim, SimSnapshot,
};
pub use shard::{ShardConfig, WindowStats};
pub use store::InstanceStore;
pub use virtual_usage::{
    engine_freeness, freeness, infaas_equivalent_freeness, infaas_memory_load, virtual_usage,
    HeadroomConfig, InstanceView, QueuingRule, RequestView,
};
