//! Centralized-scheduler stall model for the §6.6 scalability baseline.
//!
//! The paper's baseline extends the vLLM scheduler to manage every request
//! across all instances: before each iteration an instance synchronizes
//! request statuses and scheduling decisions with the central scheduler,
//! which serializes that work. We model the scheduler as a single FIFO
//! server whose per-decision service time grows with the number of requests
//! it must synchronize; the stall an instance observes is the queueing delay
//! plus its own service time. Llumnix's distributed llumlets do this work
//! locally and report only instance-level metrics, so their stall is zero.
//!
//! The per-decision service time is *sub-linear* in the synchronized request
//! count: status sync is batched into one round trip, so the marginal cost
//! per request falls as the batch grows (amortized headers, vectorized
//! bookkeeping). The earlier linear model was calibrated at the paper's
//! 64-instance operating point (≈ 20 tracked requests per decision) and
//! extrapolated linearly to the 128–1024-instance sweeps, overcharging big
//! batches; the saturating curve below keeps the calibrated 64-instance
//! behaviour while decisions at 4× the tracked count cost well under 4× as
//! much (DESIGN.md §11 documents the fit against the fig16 arms).

use llumnix_sim::{SimDuration, SimTime};
use serde::{Deserialize, Serialize};

/// Cost parameters of the centralized scheduler.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CentralSchedulerModel {
    /// Fixed cost per scheduling round trip (RPC + bookkeeping).
    pub base: SimDuration,
    /// Marginal cost per synchronized request at small batch sizes.
    pub per_request: SimDuration,
    /// Amortization scale `s` of the saturating sync curve: a decision
    /// synchronizing `t` requests pays for `t·s/(s+t)` of them (integer
    /// arithmetic, so the curve is platform-exact). Marginal cost halves at
    /// `t = s` and the sync term saturates at `per_request · s`. `0` turns
    /// amortization off (the old linear extrapolation).
    pub amortization_scale: u64,
}

fn default_amortization_scale() -> u64 {
    256
}

impl Default for CentralSchedulerModel {
    fn default() -> Self {
        // Calibrated so the whole *measured* 64-instance regime reproduces
        // the old validated linear model: at the ≈ 20-tracked-requests
        // anchor the old model charged 150 + 20 × 25 = 650 µs and this one
        // charges 150 + ⌊20·256/276⌋ × 28 = 654 µs (+0.6 %); even at the
        // regime's top (t = 64) the two stay within 10 %. Past it the
        // curves split: at 256 tracked requests the linear model
        // extrapolates to 6.55 ms while the amortized curve charges
        // 3.73 ms (DESIGN.md §11 documents the fit).
        CentralSchedulerModel {
            base: SimDuration::from_micros(150),
            per_request: SimDuration::from_micros(28),
            amortization_scale: default_amortization_scale(),
        }
    }
}

impl CentralSchedulerModel {
    /// Service time of one decision synchronizing `tracked_requests`.
    pub fn service_time(&self, tracked_requests: usize) -> SimDuration {
        let t = tracked_requests as u64;
        let amortized = if self.amortization_scale == 0 || t == 0 {
            t
        } else {
            t * self.amortization_scale / (self.amortization_scale + t)
        };
        self.base + self.per_request * amortized
    }
}

/// The single-server FIFO queue the centralized scheduler forms.
#[derive(Debug, Clone)]
pub struct CentralScheduler {
    model: CentralSchedulerModel,
    free_at: SimTime,
    total_stall: SimDuration,
    decisions: u64,
    max_stall: SimDuration,
}

impl CentralScheduler {
    /// Creates an idle scheduler.
    pub fn new(model: CentralSchedulerModel) -> Self {
        CentralScheduler {
            model,
            free_at: SimTime::ZERO,
            total_stall: SimDuration::ZERO,
            decisions: 0,
            max_stall: SimDuration::ZERO,
        }
    }

    /// An instance asks for its pre-iteration scheduling decision at `now`,
    /// synchronizing `tracked_requests` request statuses. Returns the stall
    /// the instance observes before its step may start.
    pub fn request_decision(&mut self, now: SimTime, tracked_requests: usize) -> SimDuration {
        let service = self.model.service_time(tracked_requests);
        let start = if self.free_at > now {
            self.free_at
        } else {
            now
        };
        self.free_at = start + service;
        let stall = self.free_at.since(now);
        self.total_stall += stall;
        self.decisions += 1;
        self.max_stall = self.max_stall.max(stall);
        stall
    }

    /// Mean stall per decision.
    pub fn mean_stall(&self) -> SimDuration {
        if self.decisions == 0 {
            SimDuration::ZERO
        } else {
            self.total_stall / self.decisions
        }
    }

    /// Largest stall observed.
    pub fn max_stall(&self) -> SimDuration {
        self.max_stall
    }

    /// Number of decisions served.
    pub fn decisions(&self) -> u64 {
        self.decisions
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn idle_scheduler_costs_service_only() {
        let mut c = CentralScheduler::new(CentralSchedulerModel::default());
        let stall = c.request_decision(SimTime::from_secs(1), 20);
        // 150 µs + ⌊20·256/276⌋ × 28 µs = 150 + 18 × 28 = 654 µs — within
        // 1 % of the old linear model's 650 µs at the calibration anchor.
        assert_eq!(stall, SimDuration::from_micros(654));
        assert_eq!(c.decisions(), 1);
    }

    #[test]
    fn contention_builds_queueing_delay() {
        let mut c = CentralScheduler::new(CentralSchedulerModel::default());
        let now = SimTime::from_secs(1);
        // 64 instances all asking at the same instant: the last one queues
        // behind 63 service times.
        let stalls: Vec<SimDuration> = (0..64).map(|_| c.request_decision(now, 20)).collect();
        assert!(stalls.windows(2).all(|w| w[0] < w[1]));
        let last = stalls.last().expect("non-empty");
        assert_eq!(*last, SimDuration::from_micros(654 * 64));
        assert!(
            last.as_millis_f64() > 40.0,
            "64-way contention should stall tens of ms, got {last}"
        );
        assert_eq!(c.max_stall(), *last);
    }

    #[test]
    fn drains_when_spread_out() {
        let mut c = CentralScheduler::new(CentralSchedulerModel::default());
        // Requests 10 ms apart never queue: stall = service(10) =
        // 150 + ⌊10·256/266⌋ × 28 = 150 + 9 × 28 = 402 µs.
        for i in 0..10 {
            let stall = c.request_decision(SimTime::from_millis(10 * i), 10);
            assert_eq!(stall, SimDuration::from_micros(402));
        }
        assert_eq!(c.mean_stall(), SimDuration::from_micros(402));
    }

    #[test]
    fn sync_cost_is_sublinear_and_saturates() {
        let m = CentralSchedulerModel::default();
        // Doubling the batch never doubles the sync term.
        for t in [16usize, 32, 64, 128, 256, 512] {
            let sync = |n: usize| m.service_time(n) - m.base;
            assert!(
                sync(2 * t) < sync(t) * 2,
                "sync cost must be sub-linear at t={t}"
            );
        }
        // Saturation bound: the sync term never exceeds per_request · s.
        let cap = m.base + m.per_request * m.amortization_scale;
        assert!(m.service_time(1_000_000) < cap);
        // Monotone in t.
        assert!(m.service_time(10) < m.service_time(11));
        // scale = 0 restores the linear extrapolation.
        let linear = CentralSchedulerModel {
            amortization_scale: 0,
            ..m
        };
        assert_eq!(
            linear.service_time(256),
            m.base + m.per_request * 256,
            "scale 0 is the old linear model"
        );
    }

    #[test]
    fn empty_scheduler_mean_is_zero() {
        let c = CentralScheduler::new(CentralSchedulerModel::default());
        assert_eq!(c.mean_stall(), SimDuration::ZERO);
    }
}
