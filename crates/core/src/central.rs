//! Centralized-scheduler stall model for the §6.6 scalability baseline.
//!
//! The paper's baseline extends the vLLM scheduler to manage every request
//! across all instances: before each iteration an instance synchronizes
//! request statuses and scheduling decisions with the central scheduler,
//! which serializes that work. We model the scheduler as a single FIFO
//! server whose per-decision service time grows with the number of requests
//! it must synchronize; the stall an instance observes is the queueing delay
//! plus its own service time. Llumnix's distributed llumlets do this work
//! locally and report only instance-level metrics, so their stall is zero.

use llumnix_sim::{SimDuration, SimTime};
use serde::{Deserialize, Serialize};

/// Cost parameters of the centralized scheduler.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CentralSchedulerModel {
    /// Fixed cost per scheduling round trip (RPC + bookkeeping).
    pub base: SimDuration,
    /// Marginal cost per request whose status must be synchronized.
    pub per_request: SimDuration,
}

impl Default for CentralSchedulerModel {
    fn default() -> Self {
        CentralSchedulerModel {
            base: SimDuration::from_micros(150),
            per_request: SimDuration::from_micros(25),
        }
    }
}

/// The single-server FIFO queue the centralized scheduler forms.
#[derive(Debug, Clone)]
pub struct CentralScheduler {
    model: CentralSchedulerModel,
    free_at: SimTime,
    total_stall: SimDuration,
    decisions: u64,
    max_stall: SimDuration,
}

impl CentralScheduler {
    /// Creates an idle scheduler.
    pub fn new(model: CentralSchedulerModel) -> Self {
        CentralScheduler {
            model,
            free_at: SimTime::ZERO,
            total_stall: SimDuration::ZERO,
            decisions: 0,
            max_stall: SimDuration::ZERO,
        }
    }

    /// An instance asks for its pre-iteration scheduling decision at `now`,
    /// synchronizing `tracked_requests` request statuses. Returns the stall
    /// the instance observes before its step may start.
    pub fn request_decision(&mut self, now: SimTime, tracked_requests: usize) -> SimDuration {
        let service = self.model.base + self.model.per_request * tracked_requests as u64;
        let start = if self.free_at > now {
            self.free_at
        } else {
            now
        };
        self.free_at = start + service;
        let stall = self.free_at.since(now);
        self.total_stall += stall;
        self.decisions += 1;
        self.max_stall = self.max_stall.max(stall);
        stall
    }

    /// Mean stall per decision.
    pub fn mean_stall(&self) -> SimDuration {
        if self.decisions == 0 {
            SimDuration::ZERO
        } else {
            self.total_stall / self.decisions
        }
    }

    /// Largest stall observed.
    pub fn max_stall(&self) -> SimDuration {
        self.max_stall
    }

    /// Number of decisions served.
    pub fn decisions(&self) -> u64 {
        self.decisions
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn idle_scheduler_costs_service_only() {
        let mut c = CentralScheduler::new(CentralSchedulerModel::default());
        let stall = c.request_decision(SimTime::from_secs(1), 20);
        // 150 µs + 20 × 25 µs = 650 µs.
        assert_eq!(stall, SimDuration::from_micros(650));
        assert_eq!(c.decisions(), 1);
    }

    #[test]
    fn contention_builds_queueing_delay() {
        let mut c = CentralScheduler::new(CentralSchedulerModel::default());
        let now = SimTime::from_secs(1);
        // 64 instances all asking at the same instant: the last one queues
        // behind 63 service times.
        let stalls: Vec<SimDuration> = (0..64).map(|_| c.request_decision(now, 20)).collect();
        assert!(stalls.windows(2).all(|w| w[0] < w[1]));
        let last = stalls.last().expect("non-empty");
        assert_eq!(*last, SimDuration::from_micros(650 * 64));
        assert!(
            last.as_millis_f64() > 40.0,
            "64-way contention should stall tens of ms, got {last}"
        );
        assert_eq!(c.max_stall(), *last);
    }

    #[test]
    fn drains_when_spread_out() {
        let mut c = CentralScheduler::new(CentralSchedulerModel::default());
        // Requests 10 ms apart never queue.
        for i in 0..10 {
            let stall = c.request_decision(SimTime::from_millis(10 * i), 10);
            assert_eq!(stall, SimDuration::from_micros(400));
        }
        assert_eq!(c.mean_stall(), SimDuration::from_micros(400));
    }

    #[test]
    fn empty_scheduler_mean_is_zero() {
        let c = CentralScheduler::new(CentralSchedulerModel::default());
        assert_eq!(c.mean_stall(), SimDuration::ZERO);
    }
}
