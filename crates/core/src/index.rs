//! Incremental freeness index over the fleet's load reports.
//!
//! The global scheduler's hot decisions — dispatch target, migration
//! source/destination pairing, termination-victim selection — were all
//! argmin/argmax scans over a freshly built `Vec<LoadReport>`, O(N) per
//! arrival. This module keeps those orderings *incrementally*: a persistent
//! per-instance [`LoadReport`] buffer plus ordered sets keyed by an
//! order-preserving integer encoding of the relevant load signal, updated
//! only for instances whose engine saw an event since the last decision
//! (the dirty set maintained by [`crate::store::InstanceStore`]).
//!
//! # Determinism contract
//!
//! Every selection is **bit-for-bit identical** to the scan it replaces:
//!
//! * the set key is [`order_key`], a *lossless* monotone `f64 → u64` map, so
//!   set order equals `partial_cmp` order on the raw freeness — no real
//!   quantization error is introduced;
//! * ties are broken by `InstanceId` exactly as the scans did: dispatch
//!   takes the smallest id among maximal freeness, INFaaS++ the smallest id
//!   among minimal memory load, pairing sorts sources ascending and
//!   destinations descending with ascending-id ties, and the termination
//!   victim is the smallest id among the fewest running requests;
//! * round-robin indexes a `serving_order` list maintained in the exact
//!   insertion order the old filtered sweep produced.
//!
//! The serving simulator cross-checks all of this in debug builds against a
//! from-scratch rescan, and `crates/core/tests/proptests.rs` drives the
//! index through arbitrary event sequences with the same assertion.

use std::collections::BTreeSet;

use llumnix_engine::InstanceId;

use crate::policy::{LoadReport, MigrationThresholds, SchedulerKind};

/// Maps a (non-NaN) `f64` to a `u64` whose unsigned order equals the float
/// order. Negative zero folds into positive zero first so `-0.0` and `0.0`
/// (equal as floats) cannot order differently as keys.
pub fn order_key(f: f64) -> u64 {
    debug_assert!(!f.is_nan(), "load signals are never NaN");
    let bits = (f + 0.0).to_bits();
    if bits >> 63 == 1 {
        !bits
    } else {
        bits | (1 << 63)
    }
}

/// Which orderings the index maintains. Unused orderings cost two B-tree
/// operations per load change, so each run enables only what its scheduler
/// can consult.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IndexPolicy {
    /// Freeness ordering (Llumnix/Centralized dispatch, migration pairing).
    pub track_freeness: bool,
    /// Headroom-free freeness ordering (high-priority dispatch).
    pub track_physical: bool,
    /// Memory-load ordering (INFaaS++ dispatch).
    pub track_memory: bool,
    /// Running-count ordering (termination-victim selection).
    pub track_running: bool,
    /// Descending-freeness ordering (migration destination pairing); lets
    /// [`DispatchIndex::pair`] read destinations off a persistent order
    /// instead of sorting a scratch vector every migration tick.
    pub track_pairing: bool,
}

impl IndexPolicy {
    /// Everything off (the placeholder policy of a default-constructed
    /// index, e.g. a shard partition before configuration).
    pub fn none() -> Self {
        IndexPolicy {
            track_freeness: false,
            track_physical: false,
            track_memory: false,
            track_running: false,
            track_pairing: false,
        }
    }

    /// Everything on (tests and benches).
    pub fn all() -> Self {
        IndexPolicy {
            track_freeness: true,
            track_physical: true,
            track_memory: true,
            track_running: true,
            track_pairing: true,
        }
    }

    /// The orderings a serving run under `kind` can actually consult.
    /// `autoscale` enables the termination-victim ordering.
    pub fn for_run(kind: SchedulerKind, autoscale: bool) -> Self {
        let freeness_dispatch = matches!(
            kind,
            SchedulerKind::LlumnixBase | SchedulerKind::Llumnix | SchedulerKind::Centralized
        );
        IndexPolicy {
            track_freeness: freeness_dispatch || kind.uses_migration(),
            track_physical: kind.uses_priorities(),
            track_memory: matches!(kind, SchedulerKind::InfaasPlusPlus),
            track_running: autoscale,
            track_pairing: kind.uses_migration(),
        }
    }
}

/// Fleet-membership class derived from a report's flags.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Membership {
    /// Eligible for dispatch and as a migration destination.
    Serving,
    /// Draining for termination: permanent migration source, never a target.
    Terminating,
    /// Still in its startup delay: invisible to every decision.
    Starting,
}

fn membership(report: &LoadReport) -> Membership {
    // Termination wins over startup: an instance told to terminate while
    // still inside its startup delay (fast scale-up-then-down churn) must
    // act as a migration source immediately, matching the rescan filter in
    // [`crate::policy::pair_migrations`].
    if report.terminating {
        Membership::Terminating
    } else if report.starting {
        Membership::Starting
    } else {
        Membership::Serving
    }
}

/// One instance's indexed state: its last applied report.
#[derive(Debug, Clone, Copy)]
struct Entry {
    report: LoadReport,
    state: Membership,
}

/// Outcome of [`DispatchIndex::update`], used by the caller to schedule the
/// starting→serving re-check.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct UpdateOutcome {
    /// The instance entered the `starting` state with this update.
    pub became_starting: bool,
}

/// The incremental dispatch/pairing/termination index.
///
/// `Clone` supports the sim-level snapshot/fork capability (all orderings are
/// plain `BTreeSet`s/`Vec`s, so a clone is an independent, identical index).
#[derive(Clone)]
pub struct DispatchIndex {
    policy: IndexPolicy,
    /// `InstanceId.0 → last applied report` — the persistent report buffer.
    entries: Vec<Option<Entry>>,
    /// Serving instances by `(order_key(freeness), id)`.
    by_freeness: BTreeSet<(u64, u32)>,
    /// Serving instances by `(!order_key(freeness), id)`: ascending iteration
    /// yields descending freeness with ascending id among ties — the
    /// destination order [`DispatchIndex::pair`] needs, kept persistent so
    /// pairing never sorts.
    by_freeness_desc: BTreeSet<(u64, u32)>,
    /// Serving instances by `(order_key(freeness_physical), id)`.
    by_physical: BTreeSet<(u64, u32)>,
    /// Serving instances by `(order_key(memory_load), id)`.
    by_memory: BTreeSet<(u64, u32)>,
    /// Serving instances by `(num_running, id)`.
    by_running: BTreeSet<(u32, u32)>,
    /// Serving instances in fleet insertion order (round-robin dispatch).
    serving_order: Vec<InstanceId>,
    /// Terminating instances, ascending id (their freeness is uniformly
    /// `-∞`, so id order *is* their source-sort order).
    terminating: Vec<u32>,
    /// `serving_order` needs rebuilding from the store's order walk.
    order_dirty: bool,
    /// Count of entries in the `Serving` membership class. Unlike
    /// `serving_order.len()` this is exact without a [`Self::sync_order`]
    /// call, which shard partitions (whose round-robin order lives in the
    /// coordinator's fleet walk, not here) never make.
    serving_count: usize,
}

impl Default for DispatchIndex {
    /// An empty index tracking nothing — the placeholder a shard partition
    /// holds until the run's [`IndexPolicy`] is configured.
    fn default() -> Self {
        DispatchIndex::new(IndexPolicy::none())
    }
}

impl DispatchIndex {
    /// An empty index maintaining the orderings `policy` enables.
    pub fn new(policy: IndexPolicy) -> Self {
        DispatchIndex {
            policy,
            entries: Vec::new(),
            by_freeness: BTreeSet::new(),
            by_freeness_desc: BTreeSet::new(),
            by_physical: BTreeSet::new(),
            by_memory: BTreeSet::new(),
            by_running: BTreeSet::new(),
            serving_order: Vec::new(),
            terminating: Vec::new(),
            order_dirty: false,
            serving_count: 0,
        }
    }

    /// The instance's last applied report, if it is indexed.
    pub fn report(&self, id: InstanceId) -> Option<&LoadReport> {
        self.entries.get(id.0 as usize)?.as_ref().map(|e| &e.report)
    }

    /// Applies a fresh report, diffing against the stored entry and touching
    /// only the orderings whose key actually moved.
    pub fn update(&mut self, report: &LoadReport) -> UpdateOutcome {
        let idx = report.id.0 as usize;
        if self.entries.len() <= idx {
            self.entries.resize(idx + 1, None);
        }
        let new_state = membership(report);
        let old = self.entries[idx];
        if let Some(old) = old {
            if old.report == *report {
                return UpdateOutcome {
                    became_starting: false,
                };
            }
            self.detach(&old);
        }
        self.attach(report, new_state);
        self.entries[idx] = Some(Entry {
            report: *report,
            state: new_state,
        });
        let was_serving = old.is_some_and(|e| e.state == Membership::Serving);
        if was_serving != (new_state == Membership::Serving) {
            self.order_dirty = true;
        }
        UpdateOutcome {
            became_starting: new_state == Membership::Starting
                && old.is_none_or(|e| e.state != Membership::Starting),
        }
    }

    /// Drops an instance from every ordering (failure or completed
    /// termination).
    pub fn remove(&mut self, id: InstanceId) {
        let idx = id.0 as usize;
        let Some(Some(old)) = self.entries.get(idx).copied() else {
            return;
        };
        self.detach(&old);
        self.entries[idx] = None;
        if old.state == Membership::Serving {
            self.order_dirty = true;
        }
    }

    fn detach(&mut self, old: &Entry) {
        let id = old.report.id.0;
        match old.state {
            Membership::Serving => {
                self.serving_count -= 1;
                let r = &old.report;
                if self.policy.track_freeness {
                    self.by_freeness.remove(&(order_key(r.freeness), id));
                }
                if self.policy.track_pairing {
                    self.by_freeness_desc.remove(&(!order_key(r.freeness), id));
                }
                if self.policy.track_physical {
                    self.by_physical
                        .remove(&(order_key(r.freeness_physical), id));
                }
                if self.policy.track_memory {
                    self.by_memory.remove(&(order_key(r.memory_load), id));
                }
                if self.policy.track_running {
                    self.by_running.remove(&(r.num_running as u32, id));
                }
            }
            Membership::Terminating => {
                if let Ok(pos) = self.terminating.binary_search(&id) {
                    self.terminating.remove(pos);
                }
            }
            Membership::Starting => {}
        }
    }

    fn attach(&mut self, report: &LoadReport, state: Membership) {
        let id = report.id.0;
        match state {
            Membership::Serving => {
                self.serving_count += 1;
                if self.policy.track_freeness {
                    self.by_freeness.insert((order_key(report.freeness), id));
                }
                if self.policy.track_pairing {
                    self.by_freeness_desc
                        .insert((!order_key(report.freeness), id));
                }
                if self.policy.track_physical {
                    self.by_physical
                        .insert((order_key(report.freeness_physical), id));
                }
                if self.policy.track_memory {
                    self.by_memory.insert((order_key(report.memory_load), id));
                }
                if self.policy.track_running {
                    self.by_running.insert((report.num_running as u32, id));
                }
            }
            Membership::Terminating => {
                if let Err(pos) = self.terminating.binary_search(&id) {
                    self.terminating.insert(pos, id);
                }
            }
            Membership::Starting => {}
        }
    }

    /// Rebuilds the round-robin order after membership changed. `order` is
    /// the store's insertion-order walk of live instances.
    pub fn sync_order(&mut self, order: &[InstanceId]) {
        if !self.order_dirty {
            return;
        }
        self.serving_order.clear();
        for &id in order {
            if let Some(Some(e)) = self.entries.get(id.0 as usize) {
                if e.state == Membership::Serving {
                    self.serving_order.push(id);
                }
            }
        }
        self.order_dirty = false;
    }

    /// Number of serving (dispatch-eligible) instances.
    pub fn serving_len(&self) -> usize {
        debug_assert!(!self.order_dirty, "sync_order before selection");
        self.serving_order.len()
    }

    /// The `i`-th serving instance in fleet insertion order (round-robin).
    pub fn serving_at(&self, i: usize) -> Option<InstanceId> {
        debug_assert!(!self.order_dirty, "sync_order before selection");
        self.serving_order.get(i).copied()
    }

    /// The freest serving instance: maximal freeness (headroom-free when
    /// `physical`), smallest id among ties — the Llumnix dispatch rule.
    pub fn freest(&self, physical: bool) -> Option<InstanceId> {
        let set = if physical {
            debug_assert!(self.policy.track_physical);
            &self.by_physical
        } else {
            debug_assert!(self.policy.track_freeness);
            &self.by_freeness
        };
        let &(max_key, _) = set.iter().next_back()?;
        let &(_, id) = set.range((max_key, 0)..).next()?;
        Some(InstanceId(id))
    }

    /// The serving instance with the lowest memory load, smallest id among
    /// ties — the INFaaS++ dispatch rule.
    pub fn least_memory_load(&self) -> Option<InstanceId> {
        debug_assert!(self.policy.track_memory);
        self.by_memory.iter().next().map(|&(_, id)| InstanceId(id))
    }

    /// The serving instance with the fewest running requests, smallest id
    /// among ties — the termination-victim rule.
    pub fn drain_victim(&self) -> Option<InstanceId> {
        debug_assert!(self.policy.track_running);
        self.by_running.iter().next().map(|&(_, id)| InstanceId(id))
    }

    /// Migration pairing (§4.4.3) straight off the index: sources are
    /// terminating instances (ascending id; they all report `-∞` freeness,
    /// and terminating instances still inside their startup delay count too)
    /// followed by serving instances strictly below the source threshold in
    /// ascending `(freeness, id)` order; destinations are serving instances
    /// strictly above the destination threshold in descending freeness,
    /// ascending id among ties, read off the persistent inverted-key
    /// ordering — no per-tick sort. Lowest is matched with highest,
    /// repeatedly — identical to [`crate::policy::pair_migrations`] over
    /// fresh reports.
    pub fn pair(&self, thresholds: MigrationThresholds) -> Vec<(InstanceId, InstanceId)> {
        debug_assert!(self.policy.track_freeness && self.policy.track_pairing);
        let src_bound = (order_key(thresholds.source_below), 0u32);
        // In inverted-key space, freeness strictly above the threshold means
        // a key strictly below `!order_key(threshold)` (any id).
        let dst_bound = (!order_key(thresholds.destination_above), 0u32);
        let sources = self
            .terminating
            .iter()
            .copied()
            .chain(self.by_freeness.range(..src_bound).map(|&(_, id)| id));
        sources
            .zip(self.by_freeness_desc.range(..dst_bound))
            .map(|(s, &(_, d))| (InstanceId(s), InstanceId(d)))
            .collect()
    }

    // ---- partition-level reads (the k-way merge's per-shard inputs) ----

    /// Whether the instance is currently in the `Serving` membership class.
    pub(crate) fn is_serving(&self, id: InstanceId) -> bool {
        matches!(
            self.entries.get(id.0 as usize),
            Some(Some(e)) if e.state == Membership::Serving
        )
    }

    /// Exact `Serving`-class population (valid without `sync_order`).
    pub(crate) fn serving_count(&self) -> usize {
        self.serving_count
    }

    /// This partition's freest entry as its raw `(order_key, id)` tuple:
    /// maximal key, smallest id among ties.
    pub(crate) fn freest_entry(&self, physical: bool) -> Option<(u64, u32)> {
        let set = if physical {
            debug_assert!(self.policy.track_physical);
            &self.by_physical
        } else {
            debug_assert!(self.policy.track_freeness);
            &self.by_freeness
        };
        let &(max_key, _) = set.iter().next_back()?;
        set.range((max_key, 0)..).next().copied()
    }

    /// This partition's minimal `(order_key(memory_load), id)` tuple.
    pub(crate) fn memory_first(&self) -> Option<(u64, u32)> {
        debug_assert!(self.policy.track_memory);
        self.by_memory.iter().next().copied()
    }

    /// This partition's minimal `(num_running, id)` tuple.
    pub(crate) fn running_first(&self) -> Option<(u32, u32)> {
        debug_assert!(self.policy.track_running);
        self.by_running.iter().next().copied()
    }

    /// This partition's terminating instances, ascending id.
    pub(crate) fn terminating_ids(&self) -> &[u32] {
        &self.terminating
    }

    /// This partition's serving entries strictly below `bound` in ascending
    /// `(order_key(freeness), id)` order.
    pub(crate) fn freeness_below(
        &self,
        bound: (u64, u32),
    ) -> impl Iterator<Item = (u64, u32)> + '_ {
        debug_assert!(self.policy.track_freeness);
        self.by_freeness.range(..bound).copied()
    }

    /// This partition's serving entries strictly below `bound` in the
    /// inverted-key (descending-freeness) ordering.
    pub(crate) fn freeness_desc_below(
        &self,
        bound: (u64, u32),
    ) -> impl Iterator<Item = (u64, u32)> + '_ {
        debug_assert!(self.policy.track_pairing);
        self.by_freeness_desc.range(..bound).copied()
    }
}

/// The read-side a dispatch decision consults: implemented by the monolithic
/// [`DispatchIndex`] and by the sharded [`MergedIndex`] view, so
/// [`crate::policy::Dispatcher::dispatch_indexed`] runs unchanged over
/// either.
pub trait IndexReads {
    /// Number of serving (dispatch-eligible) instances.
    fn serving_len(&self) -> usize;
    /// The `i`-th serving instance in fleet insertion order (round-robin).
    fn serving_at(&self, i: usize) -> Option<InstanceId>;
    /// The freest serving instance (headroom-free when `physical`),
    /// smallest id among ties.
    fn freest(&self, physical: bool) -> Option<InstanceId>;
    /// The serving instance with the lowest memory load, smallest id among
    /// ties.
    fn least_memory_load(&self) -> Option<InstanceId>;
}

impl IndexReads for DispatchIndex {
    fn serving_len(&self) -> usize {
        DispatchIndex::serving_len(self)
    }

    fn serving_at(&self, i: usize) -> Option<InstanceId> {
        DispatchIndex::serving_at(self, i)
    }

    fn freest(&self, physical: bool) -> Option<InstanceId> {
        DispatchIndex::freest(self, physical)
    }

    fn least_memory_load(&self) -> Option<InstanceId> {
        DispatchIndex::least_memory_load(self)
    }
}

/// Canonical k-way merged read view over per-shard [`DispatchIndex`]
/// partitions.
///
/// The partitions split the instance-id space (`id mod K`), so every
/// ordering's global extremum is the extremum over the per-partition
/// extrema, and every ordered range is the sorted union of the per-partition
/// ranges — compared by the exact `(order_key, id)` tuples the monolithic
/// B-trees sort by. Decisions read through this view are therefore
/// bit-identical to the monolithic index built from the same report stream;
/// the serving simulator asserts that equivalence in debug builds at every
/// decision site.
pub struct MergedIndex<'a> {
    parts: Vec<&'a DispatchIndex>,
    /// Live instances in fleet insertion order (the round-robin walk, owned
    /// by the coordinator's store — partitions never track it).
    order: &'a [InstanceId],
}

impl<'a> MergedIndex<'a> {
    /// A merged view over `parts` (indexed by `id mod parts.len()`), with
    /// `order` the store's insertion-order walk of live instances.
    pub fn new(parts: Vec<&'a DispatchIndex>, order: &'a [InstanceId]) -> Self {
        debug_assert!(!parts.is_empty());
        MergedIndex { parts, order }
    }

    fn part_of(&self, id: InstanceId) -> &DispatchIndex {
        self.parts[id.0 as usize % self.parts.len()]
    }

    /// The serving instance with the fewest running requests, smallest id
    /// among ties — the termination-victim rule.
    pub fn drain_victim(&self) -> Option<InstanceId> {
        self.parts
            .iter()
            .filter_map(|p| p.running_first())
            .min()
            .map(|(_, id)| InstanceId(id))
    }

    /// Migration pairing over the merged orderings: identical tuples, hence
    /// identical pairs, to [`DispatchIndex::pair`] on a monolithic index.
    pub fn pair(&self, thresholds: MigrationThresholds) -> Vec<(InstanceId, InstanceId)> {
        let src_bound = (order_key(thresholds.source_below), 0u32);
        let dst_bound = (!order_key(thresholds.destination_above), 0u32);
        let mut terminating: Vec<u32> = Vec::new();
        let mut below: Vec<(u64, u32)> = Vec::new();
        let mut above: Vec<(u64, u32)> = Vec::new();
        for p in &self.parts {
            terminating.extend_from_slice(p.terminating_ids());
            below.extend(p.freeness_below(src_bound));
            above.extend(p.freeness_desc_below(dst_bound));
        }
        terminating.sort_unstable();
        below.sort_unstable();
        above.sort_unstable();
        terminating
            .into_iter()
            .chain(below.into_iter().map(|(_, id)| id))
            .zip(above)
            .map(|(s, (_, d))| (InstanceId(s), InstanceId(d)))
            .collect()
    }
}

impl IndexReads for MergedIndex<'_> {
    fn serving_len(&self) -> usize {
        self.parts.iter().map(|p| p.serving_count()).sum()
    }

    fn serving_at(&self, i: usize) -> Option<InstanceId> {
        // The monolithic `serving_order` is the fleet walk filtered to the
        // Serving class; replay that filter against partition membership.
        self.order
            .iter()
            .copied()
            .filter(|&id| self.part_of(id).is_serving(id))
            .nth(i)
    }

    fn freest(&self, physical: bool) -> Option<InstanceId> {
        let mut best: Option<(u64, u32)> = None;
        for p in &self.parts {
            if let Some((key, id)) = p.freest_entry(physical) {
                best = Some(match best {
                    // Maximal key wins; the smaller id wins a key tie.
                    Some((bk, bid)) if bk > key || (bk == key && bid < id) => (bk, bid),
                    _ => (key, id),
                });
            }
        }
        best.map(|(_, id)| InstanceId(id))
    }

    fn least_memory_load(&self) -> Option<InstanceId> {
        self.parts
            .iter()
            .filter_map(|p| p.memory_first())
            .min()
            .map(|(_, id)| InstanceId(id))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report(id: u32, freeness: f64, load: f64) -> LoadReport {
        LoadReport {
            id: InstanceId(id),
            freeness,
            freeness_physical: freeness,
            memory_load: load,
            num_running: 0,
            num_waiting: 0,
            terminating: false,
            starting: false,
        }
    }

    #[test]
    fn order_key_preserves_float_order() {
        let vals = [
            f64::NEG_INFINITY,
            -1e300,
            -2.5,
            -1e-12,
            0.0,
            1e-12,
            1.0,
            2.5,
            1e300,
            f64::INFINITY,
        ];
        for w in vals.windows(2) {
            assert!(order_key(w[0]) < order_key(w[1]), "{} vs {}", w[0], w[1]);
        }
        assert_eq!(order_key(-0.0), order_key(0.0), "signed zeros are equal");
        assert_eq!(order_key(3.25), order_key(3.25));
    }

    #[test]
    fn freest_breaks_ties_by_smallest_id() {
        let mut ix = DispatchIndex::new(IndexPolicy::all());
        ix.update(&report(3, 50.0, 0.1));
        ix.update(&report(1, 50.0, 0.2));
        ix.update(&report(2, 10.0, 0.3));
        assert_eq!(ix.freest(false), Some(InstanceId(1)));
        assert_eq!(ix.least_memory_load(), Some(InstanceId(3)));
        // Update moves an instance between key positions.
        ix.update(&report(2, 60.0, 0.3));
        assert_eq!(ix.freest(false), Some(InstanceId(2)));
        ix.remove(InstanceId(2));
        assert_eq!(ix.freest(false), Some(InstanceId(1)));
    }

    #[test]
    fn membership_transitions() {
        let mut ix = DispatchIndex::new(IndexPolicy::all());
        let mut r0 = report(0, 100.0, 0.0);
        let out = ix.update(&r0);
        assert!(!out.became_starting);
        let mut r1 = report(1, 5.0, 0.0);
        r1.starting = true;
        assert!(ix.update(&r1).became_starting);
        assert!(!ix.update(&r1).became_starting, "no re-trigger");
        ix.sync_order(&[InstanceId(0), InstanceId(1)]);
        assert_eq!(ix.serving_len(), 1);
        // The starting instance comes online.
        r1.starting = false;
        ix.update(&r1);
        ix.sync_order(&[InstanceId(0), InstanceId(1)]);
        assert_eq!(ix.serving_len(), 2);
        assert_eq!(ix.serving_at(1), Some(InstanceId(1)));
        // Termination removes it from dispatch but keeps it as a source.
        r0.terminating = true;
        r0.freeness = f64::NEG_INFINITY;
        r0.freeness_physical = f64::NEG_INFINITY;
        ix.update(&r0);
        ix.sync_order(&[InstanceId(0), InstanceId(1)]);
        assert_eq!(ix.serving_len(), 1);
        assert_eq!(ix.freest(false), Some(InstanceId(1)));
    }

    #[test]
    fn pairing_matches_scan_semantics() {
        let mut ix = DispatchIndex::new(IndexPolicy::all());
        ix.update(&report(0, 25.0, 0.0)); // source
        ix.update(&report(1, 100.0, 0.0)); // dest
        ix.update(&report(2, -3.0, 0.0)); // source (worse)
        ix.update(&report(3, 70.0, 0.0)); // dest (weaker)
        ix.update(&report(4, 30.0, 0.0)); // neither
        let pairs = ix.pair(MigrationThresholds::default());
        assert_eq!(
            pairs,
            vec![
                (InstanceId(2), InstanceId(1)),
                (InstanceId(0), InstanceId(3)),
            ]
        );
        // Thresholds are strict: exactly-at-threshold instances stay out.
        let mut ix = DispatchIndex::new(IndexPolicy::all());
        ix.update(&report(0, 30.0, 0.0));
        ix.update(&report(1, 60.0, 0.0));
        assert!(ix.pair(MigrationThresholds::default()).is_empty());
    }

    #[test]
    fn terminating_sources_lead_by_id() {
        let mut ix = DispatchIndex::new(IndexPolicy::all());
        for id in [4u32, 2] {
            let mut r = report(id, f64::NEG_INFINITY, 0.0);
            r.terminating = true;
            ix.update(&r);
        }
        ix.update(&report(0, 1.0, 0.0)); // finite source
        ix.update(&report(1, 100.0, 0.0));
        ix.update(&report(3, 90.0, 0.0));
        ix.update(&report(5, 80.0, 0.0));
        let pairs = ix.pair(MigrationThresholds::default());
        assert_eq!(
            pairs,
            vec![
                (InstanceId(2), InstanceId(1)),
                (InstanceId(4), InstanceId(3)),
                (InstanceId(0), InstanceId(5)),
            ]
        );
    }

    #[test]
    fn pair_destinations_break_freeness_ties_by_id() {
        let mut ix = DispatchIndex::new(IndexPolicy::all());
        ix.update(&report(0, 5.0, 0.0)); // source
        ix.update(&report(1, 2.0, 0.0)); // source (worse)
        ix.update(&report(4, 90.0, 0.0)); // dest, tied freeness
        ix.update(&report(2, 90.0, 0.0)); // dest, tied — smaller id first
        let pairs = ix.pair(MigrationThresholds::default());
        assert_eq!(
            pairs,
            vec![
                (InstanceId(1), InstanceId(2)),
                (InstanceId(0), InstanceId(4)),
            ]
        );
    }

    #[test]
    fn starting_and_terminating_instance_is_a_source() {
        // Fast scale-up-then-down churn: an instance terminated while still
        // inside its startup delay must act as a migration source, on both
        // the indexed and the rescan path.
        let mut ix = DispatchIndex::new(IndexPolicy::all());
        let mut r3 = report(3, f64::NEG_INFINITY, 0.0);
        r3.terminating = true;
        r3.starting = true;
        ix.update(&r3);
        let r1 = report(1, 100.0, 0.0);
        ix.update(&r1);
        let pairs = ix.pair(MigrationThresholds::default());
        assert_eq!(pairs, vec![(InstanceId(3), InstanceId(1))]);
        assert_eq!(
            pairs,
            crate::policy::pair_migrations(&[r3, r1], MigrationThresholds::default())
        );
        // It is not dispatch-eligible.
        ix.sync_order(&[InstanceId(1), InstanceId(3)]);
        assert_eq!(ix.serving_len(), 1);
    }

    #[test]
    fn drain_victim_prefers_fewest_running_then_id() {
        let mut ix = DispatchIndex::new(IndexPolicy::all());
        let mut r0 = report(0, 10.0, 0.0);
        r0.num_running = 3;
        let mut r1 = report(1, 10.0, 0.0);
        r1.num_running = 1;
        let mut r2 = report(2, 10.0, 0.0);
        r2.num_running = 1;
        ix.update(&r0);
        ix.update(&r2);
        ix.update(&r1);
        assert_eq!(ix.drain_victim(), Some(InstanceId(1)));
    }
}
